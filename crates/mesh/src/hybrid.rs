//! Profiled hybrid switching: circuits for the streams the CCN admits,
//! a clock-gated packet plane for the spillover.
//!
//! The paper's circuit-switched router moves a provisioned stream for
//! ~3.5× less energy than the packet-switched baseline — but its admission
//! is all-or-nothing: when the lane allocator runs out, [`Ccn::map`]
//! rejects the whole application. "Energy-Efficient On-Chip Networks
//! through Profiled Hybrid Switching" (arXiv:2005.08478) resolves that
//! tension by combining both disciplines in one fabric: profiled heavy
//! flows ride circuits, the long tail of best-effort traffic rides a
//! packet-switched plane that is mostly idle — and therefore clock-gated.
//!
//! [`HybridFabric`] is that design point behind the [`Fabric`] trait:
//!
//! * **Admission** happens in the CCN ([`Ccn::map_with_spill`]): path
//!   search and lane allocation are identical to strict mapping, but
//!   demands that cannot get circuit lanes are recorded in
//!   [`Mapping::spilled`] instead of failing the application.
//! * **`provision`** installs the admitted circuits into an owned
//!   circuit-switched [`Soc`] and registers every spilled demand on an
//!   owned [`PacketFabric`] over the same mesh, whose routers run with
//!   [`noc_packet::params::PacketParams::gated`] — idle VC buffers,
//!   output registers and arbiters hold their clocks, so the spillover
//!   plane costs (almost) nothing while circuits carry the load. Every
//!   stream of the mapping gets one [`StreamId`] session handle
//!   (the [`Mapping::streams`] numbering), whichever plane serves it.
//! * **`inject_stream`** / **`drain_stream`** address one session;
//!   **`stream_stats`** merges both planes' telemetry into one table,
//!   labelling packet-plane sessions [`StreamPlane::Spilled`] — which is
//!   exactly the per-stream data behind the **GT/BE service gap**
//!   ([`HybridFabric::service_gap`]): circuit-plane p95 latency versus
//!   spilled p95 latency, the number profiled hybrid switching trades on.
//! * **`release`** / **`admit`** run the stream lifecycle live: releasing
//!   a circuit frees its lanes, and a later admission re-runs CCN lane
//!   allocation against the freed state ([`Ccn::admit_stream`] via the
//!   circuit plane, BE-network reconfiguration latency charged to the new
//!   stream); demands the circuit plane still cannot take fall back onto
//!   the gated packet plane as spillover — so a previously spilled stream
//!   can be re-admitted onto a circuit the moment one frees up.
//! * The **spillover split** ([`HybridFabric::spill_stats`],
//!   [`Fabric::spilled_streams`], [`Fabric::spilled_words`]) reports how
//!   much of the workload went GT-on-circuit vs BE-on-packet, so benches
//!   can show the hybrid's energy landing between the pure endpoints.

use crate::ccn::Mapping;
use crate::deflection::DeflectionFabric;
use crate::fabric::{
    EnergyModel, Fabric, FabricKind, FabricSnapshot, PacketFabric, ProvisionError, SnapshotError,
};
use crate::soc::Soc;
use crate::stream::{
    AdmitError, ProvisionMode, ReleaseMode, StreamDemand, StreamId, StreamPlane, StreamStats,
};
use crate::topology::Mesh;
use noc_core::params::RouterParams;
use noc_packet::deflection::DeflectionParams;
use noc_packet::params::PacketParams;
use noc_sim::activity::ComponentActivity;
use noc_sim::kernel::Clocked;
use noc_sim::par::{par_join, ParPolicy};
use noc_sim::time::Cycle;
use noc_sim::units::SquareMicroMeters;
use std::collections::{BTreeMap, HashMap};

#[cfg(doc)]
use crate::ccn::Ccn;

/// The GT-on-circuit vs BE-on-packet split of a hybrid deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpillStats {
    /// Parallel circuit paths provisioned on the circuit plane.
    pub circuit_paths: usize,
    /// Demands registered on the packet spillover plane.
    pub spilled_streams: usize,
    /// Payload words injected into the circuit plane.
    pub words_on_circuit: u64,
    /// Payload words injected into the packet plane.
    pub words_spilled: u64,
}

impl SpillStats {
    /// Fraction of injected words that spilled onto the packet plane.
    pub fn spill_fraction(&self) -> f64 {
        let total = self.words_on_circuit + self.words_spilled;
        if total == 0 {
            0.0
        } else {
            self.words_spilled as f64 / total as f64
        }
    }
}

/// The GT/BE service gap: worst-case (p95) service latency per plane.
///
/// Guaranteed-throughput streams ride physically separated circuit lanes;
/// best-effort spillover shares the gated packet plane. This report is
/// the per-connection QoS evidence: on a healthy hybrid every
/// circuit-plane stream's p95 is at or below every spilled stream's p95
/// ([`HybridFabric::gt_no_worse_than_be`] — enforced by the
/// `fabric_compare` CI gate on the oversubscribed workload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceGap {
    /// Largest p95 latency among circuit-plane streams with deliveries.
    pub gt_worst_p95: Option<u64>,
    /// Smallest p95 latency among spilled streams with deliveries.
    pub be_best_p95: Option<u64>,
}

/// Which backend carries the hybrid's best-effort spillover.
///
/// The classic profiled-hybrid design gates a FIFO-buffered packet plane;
/// swapping in the bufferless deflection mesh removes even the spill
/// path's FIFOs — spilled traffic then pays deflection re-traversals
/// under contention instead of buffer read/writes. Either way the
/// circuit plane and the session table above are untouched: the spill
/// plane is addressed purely through the [`Fabric`] trait.
#[derive(Debug, Clone)]
pub enum SpillPlane {
    /// FIFO-buffered wormhole routers, clock-gated while idle (the
    /// default, arXiv:2005.08478's design point).
    Packet(PacketFabric),
    /// Bufferless deflection routers, clock-gated while idle.
    Deflection(DeflectionFabric),
}

impl SpillPlane {
    fn as_fabric(&self) -> &dyn Fabric {
        match self {
            SpillPlane::Packet(p) => p,
            SpillPlane::Deflection(d) => d,
        }
    }

    fn as_fabric_mut(&mut self) -> &mut dyn Fabric {
        match self {
            SpillPlane::Packet(p) => p,
            SpillPlane::Deflection(d) => d,
        }
    }

    fn stream_is_active(&self, id: StreamId) -> Option<bool> {
        match self {
            SpillPlane::Packet(p) => p.stream_is_active(id),
            SpillPlane::Deflection(d) => d.stream_is_active(id),
        }
    }
}

/// Which plane serves a hybrid session, with its plane-local handle.
#[derive(Debug, Clone, Copy)]
enum PlaneSlot {
    /// On the circuit plane under this local id.
    Circuit(StreamId),
    /// On the packet spillover plane under this local id.
    Packet(StreamId),
}

/// One hybrid session: plane routing plus the path count feeding
/// [`SpillStats::circuit_paths`].
#[derive(Debug, Clone, Copy)]
struct HybridStream {
    slot: PlaneSlot,
    /// Parallel circuit paths (0 for packet-plane sessions).
    paths: usize,
    active: bool,
    /// Released with [`ReleaseMode::Drain`]; the serving plane finalises
    /// the teardown, and `step_planes` mirrors the result up here.
    draining: bool,
}

/// A hybrid-switched network-on-chip: an owned circuit-switched [`Soc`]
/// and a clock-gated best-effort [`SpillPlane`] (buffered packet routers
/// by default, bufferless deflection routers on request) over the same
/// mesh, provisioned together from one spill-admitted [`Mapping`].
#[derive(Debug, Clone)]
pub struct HybridFabric {
    circuit: Soc,
    spill: SpillPlane,
    /// Global session table; [`StreamId`] -> index via `by_id`.
    table: Vec<HybridStream>,
    by_id: BTreeMap<u32, usize>,
    /// Table indices mid-drain, polled each cycle against their plane.
    draining: Vec<usize>,
    policy: ParPolicy,
    now: Cycle,
    next_id: u32,
    words_on_circuit: u64,
    words_spilled: u64,
}

impl HybridFabric {
    /// A hybrid fabric over `mesh`: circuit routers with `router_params`,
    /// a spillover plane of `packet_params` routers (clock gating is
    /// forced on — the whole point of the hybrid router is that its
    /// packet plane sleeps while circuits carry the profiled flows),
    /// packing `packet_words` payload words per spillover wormhole.
    ///
    /// # Panics
    /// Panics when the mesh exceeds the 16×16 packet coordinate space or
    /// `packet_words` is zero (the packet plane's constraints).
    pub fn new(
        mesh: Mesh,
        router_params: RouterParams,
        packet_params: PacketParams,
        packet_words: usize,
    ) -> HybridFabric {
        HybridFabric::with_spill(
            mesh,
            router_params,
            SpillPlane::Packet(PacketFabric::new(mesh, packet_params.gated(), packet_words)),
        )
    }

    /// A hybrid fabric whose spillover rides a **bufferless deflection
    /// plane** ([`DeflectionFabric`]) instead of the buffered packet
    /// mesh: no spill-path FIFOs at all, contention absorbed as
    /// age-arbitrated misroutes. Clock gating is forced on, exactly as
    /// for the packet spill plane — an idle spill plane must sleep.
    ///
    /// # Panics
    /// Panics when the mesh exceeds the 16×16 deflection coordinate
    /// space.
    pub fn with_deflection_spill(
        mesh: Mesh,
        router_params: RouterParams,
        deflection_params: DeflectionParams,
    ) -> HybridFabric {
        HybridFabric::with_spill(
            mesh,
            router_params,
            SpillPlane::Deflection(DeflectionFabric::new(mesh, deflection_params.gated())),
        )
    }

    fn with_spill(mesh: Mesh, router_params: RouterParams, spill: SpillPlane) -> HybridFabric {
        HybridFabric {
            circuit: Soc::new(mesh, router_params),
            spill,
            table: Vec::new(),
            by_id: BTreeMap::new(),
            draining: Vec::new(),
            policy: ParPolicy::Auto,
            now: Cycle::ZERO,
            next_id: 0,
            words_on_circuit: 0,
            words_spilled: 0,
        }
    }

    /// A hybrid fabric with the paper's router on both planes.
    pub fn paper(mesh: Mesh) -> HybridFabric {
        HybridFabric::new(
            mesh,
            RouterParams::paper(),
            PacketParams::paper(),
            PacketFabric::DEFAULT_PACKET_WORDS,
        )
    }

    /// The circuit plane (testbench inspection).
    pub fn circuit_plane(&self) -> &Soc {
        &self.circuit
    }

    /// The packet spillover plane (testbench inspection).
    ///
    /// # Panics
    /// Panics when this hybrid spills onto a deflection plane
    /// ([`HybridFabric::with_deflection_spill`]) — use
    /// [`HybridFabric::deflection_plane`] there.
    pub fn packet_plane(&self) -> &PacketFabric {
        match &self.spill {
            SpillPlane::Packet(p) => p,
            SpillPlane::Deflection(_) => {
                panic!("this hybrid spills onto a deflection plane, not a packet plane")
            }
        }
    }

    /// The deflection spillover plane, when this hybrid was built with
    /// [`HybridFabric::with_deflection_spill`] (`None` on the default
    /// packet spill plane).
    pub fn deflection_plane(&self) -> Option<&DeflectionFabric> {
        match &self.spill {
            SpillPlane::Packet(_) => None,
            SpillPlane::Deflection(d) => Some(d),
        }
    }

    /// The GT-on-circuit vs BE-on-packet split so far.
    pub fn spill_stats(&self) -> SpillStats {
        SpillStats {
            circuit_paths: self
                .table
                .iter()
                .filter(|s| s.active)
                .map(|s| s.paths)
                .sum(),
            spilled_streams: self.active_spilled() as usize,
            words_on_circuit: self.words_on_circuit,
            words_spilled: self.words_spilled,
        }
    }

    fn active_spilled(&self) -> u64 {
        self.table
            .iter()
            .filter(|s| s.active && matches!(s.slot, PlaneSlot::Packet(_)))
            .count() as u64
    }

    /// Whether stream `id` is live (`None` when the handle is unknown) —
    /// the same composite-fabric drain probe the pure backends expose,
    /// polled by layers that own a hybrid plane (`crate::chiplet`).
    pub fn stream_is_active(&self, id: StreamId) -> Option<bool> {
        self.by_id.get(&id.0).map(|&idx| self.table[idx].active)
    }

    /// The GT/BE service gap: worst circuit-plane p95 latency versus best
    /// spilled p95 latency, over streams with deliveries so far.
    pub fn service_gap(&self) -> ServiceGap {
        let stats = Fabric::stream_stats(self);
        ServiceGap {
            gt_worst_p95: crate::stream::worst_p95(&stats, StreamPlane::Circuit),
            be_best_p95: crate::stream::best_p95(&stats, StreamPlane::Spilled),
        }
    }

    /// `true` when every circuit-plane stream's p95 latency is at or
    /// below every spilled stream's p95 (vacuously true when either side
    /// has no deliveries) — the per-connection QoS claim of the hybrid
    /// discipline.
    pub fn gt_no_worse_than_be(&self) -> bool {
        crate::stream::gt_no_worse_than_be(&Fabric::stream_stats(self))
    }

    /// Choose serial or pooled stepping (default [`ParPolicy::Auto`]).
    ///
    /// When the policy parallelises a fabric of this size, the two planes
    /// step **concurrently** — they share no state until `drain`/
    /// `activity` merge their results, so a hybrid cycle is a two-sided
    /// fork-join ([`noc_sim::par::par_join`]). The work-stealing pool
    /// makes the fork composable: each plane's own router fan-out runs
    /// *inside* its side of the fork, and idle lanes steal blocks across
    /// the plane boundary instead of waiting at a barrier — no lane clamp,
    /// no plane-vs-router trade-off. The policy is propagated to both
    /// planes; results are bit-identical on every path.
    pub fn set_parallelism(&mut self, policy: ParPolicy) {
        self.policy = policy;
        self.circuit.set_parallelism(policy);
        self.spill.as_fabric_mut().set_parallelism(policy);
    }

    fn step_planes(&mut self) {
        // Fork the planes onto the pool. With work-stealing deques there
        // is no reason to serialise them: a nested router dispatch inside
        // either side publishes its blocks for any idle lane to steal, so
        // the fork composes with full-width router fan-out instead of
        // clamping it (par_join itself degrades to inline calls under a
        // sequential or single-lane policy without waking the pool).
        let nodes = Soc::mesh(&self.circuit).nodes();
        let circuit = &mut self.circuit;
        let spill = self.spill.as_fabric_mut();
        par_join(self.policy, 2 * nodes, || circuit.step(), || spill.step());
        self.now += 1;

        // Mirror plane-finalised drains into the global session table: a
        // `ReleaseMode::Drain` hands the teardown to the serving plane,
        // which completes it loss-free once the stream's words are out.
        if !self.draining.is_empty() {
            let table = &mut self.table;
            let (circuit, spill) = (&self.circuit, &self.spill);
            self.draining.retain(|&idx| {
                let done = match table[idx].slot {
                    PlaneSlot::Circuit(local) => circuit.stream_is_active(local) == Some(false),
                    PlaneSlot::Packet(local) => spill.stream_is_active(local) == Some(false),
                };
                if done {
                    table[idx].active = false;
                    table[idx].draining = false;
                }
                !done
            });
        }
    }

    fn entry(&self, stream: StreamId) -> &HybridStream {
        let &idx = self
            .by_id
            .get(&stream.0)
            .unwrap_or_else(|| panic!("{stream} is not served by this hybrid fabric"));
        &self.table[idx]
    }
}

impl Clocked for HybridFabric {
    fn eval(&mut self) {
        // Like Soc and PacketFabric: the full hybrid cycle interleaves
        // wiring and clocking inside each plane, so the whole step lives
        // in commit() and eval is a no-op.
    }

    fn commit(&mut self) {
        self.step_planes();
    }
}

/// Backend label of [`HybridFabric`] in
/// [`crate::fabric::FabricSnapshot`]s.
pub(crate) const HYBRID_BACKEND: &str = "hybrid-mesh";

impl Fabric for HybridFabric {
    fn kind(&self) -> FabricKind {
        FabricKind::Hybrid
    }

    fn snapshot(&self) -> FabricSnapshot {
        FabricSnapshot::new(HYBRID_BACKEND, self.clone())
    }

    fn restore(&mut self, snapshot: &FabricSnapshot) -> Result<(), SnapshotError> {
        *self = snapshot.downcast::<HybridFabric>(HYBRID_BACKEND)?.clone();
        Ok(())
    }

    fn mesh(&self) -> &Mesh {
        Soc::mesh(&self.circuit)
    }

    fn now(&self) -> Cycle {
        self.now
    }

    /// Install `mapping`'s circuits on the circuit plane and its
    /// [`Mapping::spilled`] demands on the packet plane, handing out one
    /// session handle per stream (the [`Mapping::streams`] numbering,
    /// whichever plane serves it). Re-provisioning replaces both planes'
    /// plans and the session table (the [`Fabric`] idempotency contract).
    fn provision(&mut self, mapping: &Mapping) -> Result<Vec<StreamId>, ProvisionError> {
        Fabric::provision_with(self, mapping, ProvisionMode::Instant)
    }

    /// [`HybridFabric::provision`] with an explicit [`ProvisionMode`]:
    /// under [`ProvisionMode::BeDelivered`] the circuit plane's cold-start
    /// configuration rides the BE network (each admitted stream pays its
    /// §5.1 delivery wait); the packet spillover plane has no router
    /// configuration to deliver and is ready immediately either way.
    fn provision_with(
        &mut self,
        mapping: &Mapping,
        mode: ProvisionMode,
    ) -> Result<Vec<StreamId>, ProvisionError> {
        // Circuit plane: the admitted routes (ignores `spilled`; ids come
        // out in the mapping's numbering).
        let circuit_ids =
            Soc::provision_with(&mut self.circuit, mapping, mode).map_err(ProvisionError::from)?;
        // Packet plane: only the spilled demands — the admitted streams
        // are physically separated on circuit lanes and never touch it.
        // Its local numbering restarts at 0; the table maps global ids.
        let spill_view = Mapping {
            placement: mapping.placement.clone(),
            routes: Vec::new(),
            spilled: mapping.spilled.clone(),
            lane_capacity: mapping.lane_capacity,
        };
        let packet_ids = self.spill.as_fabric_mut().provision(&spill_view)?;

        self.table.clear();
        self.by_id.clear();
        self.draining.clear();
        let streams = mapping.streams();
        self.next_id = streams.len() as u32;
        let mut served = Vec::with_capacity(streams.len());
        let mut circuit_it = circuit_ids.into_iter();
        let mut packet_it = packet_ids.into_iter();
        for ms in streams {
            let (slot, paths) = if let Some(route) = ms.route {
                let local = circuit_it.next().expect("one circuit id per route stream");
                debug_assert_eq!(local, ms.id, "circuit plane uses the mapping numbering");
                (PlaneSlot::Circuit(local), mapping.routes[route].paths.len())
            } else {
                let local = packet_it.next().expect("one packet id per spilled stream");
                (PlaneSlot::Packet(local), 0)
            };
            let idx = self.table.len();
            self.by_id.insert(ms.id.0, idx);
            self.table.push(HybridStream {
                slot,
                paths,
                active: true,
                draining: false,
            });
            served.push(ms.id);
        }
        // Word accounting belongs to the plan being replaced; energy
        // ledgers (like the pure fabrics') keep accumulating.
        self.words_on_circuit = 0;
        self.words_spilled = 0;
        Ok(served)
    }

    fn inject_stream(&mut self, stream: StreamId, words: &[u16]) -> usize {
        let entry = *self.entry(stream);
        assert!(entry.active, "{stream} was released");
        assert!(
            !entry.draining,
            "{stream} is draining — admission is stopped"
        );
        match entry.slot {
            PlaneSlot::Circuit(local) => {
                self.circuit.inject_stream_words(local, words);
                self.words_on_circuit += words.len() as u64;
            }
            PlaneSlot::Packet(local) => {
                self.spill.as_fabric_mut().inject_stream(local, words);
                self.words_spilled += words.len() as u64;
            }
        }
        words.len()
    }

    fn drain_stream(&mut self, stream: StreamId) -> Vec<u16> {
        match self.entry(stream).slot {
            PlaneSlot::Circuit(local) => self.circuit.drain_stream_words(local),
            PlaneSlot::Packet(local) => self.spill.as_fabric_mut().drain_stream(local),
        }
    }

    /// Both planes' sessions under the hybrid's global handles. Circuit
    /// sessions report [`StreamPlane::Circuit`]; every packet-plane
    /// session reports [`StreamPlane::Spilled`] — on a hybrid, the packet
    /// plane *is* the best-effort spillover.
    fn stream_stats(&self) -> Vec<StreamStats> {
        let circuit: HashMap<u32, StreamStats> = self
            .circuit
            .stream_stats()
            .into_iter()
            .map(|s| (s.id.0, s))
            .collect();
        let packet: HashMap<u32, StreamStats> = self
            .spill
            .as_fabric()
            .stream_stats()
            .into_iter()
            .map(|s| (s.id.0, s))
            .collect();
        let mut ids: Vec<u32> = self.by_id.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter()
            .map(|gid| {
                let entry = &self.table[self.by_id[&gid]];
                let mut stats = match entry.slot {
                    PlaneSlot::Circuit(local) => circuit[&local.0].clone(),
                    PlaneSlot::Packet(local) => {
                        let mut s = packet[&local.0].clone();
                        s.plane = StreamPlane::Spilled;
                        s
                    }
                };
                stats.id = StreamId(gid);
                stats
            })
            .collect()
    }

    fn release(&mut self, stream: StreamId, mode: ReleaseMode) -> Result<(), AdmitError> {
        let Some(&idx) = self.by_id.get(&stream.0) else {
            return Err(AdmitError::UnknownStream(stream));
        };
        if !self.table[idx].active {
            return Err(AdmitError::UnknownStream(stream));
        }
        if self.table[idx].draining {
            return Err(AdmitError::Draining(stream));
        }
        let finalised = match self.table[idx].slot {
            PlaneSlot::Circuit(local) => {
                self.circuit.release_stream(local, mode)?;
                self.circuit.stream_is_active(local) == Some(false)
            }
            PlaneSlot::Packet(local) => {
                self.spill.as_fabric_mut().release(local, mode)?;
                self.spill.stream_is_active(local) == Some(false)
            }
        };
        if finalised {
            self.table[idx].active = false;
        } else {
            // The plane accepted a drain and holds the stream until its
            // words are out; mirror completion in `step_planes`.
            self.table[idx].draining = true;
            self.draining.push(idx);
        }
        Ok(())
    }

    /// Profiled re-admission: try the circuit plane first — CCN lane
    /// allocation against the live circuits, BE-delivered configuration
    /// charged to the stream ([`Soc::admit_stream`]). A demand the
    /// circuit lanes still cannot take spills onto the gated packet
    /// plane instead (the stream reports [`StreamPlane::Spilled`]), so
    /// `admit` only errors when the ask is malformed for both planes.
    fn admit(&mut self, demand: &StreamDemand) -> Result<StreamId, AdmitError> {
        let (slot, paths) = match self.circuit.admit_stream(demand) {
            Ok(local) => {
                // The lanes actually held, straight from the circuit
                // plane's allocation.
                let paths = self.circuit.stream_path_count(local).unwrap_or(1);
                (PlaneSlot::Circuit(local), paths)
            }
            Err(AdmitError::Unsupported(why)) => return Err(AdmitError::Unsupported(why)),
            Err(_circuit_full) => (
                PlaneSlot::Packet(self.spill.as_fabric_mut().admit(demand)?),
                0,
            ),
        };
        let id = StreamId(self.next_id);
        self.next_id += 1;
        let idx = self.table.len();
        self.by_id.insert(id.0, idx);
        self.table.push(HybridStream {
            slot,
            paths,
            active: true,
            draining: false,
        });
        Ok(id)
    }

    /// The circuit plane's side-effect-free admission probe: `true` when
    /// the CCN's lane allocation would put `demand` on circuit lanes
    /// against the live circuits right now — the feasibility check a
    /// promotion policy runs before churning a spilled session.
    fn can_admit_circuit(&self, demand: &StreamDemand) -> bool {
        self.circuit.can_admit_circuit(demand)
    }

    /// Forwarded to **both** planes: the packet plane flushes its open
    /// wormhole packets, and the circuit plane gets the call too so a
    /// future circuit-side staging layer cannot be silently skipped (the
    /// `Fabric::finish_injection` contract for composite fabrics).
    fn finish_injection(&mut self) {
        self.circuit.finish_injection();
        self.spill.as_fabric_mut().finish_injection();
    }

    fn set_parallelism(&mut self, policy: ParPolicy) {
        HybridFabric::set_parallelism(self, policy)
    }

    fn step(&mut self) {
        self.step_planes();
    }

    /// Both planes' activity merged per component kind. Energy is linear
    /// in event counts per `(component, class)`, so the merged ledger
    /// prices exactly like the planes priced separately.
    fn activity(&self) -> Vec<ComponentActivity> {
        let mut merged = self.circuit.activity();
        for comp in self.spill.as_fabric().activity() {
            match merged.iter_mut().find(|c| c.kind == comp.kind) {
                Some(existing) => existing.ledger.merge(&comp.ledger),
                None => merged.push(comp),
            }
        }
        merged
    }

    fn clear_activity(&mut self) {
        self.circuit.clear_activity();
        self.spill.as_fabric_mut().clear_activity();
    }

    fn is_quiescent(&self) -> bool {
        Fabric::is_quiescent(&self.circuit) && self.spill.as_fabric().is_quiescent()
    }

    fn total_overflows(&self) -> u64 {
        Fabric::total_overflows(&self.circuit) + self.spill.as_fabric().total_overflows()
    }

    fn spilled_streams(&self) -> u64 {
        self.active_spilled()
    }

    fn spilled_words(&self) -> u64 {
        self.words_spilled
    }

    /// A hybrid router carries both a circuit datapath and the packet
    /// plane's buffers/arbitration, so its silicon is the sum of both —
    /// the honest price of keeping a spillover plane around. (Leakage is
    /// charged on all of it; the *clock* energy of the idle packet plane
    /// is what gating removes.)
    fn area(&self, model: &EnergyModel) -> SquareMicroMeters {
        Fabric::area(&self.circuit, model) + self.spill.as_fabric().area(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ccn::Ccn;
    use crate::soc::Soc as SocPlane;
    use crate::tile::default_tile_kinds;
    use noc_apps::taskgraph::{TaskGraph, TrafficShape};
    use noc_sim::units::{Bandwidth, MegaHertz};

    /// The canonical oversubscribed workload
    /// ([`noc_apps::synthetic::oversubscribed_line`]) on a 3×1 line at
    /// 25 MHz: the heavy stream takes 3 lanes, the light one 2, the shared
    /// link has 4 — `saturated_line_yields_no_path` turned into a working
    /// deployment.
    fn oversubscribed_line() -> (TaskGraph, Mesh, Ccn) {
        let mesh = Mesh::new(3, 1);
        let ccn = Ccn::new(mesh, RouterParams::paper(), MegaHertz(25.0));
        let g = noc_apps::synthetic::oversubscribed_line(ccn.lane_capacity());
        (g, mesh, ccn)
    }

    /// Flush staging and run until stream `id` stops delivering; returns
    /// everything the session received, in order.
    fn drive_until_quiet(fabric: &mut HybridFabric, id: StreamId) -> Vec<u16> {
        fabric.finish_injection();
        let mut delivered = Vec::new();
        let mut idle = 0;
        let mut guard = 0;
        while idle < 4 {
            Fabric::run(fabric, 32);
            let fresh = Fabric::drain_stream(fabric, id);
            if fresh.is_empty() {
                idle += 1;
            } else {
                idle = 0;
                delivered.extend(fresh);
            }
            guard += 1;
            assert!(guard < 500, "hybrid stream never settled");
        }
        delivered
    }

    #[test]
    fn admitted_stream_rides_circuits_only() {
        let mesh = Mesh::new(2, 1);
        let ccn = Ccn::new(mesh, RouterParams::paper(), MegaHertz(25.0));
        let mut g = TaskGraph::new("pair");
        let a = g.add_process("a");
        let b = g.add_process("b");
        g.add_edge(a, b, Bandwidth(60.0), TrafficShape::Streaming, "e");
        let mapping = ccn
            .map_with_spill(&g, &default_tile_kinds(&mesh))
            .expect("feasible");
        assert!(mapping.spilled.is_empty());

        let mut hybrid = HybridFabric::paper(mesh);
        let ids = Fabric::provision(&mut hybrid, &mapping).unwrap();
        let words: Vec<u16> = (0..50).map(|i| 0x4000 + i).collect();
        Fabric::inject_stream(&mut hybrid, ids[0], &words);
        let delivered = drive_until_quiet(&mut hybrid, ids[0]);
        assert_eq!(delivered, words, "in order on a single circuit");

        let stats = hybrid.spill_stats();
        assert_eq!(stats.spilled_streams, 0);
        assert_eq!(stats.words_spilled, 0);
        assert_eq!(stats.words_on_circuit, 50);
        assert_eq!(
            hybrid.packet_plane().words_injected,
            0,
            "nothing may touch the packet plane"
        );
        // Per-stream telemetry agrees.
        let streams = Fabric::stream_stats(&hybrid);
        assert_eq!(streams.len(), 1);
        assert_eq!(streams[0].plane, StreamPlane::Circuit);
        assert_eq!(streams[0].delivered_words, 50);
        assert!(streams[0].latency.count() > 0);
    }

    #[test]
    fn oversubscription_spills_onto_the_packet_plane() {
        let (g, mesh, ccn) = oversubscribed_line();
        let mapping = ccn
            .map_with_spill(&g, &default_tile_kinds(&mesh))
            .expect("spill admission");
        assert_eq!(mapping.spilled.len(), 1, "premise: the light edge spills");

        let mut hybrid = HybridFabric::paper(mesh);
        let ids = Fabric::provision(&mut hybrid, &mapping).unwrap();
        assert_eq!(ids.len(), 2, "one circuit + one spilled session");
        // Inject on the spilled session: all its words take the packet
        // plane (it has no circuit).
        let words: Vec<u16> = (0..40).map(|i| 0x7000 + i).collect();
        Fabric::inject_stream(&mut hybrid, ids[1], &words);
        let delivered = drive_until_quiet(&mut hybrid, ids[1]);
        assert_eq!(delivered, words, "spilled stream delivered intact");
        let stats = hybrid.spill_stats();
        assert_eq!(stats.spilled_streams, 1);
        assert_eq!(stats.words_spilled, 40);
        assert!(Fabric::is_quiescent(&hybrid));
        // The spilled session's telemetry carries the BE label.
        let spilled = Fabric::stream_stats(&hybrid)
            .into_iter()
            .find(|s| s.plane == StreamPlane::Spilled)
            .expect("one spilled session");
        assert_eq!(spilled.delivered_words, 40);
    }

    #[test]
    fn both_planes_deliver_to_a_shared_destination() {
        let (g, mesh, ccn) = oversubscribed_line();
        let mapping = ccn
            .map_with_spill(&g, &default_tile_kinds(&mesh))
            .expect("spill admission");
        assert_eq!(
            mapping.spilled[0].dst,
            mapping.routes[0].paths[0].last().unwrap().node,
            "premise: both streams share one sink"
        );

        let mut hybrid = HybridFabric::paper(mesh);
        let ids = Fabric::provision(&mut hybrid, &mapping).unwrap();
        let gt: Vec<u16> = (0..60).map(|i| 0x1000 + i).collect();
        let be: Vec<u16> = (0..30).map(|i| 0x2000 + i).collect();
        Fabric::inject_stream(&mut hybrid, ids[0], &gt);
        Fabric::inject_stream(&mut hybrid, ids[1], &be);
        let gt_got = drive_until_quiet(&mut hybrid, ids[0]);
        let be_got = drive_until_quiet(&mut hybrid, ids[1]);
        assert_eq!(gt_got, gt, "circuit session exact at the shared sink");
        assert_eq!(be_got, be, "spilled session exact at the shared sink");
        assert_eq!(hybrid.spill_stats().words_on_circuit, 60);
        assert_eq!(hybrid.spill_stats().words_spilled, 30);
        assert!((hybrid.spill_stats().spill_fraction() - 30.0 / 90.0).abs() < 1e-12);
    }

    #[test]
    fn stream_addressed_injection_keeps_planes_separate() {
        // The same shared-sink workload, driven through the stream API:
        // drain_stream sees each session's exact words even though both
        // sessions terminate on one node — the per-stream drain accounting
        // the node-level API cannot give.
        let (g, mesh, ccn) = oversubscribed_line();
        let mapping = ccn
            .map_with_spill(&g, &default_tile_kinds(&mesh))
            .expect("spill admission");
        let mut hybrid = HybridFabric::paper(mesh);
        let ids = Fabric::provision(&mut hybrid, &mapping).unwrap();
        let streams = mapping.streams();
        let gt_id = streams.iter().find(|s| !s.spilled).unwrap().id;
        let be_id = streams.iter().find(|s| s.spilled).unwrap().id;
        assert_eq!(ids, vec![gt_id, be_id]);

        let gt: Vec<u16> = (0..60).map(|i| 0x1000 + i).collect();
        let be: Vec<u16> = (0..30).map(|i| 0x2000 + i).collect();
        Fabric::inject_stream(&mut hybrid, gt_id, &gt);
        Fabric::inject_stream(&mut hybrid, be_id, &be);
        hybrid.finish_injection();
        Fabric::run(&mut hybrid, 2_000);
        assert_eq!(Fabric::drain_stream(&mut hybrid, gt_id), gt);
        assert_eq!(Fabric::drain_stream(&mut hybrid, be_id), be);
        let stats = Fabric::stream_stats(&hybrid);
        let gt_stats = stats.iter().find(|s| s.id == gt_id).unwrap();
        let be_stats = stats.iter().find(|s| s.id == be_id).unwrap();
        assert_eq!(gt_stats.delivered_words, 60);
        assert_eq!(be_stats.delivered_words, 30);
        assert_eq!(gt_stats.latency.count(), 60, "every GT word timed");
        assert_eq!(be_stats.latency.count(), 30, "every BE word timed");
        let gap = hybrid.service_gap();
        assert!(gap.gt_worst_p95.is_some() && gap.be_best_p95.is_some());
        // (The GT p95 <= BE p95 QoS ordering is an *offered-load*
        // property — under the burst injection of this test the packet
        // plane's 16-bit links drain the one-shot backlog faster than the
        // 4-bit circuit lanes serialise theirs. The rate-driven check
        // lives in the deployment-level suites and the fabric_compare CI
        // gate.)
    }

    #[test]
    fn release_frees_lanes_and_readmits_the_spilled_demand_onto_circuit() {
        // The live re-admission story end to end: on the oversubscribed
        // line the light stream spills; release the heavy circuit and
        // re-admit the light demand — it must now land on the circuit
        // plane, with the BE-network reconfiguration wait charged to its
        // words' latency.
        let (g, mesh, ccn) = oversubscribed_line();
        let mapping = ccn
            .map_with_spill(&g, &default_tile_kinds(&mesh))
            .expect("spill admission");
        let mut hybrid = HybridFabric::paper(mesh);
        let ids = Fabric::provision(&mut hybrid, &mapping).unwrap();
        let gt_id = ids[0];
        let be_id = ids[1];
        assert_eq!(Fabric::spilled_streams(&hybrid), 1);

        // Retire the spilled session and the heavy circuit.
        Fabric::release(&mut hybrid, be_id, ReleaseMode::Drop).unwrap();
        Fabric::release(&mut hybrid, gt_id, ReleaseMode::Drop).unwrap();
        assert_eq!(Fabric::spilled_streams(&hybrid), 0);

        // Re-admit the previously spilled demand: the freed lanes take it.
        let demand = mapping.stream_demand(be_id).expect("demand recorded");
        let readmitted = Fabric::admit(&mut hybrid, &demand).expect("freed lanes admit");
        let stats = Fabric::stream_stats(&hybrid);
        let s = stats.iter().find(|s| s.id == readmitted).unwrap();
        assert_eq!(
            s.plane,
            StreamPlane::Circuit,
            "spilled demand re-admitted onto the circuit plane"
        );
        assert!(
            s.reconfig_cycles > 0,
            "runtime circuits pay BE configuration delivery"
        );

        // Words injected immediately wait for the configuration to land:
        // the reconfiguration cycles show up in measured latency.
        let words: Vec<u16> = (0..20).map(|i| 0x5000 + i).collect();
        Fabric::inject_stream(&mut hybrid, readmitted, &words);
        Fabric::run(&mut hybrid, 2_000);
        assert_eq!(Fabric::drain_stream(&mut hybrid, readmitted), words);
        let stats = Fabric::stream_stats(&hybrid);
        let s = stats.iter().find(|s| s.id == readmitted).unwrap();
        assert!(
            s.latency.min().unwrap() >= s.reconfig_cycles,
            "first word's latency ({:?}) must include the reconfiguration \
             wait ({})",
            s.latency.min(),
            s.reconfig_cycles
        );
    }

    #[test]
    fn reprovision_replaces_both_planes() {
        let (g, mesh, ccn) = oversubscribed_line();
        let mapping = ccn
            .map_with_spill(&g, &default_tile_kinds(&mesh))
            .expect("spill admission");
        let mut hybrid = HybridFabric::paper(mesh);
        let ids = Fabric::provision(&mut hybrid, &mapping).unwrap();
        assert_eq!(Fabric::spilled_streams(&hybrid), 1);
        // Traffic under the old plan, so its word accounting is nonzero.
        Fabric::inject_stream(&mut hybrid, ids[1], &[1, 2, 3]);
        Fabric::run(&mut hybrid, 50);
        assert_eq!(Fabric::spilled_words(&hybrid), 3);

        // Re-provision with a strictly feasible single stream: the spill
        // registration must vanish with the old plan.
        let mut g2 = TaskGraph::new("pair");
        let a = g2.add_process("a");
        let b = g2.add_process("b");
        g2.add_edge(a, b, Bandwidth(60.0), TrafficShape::Streaming, "e");
        let ccn2 = Ccn::new(mesh, RouterParams::paper(), MegaHertz(25.0));
        let m2 = ccn2
            .map_with_spill(&g2, &default_tile_kinds(&mesh))
            .unwrap();
        Fabric::provision(&mut hybrid, &m2).unwrap();
        assert_eq!(Fabric::spilled_streams(&hybrid), 0);
        // Word accounting belongs to the replaced plan and must reset too.
        assert_eq!(Fabric::spilled_words(&hybrid), 0);
        assert_eq!(hybrid.spill_stats().words_on_circuit, 0);
        assert_eq!(hybrid.spill_stats().spill_fraction(), 0.0);
        let paths: usize = hybrid.spill_stats().circuit_paths;
        assert_eq!(
            paths,
            m2.routes.iter().map(|r| r.paths.len()).sum::<usize>()
        );
    }

    #[test]
    fn hybrid_energy_sits_between_the_pure_endpoints() {
        // The headline ordering on the oversubscribed line, at fabric
        // level with hand-driven injection: pure circuit (admitted subset
        // only) <= hybrid (everything, spill gated) <= pure packet
        // (everything, ungated baseline).
        let (g, mesh, ccn) = oversubscribed_line();
        let kinds = default_tile_kinds(&mesh);
        let mapping = ccn.map_with_spill(&g, &kinds).expect("spill admission");
        let model = EnergyModel::calibrated(MegaHertz(25.0));
        let gt: Vec<u16> = (0..200u16).map(|i| i.wrapping_mul(0x9E37)).collect();
        let be: Vec<u16> = (0..100u16).map(|i| i.wrapping_mul(0x6D2B)).collect();
        let cycles = 2_000;

        // Pure circuit: only the admitted stream exists.
        let mut soc = SocPlane::new(mesh, RouterParams::paper());
        let ids = Fabric::provision(&mut soc, &mapping).unwrap();
        Fabric::inject_stream(&mut soc, ids[0], &gt);
        Fabric::run(&mut soc, cycles);
        let circuit_energy = soc.total_energy(&model);
        assert_eq!(Fabric::drain_stream(&mut soc, ids[0]).len(), gt.len());

        // Hybrid: both streams.
        let mut hybrid = HybridFabric::paper(mesh);
        let ids = Fabric::provision(&mut hybrid, &mapping).unwrap();
        Fabric::inject_stream(&mut hybrid, ids[0], &gt);
        Fabric::inject_stream(&mut hybrid, ids[1], &be);
        hybrid.finish_injection();
        Fabric::run(&mut hybrid, cycles);
        let hybrid_energy = hybrid.total_energy(&model);
        let delivered = Fabric::drain_stream(&mut hybrid, ids[0]).len()
            + Fabric::drain_stream(&mut hybrid, ids[1]).len();
        assert_eq!(delivered, gt.len() + be.len());

        // Pure packet: both streams, ungated baseline.
        let mut packet = PacketFabric::new(
            mesh,
            PacketParams::paper(),
            PacketFabric::DEFAULT_PACKET_WORDS,
        );
        let ids = Fabric::provision(&mut packet, &mapping).unwrap();
        Fabric::inject_stream(&mut packet, ids[0], &gt);
        Fabric::inject_stream(&mut packet, ids[1], &be);
        packet.finish_injection();
        Fabric::run(&mut packet, cycles);
        let packet_energy = packet.total_energy(&model);
        let delivered = Fabric::drain_stream(&mut packet, ids[0]).len()
            + Fabric::drain_stream(&mut packet, ids[1]).len();
        assert_eq!(delivered, gt.len() + be.len());

        assert!(
            circuit_energy.value() <= hybrid_energy.value(),
            "hybrid {hybrid_energy} below the pure circuit {circuit_energy} \
             that does strictly less work"
        );
        assert!(
            hybrid_energy.value() <= packet_energy.value(),
            "hybrid {hybrid_energy} must beat pure packet {packet_energy}"
        );
    }

    #[test]
    fn inject_on_unknown_stream_panics() {
        let mesh = Mesh::new(2, 1);
        let mut hybrid = HybridFabric::paper(mesh);
        let mut g = TaskGraph::new("pair");
        let a = g.add_process("a");
        let b = g.add_process("b");
        g.add_edge(a, b, Bandwidth(60.0), TrafficShape::Streaming, "e");
        let ccn = Ccn::new(mesh, RouterParams::paper(), MegaHertz(25.0));
        let m = ccn.map_with_spill(&g, &default_tile_kinds(&mesh)).unwrap();
        let ids = Fabric::provision(&mut hybrid, &m).unwrap();
        let bogus = StreamId(ids.len() as u32 + 41);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Fabric::inject_stream(&mut hybrid, bogus, &[1]);
        }));
        assert!(result.is_err(), "no such session handle");
    }

    #[test]
    fn deflection_spill_plane_carries_the_overflow() {
        // The same oversubscribed line, but the spillover rides the
        // bufferless deflection plane: the spilled session still delivers
        // exactly, labelled Spilled, and its telemetry carries the
        // deflection plane's max_deflections counter.
        let (g, mesh, ccn) = oversubscribed_line();
        let mapping = ccn
            .map_with_spill(&g, &default_tile_kinds(&mesh))
            .expect("spill admission");
        assert_eq!(mapping.spilled.len(), 1, "premise: the light edge spills");

        let mut hybrid = HybridFabric::with_deflection_spill(
            mesh,
            RouterParams::paper(),
            noc_packet::deflection::DeflectionParams::paper(),
        );
        assert!(hybrid.deflection_plane().is_some());
        let ids = Fabric::provision(&mut hybrid, &mapping).unwrap();
        let words: Vec<u16> = (0..40).map(|i| 0x7000 + i).collect();
        Fabric::inject_stream(&mut hybrid, ids[1], &words);
        let delivered = drive_until_quiet(&mut hybrid, ids[1]);
        assert_eq!(delivered, words, "spilled stream delivered intact");
        assert_eq!(hybrid.spill_stats().words_spilled, 40);
        assert!(Fabric::is_quiescent(&hybrid));
        let spilled = Fabric::stream_stats(&hybrid)
            .into_iter()
            .find(|s| s.plane == StreamPlane::Spilled)
            .expect("one spilled session");
        assert_eq!(spilled.delivered_words, 40);
        // A single spilled stream on an otherwise idle plane never
        // deflects — the counter is wired through, and it is honest.
        assert_eq!(spilled.max_deflections, 0);
        // Snapshot/restore round-trips the deflection spill plane too.
        let snap = Fabric::snapshot(&hybrid);
        let mut other = HybridFabric::with_deflection_spill(
            mesh,
            RouterParams::paper(),
            noc_packet::deflection::DeflectionParams::paper(),
        );
        Fabric::restore(&mut other, &snap).unwrap();
        assert_eq!(other.spill_stats().words_spilled, 40);

        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = hybrid.packet_plane();
        }));
        assert!(result.is_err(), "packet_plane() refuses a deflection spill");
    }

    #[test]
    fn drained_release_spans_both_planes_without_loss() {
        // Drain-release both sessions of the oversubscribed line while
        // words are still queued and in flight on *both* planes: every
        // accepted word must land, then both teardowns finalise and the
        // freed circuit lanes are re-admissible.
        let (g, mesh, ccn) = oversubscribed_line();
        let mapping = ccn
            .map_with_spill(&g, &default_tile_kinds(&mesh))
            .expect("spill admission");
        let mut hybrid = HybridFabric::paper(mesh);
        let ids = Fabric::provision(&mut hybrid, &mapping).unwrap();
        let gt: Vec<u16> = (0..80).map(|i| 0x1100 + i).collect();
        let be: Vec<u16> = (0..40).map(|i| 0x2200 + i).collect();
        Fabric::inject_stream(&mut hybrid, ids[0], &gt);
        Fabric::inject_stream(&mut hybrid, ids[1], &be);
        Fabric::run(&mut hybrid, 8); // backlog mostly still queued
        Fabric::release(&mut hybrid, ids[0], ReleaseMode::Drain).unwrap();
        Fabric::release(&mut hybrid, ids[1], ReleaseMode::Drain).unwrap();
        assert_eq!(
            Fabric::release(&mut hybrid, ids[0], ReleaseMode::Drain),
            Err(AdmitError::Draining(ids[0])),
            "a drain in progress cannot be released again"
        );
        Fabric::run(&mut hybrid, 4_000);
        assert_eq!(Fabric::drain_stream(&mut hybrid, ids[0]), gt);
        assert_eq!(Fabric::drain_stream(&mut hybrid, ids[1]), be);
        let stats = Fabric::stream_stats(&hybrid);
        assert!(
            stats.iter().all(|s| !s.active),
            "both drains must finalise: {stats:?}"
        );
        assert!(Fabric::is_quiescent(&hybrid));
        // The heavy circuit's lanes are free again.
        let demand = mapping.stream_demand(ids[0]).unwrap();
        assert!(Fabric::can_admit_circuit(&hybrid, &demand));
    }
}
