//! Run-time reconfiguration: moving the SoC between application mappings.
//!
//! Streams are semi-static — "a stream is fixed for a relatively long
//! time" — but "the control system might change some settings of processes
//! due to changing environmental conditions" (Section 3.3), and the
//! multi-mode terminal switches standards entirely (WLAN ↔ UMTS,
//! Section 1). A reconfiguration is the *diff* between two mappings:
//! deactivation words for circuits only the old mapping uses, activation
//! words for circuits only the new one uses. The diff rides the BE network
//! like any other configuration traffic.

use crate::be::BeNetwork;
use crate::ccn::{EdgeRoute, Mapping};
use crate::soc::Soc;
use crate::topology::NodeId;
use noc_core::config::{ConfigEntry, ConfigWord};
use noc_core::error::ConfigError;
use noc_core::params::RouterParams;
use noc_sim::time::Cycle;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The configuration-word diff between two mappings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigPlan {
    /// Words deactivating output lanes the new mapping no longer uses.
    pub teardown: Vec<(NodeId, ConfigWord)>,
    /// Words activating the new mapping's circuits.
    pub setup: Vec<(NodeId, ConfigWord)>,
}

impl ReconfigPlan {
    /// Total configuration words to deliver.
    pub fn word_count(&self) -> usize {
        self.teardown.len() + self.setup.len()
    }

    /// Routers touched by the plan.
    pub fn routers_touched(&self) -> usize {
        self.teardown
            .iter()
            .chain(&self.setup)
            .map(|&(n, _)| n)
            .collect::<BTreeSet<_>>()
            .len()
    }
}

/// Output lanes (as `(node, flat word address portion)`) used by a mapping.
fn used_lanes(mapping: &Mapping, params: &RouterParams) -> BTreeSet<(NodeId, u16)> {
    mapping
        .config_words(params)
        .into_iter()
        // The high bits of a word address the output lane; two words for
        // the same lane with different entries still refer to one lane.
        .map(|(node, w)| (node, w.0 >> params.entry_bits()))
        .collect()
}

/// The configuration words activating one circuit — the setup half of a
/// single-stream reconfiguration. Runtime admission
/// (`Fabric::admit`) ships exactly these over the BE network, so a
/// stream set up mid-run pays the same §5.1 delivery budget as an
/// application switch.
pub fn setup_words_for_route(
    route: &EdgeRoute,
    params: &RouterParams,
) -> Vec<(NodeId, ConfigWord)> {
    route.config_words(params)
}

/// The deactivation words tearing one circuit down — the teardown half of
/// a single-stream reconfiguration (`Fabric::release`). One word per
/// output lane the route holds, deduplicated and sorted for deterministic
/// delivery order.
pub fn teardown_words_for_route(
    route: &EdgeRoute,
    params: &RouterParams,
) -> Vec<(NodeId, ConfigWord)> {
    let lanes: BTreeSet<(NodeId, u16)> = route
        .config_words(params)
        .into_iter()
        .map(|(node, w)| (node, w.0 >> params.entry_bits()))
        .collect();
    let mut words: Vec<(NodeId, ConfigWord)> = lanes
        .into_iter()
        .map(|(node, lane_addr)| {
            let word =
                ConfigWord((lane_addr << params.entry_bits()) | ConfigEntry::INACTIVE.pack(params));
            (node, word)
        })
        .collect();
    words.sort_by_key(|&(n, w)| (n, w.0));
    words
}

/// Compute the diff taking the SoC from `old` to `new`.
pub fn plan(old: &Mapping, new: &Mapping, params: &RouterParams) -> ReconfigPlan {
    let old_lanes = used_lanes(old, params);
    let new_lanes = used_lanes(new, params);

    let mut teardown = Vec::new();
    for &(node, lane_addr) in &old_lanes {
        if !new_lanes.contains(&(node, lane_addr)) {
            // Deactivation word: same lane address, inactive entry.
            let word =
                ConfigWord((lane_addr << params.entry_bits()) | ConfigEntry::INACTIVE.pack(params));
            teardown.push((node, word));
        }
    }
    teardown.sort_by_key(|&(n, w)| (n, w.0));

    // Setup: every word of the new mapping whose (node, lane, entry) is not
    // already in force under the old mapping. Re-sending identical words is
    // harmless but wastes BE bandwidth, so filter exact duplicates.
    let old_words: BTreeSet<(NodeId, u16)> = old
        .config_words(params)
        .into_iter()
        .map(|(n, w)| (n, w.0))
        .collect();
    let mut setup: Vec<(NodeId, ConfigWord)> = new
        .config_words(params)
        .into_iter()
        .filter(|&(n, w)| !old_words.contains(&(n, w.0)))
        .collect();
    setup.sort_by_key(|&(n, w)| (n, w.0));

    ReconfigPlan { teardown, setup }
}

/// Deliver a plan over the BE network from the CCN's node, starting at
/// `now`. Words are batched per destination router (one message each —
/// teardown and setup batches kept separate so teardown arrives first on
/// equal paths). Returns the cycle by which everything is applied.
pub fn execute(
    plan: &ReconfigPlan,
    be: &mut BeNetwork,
    soc: &mut Soc,
    ccn_node: NodeId,
    now: Cycle,
) -> Result<Cycle, ConfigError> {
    let mut latest = now;
    for phase in [&plan.teardown, &plan.setup] {
        // Batch words by destination router.
        let mut by_node: std::collections::BTreeMap<NodeId, Vec<ConfigWord>> =
            std::collections::BTreeMap::new();
        for &(node, word) in phase {
            by_node.entry(node).or_default().push(word);
        }
        for (node, words) in by_node {
            let delivery = be.send(now, ccn_node, node, &words);
            latest = Cycle(latest.0.max(delivery.0));
        }
    }
    // Apply everything once due.
    be.deliver_due(latest, soc)?;
    Ok(latest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::be::BeConfig;
    use crate::ccn::Ccn;
    use crate::tile::TileKind;
    use crate::topology::Mesh;
    use noc_apps::taskgraph::{TaskGraph, TrafficShape};
    use noc_sim::units::{Bandwidth, MegaHertz};

    fn setup() -> (Ccn, Vec<TileKind>, Mesh) {
        let mesh = Mesh::new(3, 3);
        let ccn = Ccn::new(mesh, RouterParams::paper(), MegaHertz(25.0));
        let kinds = vec![TileKind::Dsrh; 9];
        (ccn, kinds, mesh)
    }

    fn pipeline(name: &str, stages: usize, bw: f64) -> TaskGraph {
        let mut g = TaskGraph::new(name);
        let ids: Vec<_> = (0..stages)
            .map(|i| g.add_process(format!("{name}{i}")))
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], Bandwidth(bw), TrafficShape::Streaming, "e");
        }
        g
    }

    #[test]
    fn identical_mappings_need_no_words() {
        let (ccn, kinds, _) = setup();
        let g = pipeline("a", 4, 60.0);
        let m = ccn.map(&g, &kinds).unwrap();
        let p = plan(&m, &m, &RouterParams::paper());
        assert_eq!(p.word_count(), 0);
    }

    #[test]
    fn switching_applications_tears_down_and_sets_up() {
        let (ccn, kinds, _) = setup();
        let old = ccn.map(&pipeline("wlan", 5, 70.0), &kinds).unwrap();
        let new = ccn.map(&pipeline("umts", 3, 30.0), &kinds).unwrap();
        let p = plan(&old, &new, &RouterParams::paper());
        assert!(!p.teardown.is_empty(), "old circuits must be deactivated");
        assert!(!p.setup.is_empty(), "new circuits must be activated");
    }

    #[test]
    fn execute_reaches_target_configuration() {
        let (ccn, kinds, mesh) = setup();
        let params = RouterParams::paper();
        let old = ccn.map(&pipeline("wlan", 5, 70.0), &kinds).unwrap();
        let new = ccn.map(&pipeline("umts", 3, 30.0), &kinds).unwrap();

        // Bring the SoC into the old mapping, then reconfigure over BE.
        let mut soc = Soc::new(mesh, params);
        old.apply_direct(&mut soc).unwrap();
        let mut be = BeNetwork::new(mesh, BeConfig::default());
        let p = plan(&old, &new, &params);
        let done = execute(&p, &mut be, &mut soc, mesh.node(0, 0), Cycle::ZERO).unwrap();
        assert!(done > Cycle::ZERO);

        // The SoC's configuration must now equal a fresh application of
        // the new mapping.
        let mut reference = Soc::new(mesh, params);
        new.apply_direct(&mut reference).unwrap();
        for node in mesh.iter() {
            assert_eq!(
                soc.router(node).config().snapshot_words(),
                reference.router(node).config().snapshot_words(),
                "router {node:?} diverges after reconfiguration"
            );
        }
    }

    #[test]
    fn reconfiguration_latency_is_milliseconds_at_most() {
        // Application switch on a 3x3 mesh at 25 MHz: the paper budgets
        // 1 ms per lane and 20 ms per router; a whole-application switch
        // should stay well inside a few ms.
        let (ccn, kinds, mesh) = setup();
        let params = RouterParams::paper();
        let old = ccn.map(&pipeline("wlan", 5, 70.0), &kinds).unwrap();
        let new = ccn.map(&pipeline("umts", 4, 30.0), &kinds).unwrap();
        let mut soc = Soc::new(mesh, params);
        old.apply_direct(&mut soc).unwrap();
        let mut be = BeNetwork::new(mesh, BeConfig::default());
        let p = plan(&old, &new, &params);
        let done = execute(&p, &mut be, &mut soc, mesh.node(0, 0), Cycle::ZERO).unwrap();
        let ms = done.at(MegaHertz(25.0)).as_millis();
        assert!(ms < 1.0, "application switch took {ms} ms");
    }

    #[test]
    fn route_setup_and_teardown_words_cancel() {
        // Applying a route's setup words then its teardown words leaves a
        // fresh SoC's configuration untouched — the invariant behind
        // `Fabric::release` + `Fabric::admit` round-tripping.
        let (ccn, kinds, mesh) = setup();
        let params = RouterParams::paper();
        let m = ccn.map(&pipeline("a", 3, 150.0), &kinds).unwrap();
        let route = &m.routes[0];
        let mut soc = crate::soc::Soc::new(mesh, params);
        let pristine: Vec<_> = mesh
            .iter()
            .map(|n| soc.router(n).config().snapshot_words())
            .collect();
        for (node, word) in setup_words_for_route(route, &params) {
            soc.router_mut(node).apply_config_word(word).unwrap();
        }
        let configured: Vec<_> = mesh
            .iter()
            .map(|n| soc.router(n).config().snapshot_words())
            .collect();
        assert_ne!(pristine, configured, "setup must change configuration");
        for (node, word) in teardown_words_for_route(route, &params) {
            soc.router_mut(node).apply_config_word(word).unwrap();
        }
        let torn: Vec<_> = mesh
            .iter()
            .map(|n| soc.router(n).config().snapshot_words())
            .collect();
        assert_eq!(pristine, torn, "teardown must cancel setup exactly");
    }

    #[test]
    fn plan_counts_touched_routers() {
        let (ccn, kinds, _) = setup();
        let old = ccn.map(&pipeline("a", 2, 60.0), &kinds).unwrap();
        let new = ccn.map(&pipeline("b", 2, 60.0), &kinds).unwrap();
        let p = plan(&old, &new, &RouterParams::paper());
        if p.word_count() > 0 {
            assert!(p.routers_touched() >= 1);
        }
    }
}
