//! The Central Coordination Node: run-time mapping and lane allocation.
//!
//! "The CCN performs the feasibility analysis, spatial mapping, process
//! allocation and configuration of the tiles and the NoC before the start
//! of an application" (Section 1.1). Concretely, given a Kahn process graph
//! and the SoC's tile inventory, the CCN here:
//!
//! 1. **Clusters** processes whose tile-interface lane pressure exceeds
//!    the per-port lane count — a tile has only `lanes_per_port` transmit
//!    and receive lanes, so a process talking to five distinct partners
//!    must share a tile with its heaviest partner (the paper's mapper
//!    likewise places multiple cooperating processes per tile when
//!    beneficial);
//! 2. **Places** clusters on tiles — greedy by communication volume,
//!    minimising bandwidth-weighted Manhattan distance, preferring tiles
//!    whose kind matches the process affinity ("the tiles that can execute
//!    it most efficiently");
//! 3. **Allocates lane paths** per tile-to-tile *demand* (all edges between
//!    the same pair of tiles share one circuit — the 16-bit tile interface
//!    multiplexes them, the 4-bit header tags them), taking
//!    ⌈bandwidth / lane-capacity⌉ parallel lanes ("Depending on the
//!    application one or more lanes ... can be used", Section 5.2);
//! 4. **Checks feasibility** — guaranteed-throughput demands against lane
//!    capacity, rejecting infeasible requests instead of degrading them;
//! 5. **Emits configuration words** — the 10-bit words per output lane the
//!    BE network carries to each router.
//!
//! The router does no run-time scheduling: once lanes are configured the
//! streams are physically separated, which is the paper's core argument.

use crate::soc::Soc;
use crate::stream::{AdmitError, StreamDemand, StreamId};
use crate::tile::TileKind;
use crate::topology::{Mesh, NodeId};
use noc_apps::taskgraph::{EdgeId, ProcessId, TaskGraph};
use noc_core::config::{ConfigEntry, ConfigWord};
use noc_core::error::ConfigError;
use noc_core::lane::Port;
use noc_core::params::RouterParams;
use noc_sim::units::{Bandwidth, MegaHertz};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

/// One router traversal of an allocated circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathHop {
    /// The router.
    pub node: NodeId,
    /// Input side (port, lane) at this router.
    pub in_port: Port,
    /// Input lane within the port.
    pub in_lane: usize,
    /// Output side (port, lane) at this router.
    pub out_port: Port,
    /// Output lane within the port.
    pub out_lane: usize,
}

/// The allocated circuit(s) for one tile-to-tile demand: all task-graph
/// edges between the same source and destination tile share it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeRoute {
    /// The edges served by this circuit: at least one when produced by
    /// the `Ccn::map*` pipeline, empty for circuits set up by runtime
    /// admission ([`Ccn::admit_stream`]), which serve a [`StreamDemand`]
    /// rather than task-graph edges.
    pub edges: Vec<EdgeId>,
    /// Parallel physical circuits (one per allocated lane). Empty when
    /// source and destination share a tile (no NoC traversal).
    pub paths: Vec<Vec<PathHop>>,
    /// Bandwidth each circuit provides.
    pub lane_capacity: Bandwidth,
    /// Summed guaranteed-throughput demand of the edges — recorded so a
    /// released circuit can be re-admitted at runtime with the original
    /// ask ([`Mapping::stream_demand`]).
    pub demand: Bandwidth,
}

impl EdgeRoute {
    /// Total bandwidth allocated to the demand.
    pub fn allocated_bandwidth(&self) -> Bandwidth {
        if self.paths.is_empty() {
            // On-tile communication is not NoC-limited.
            Bandwidth(f64::INFINITY)
        } else {
            self.lane_capacity * self.paths.len() as f64
        }
    }

    /// Does this circuit serve `edge`?
    pub fn serves(&self, edge: EdgeId) -> bool {
        self.edges.contains(&edge)
    }

    /// Hop count of the circuit (routers traversed).
    pub fn hops(&self) -> usize {
        self.paths.first().map_or(0, |p| p.len())
    }

    /// Source tile of the circuit (`None` for on-tile communication).
    pub fn src(&self) -> Option<NodeId> {
        self.paths.first().and_then(|p| p.first()).map(|h| h.node)
    }

    /// Destination tile of the circuit (`None` for on-tile communication).
    pub fn dst(&self) -> Option<NodeId> {
        self.paths.first().and_then(|p| p.last()).map(|h| h.node)
    }

    /// The configuration words activating this circuit, as
    /// `(router, word)` pairs — the per-route slice of
    /// [`Mapping::config_words`], used by runtime admission to set up one
    /// stream without replaying the whole mapping.
    pub fn config_words(&self, params: &RouterParams) -> Vec<(NodeId, ConfigWord)> {
        let mut words = Vec::new();
        for path in &self.paths {
            for hop in path {
                let select = params
                    .foreign_select(hop.out_port, hop.in_port, hop.in_lane)
                    .expect("allocator produced a legal hop");
                let word = ConfigWord::for_lane(
                    hop.out_port,
                    hop.out_lane,
                    ConfigEntry::active(select),
                    params,
                )
                .expect("allocator produced a legal lane");
                words.push((hop.node, word));
            }
        }
        words
    }

    /// [`EdgeRoute::config_words`] batched per destination router, in
    /// deterministic node order — the message granularity the BE network
    /// delivers at. Shared by runtime admission and BE-delivered initial
    /// provisioning ([`crate::stream::ProvisionMode::BeDelivered`]) so
    /// both phases serialise identically on the configuration plane.
    pub fn config_words_by_node(
        &self,
        params: &RouterParams,
    ) -> std::collections::BTreeMap<NodeId, Vec<ConfigWord>> {
        let mut by_node: std::collections::BTreeMap<NodeId, Vec<ConfigWord>> =
            std::collections::BTreeMap::new();
        for (node, word) in self.config_words(params) {
            by_node.entry(node).or_default().push(word);
        }
        by_node
    }
}

/// A tile-to-tile demand the CCN could *not* admit on circuit lanes.
///
/// Produced only by [`Ccn::map_with_spill`]: instead of rejecting the
/// whole application when lanes run out, the CCN records the overflow
/// demands so a best-effort plane (the packet fabric, or the hybrid
/// fabric's spillover plane) can carry them — profiled hybrid switching's
/// admission story (arXiv:2005.08478).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpillStream {
    /// The task-graph edges sharing this demand (at least one).
    pub edges: Vec<EdgeId>,
    /// Source tile.
    pub src: NodeId,
    /// Destination tile.
    pub dst: NodeId,
    /// Summed guaranteed-throughput demand of the edges.
    pub demand: Bandwidth,
    /// Why the circuit plane could not take it.
    pub reason: SpillReason,
}

/// Why a demand spilled off the circuit plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpillReason {
    /// The demand alone exceeds a port's parallel-lane capacity.
    TooWide,
    /// Heavier demands exhausted every lane path first.
    NoFreeLanes,
}

/// A complete application mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    /// Process placements.
    pub placement: Vec<(ProcessId, NodeId)>,
    /// Per-edge circuits.
    pub routes: Vec<EdgeRoute>,
    /// Demands without circuits, for a best-effort/packet plane to carry.
    /// Always empty under [`Ccn::map`]'s strict admission.
    pub spilled: Vec<SpillStream>,
    /// Payload bandwidth of one circuit lane at the mapping clock
    /// ([`Ccn::lane_capacity`]) — recorded so fabrics can re-run lane
    /// admission at runtime ([`crate::fabric::Fabric::admit`]) without a
    /// CCN in hand.
    pub lane_capacity: Bandwidth,
}

/// One NoC-crossing stream of a [`Mapping`], with its session handle.
///
/// This is the authoritative [`StreamId`] numbering every fabric uses at
/// provision time: routes with lane paths first (in `Mapping::routes`
/// order), spilled demands after — so handles are stable across backends
/// and a hybrid deployment's circuit/spill split is visible in the id
/// space. On-tile routes (no lane paths) never appear: they are not NoC
/// streams.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MappedStream {
    /// The session handle [`crate::fabric::Fabric::provision`] hands out.
    pub id: StreamId,
    /// Source tile.
    pub src: NodeId,
    /// Destination tile.
    pub dst: NodeId,
    /// Summed guaranteed-throughput demand of the stream's edges.
    pub demand: Bandwidth,
    /// `true` when the circuit plane could not admit the demand.
    pub spilled: bool,
    /// Index into [`Mapping::routes`] (circuit streams only).
    pub route: Option<usize>,
    /// Index into [`Mapping::spilled`] (spilled streams only).
    pub spill: Option<usize>,
}

impl Mapping {
    /// The tile a process was placed on.
    pub fn node_of(&self, p: ProcessId) -> Option<NodeId> {
        self.placement
            .iter()
            .find(|&&(q, _)| q == p)
            .map(|&(_, n)| n)
    }

    /// Total router hops over all circuits (a mapping-quality metric).
    pub fn total_hops(&self) -> usize {
        self.routes
            .iter()
            .map(|r| r.hops() * r.paths.len().max(1))
            .sum()
    }

    /// The configuration words the CCN must deliver, as `(router, word)`
    /// pairs in teardown-safe order (setup is order-independent because
    /// each word touches one output lane).
    pub fn config_words(&self, params: &RouterParams) -> Vec<(NodeId, ConfigWord)> {
        self.routes
            .iter()
            .flat_map(|route| route.config_words(params))
            .collect()
    }

    /// Every NoC-crossing stream of the mapping, in [`StreamId`] order:
    /// routes with lane paths first, spilled demands after. This numbering
    /// is the [`crate::fabric::Fabric::provision`] contract — a backend
    /// serves exactly these handles (the circuit-only `Soc` skips the
    /// spilled ones, which it cannot carry).
    pub fn streams(&self) -> Vec<MappedStream> {
        let mut out = Vec::new();
        for (i, route) in self.routes.iter().enumerate() {
            if route.paths.is_empty() {
                continue; // on-tile communication never touches the NoC
            }
            out.push(MappedStream {
                id: StreamId(out.len() as u32),
                src: route.src().expect("non-empty paths"),
                dst: route.dst().expect("non-empty paths"),
                demand: route.demand,
                spilled: false,
                route: Some(i),
                spill: None,
            });
        }
        for (i, spill) in self.spilled.iter().enumerate() {
            out.push(MappedStream {
                id: StreamId(out.len() as u32),
                src: spill.src,
                dst: spill.dst,
                demand: spill.demand,
                spilled: true,
                route: None,
                spill: Some(i),
            });
        }
        out
    }

    /// The guaranteed-throughput ask of stream `id`, for re-admission
    /// after a [`crate::fabric::Fabric::release`].
    pub fn stream_demand(&self, id: StreamId) -> Option<StreamDemand> {
        self.streams()
            .into_iter()
            .find(|s| s.id == id)
            .map(|s| StreamDemand {
                src: s.src,
                dst: s.dst,
                demand: s.demand,
            })
    }

    /// Apply the mapping directly to a SoC's routers (the instantaneous
    /// testbench path; production delivery goes through [`crate::be`]).
    pub fn apply_direct(&self, soc: &mut Soc) -> Result<(), ConfigError> {
        let params = *soc.params();
        for (node, word) in self.config_words(&params) {
            soc.router_mut(node).apply_config_word(word)?;
        }
        Ok(())
    }

    /// The tile transmit lane assigned to an edge at its source (for
    /// binding traffic sources), when the edge crosses the NoC.
    pub fn source_lane(&self, edge: EdgeId) -> Option<usize> {
        self.routes
            .iter()
            .find(|r| r.serves(edge))
            .and_then(|r| r.paths.first())
            .and_then(|p| p.first())
            .map(|hop| hop.in_lane)
    }

    /// The tile receive lane at an edge's destination.
    pub fn dest_lane(&self, edge: EdgeId) -> Option<usize> {
        self.routes
            .iter()
            .find(|r| r.serves(edge))
            .and_then(|r| r.paths.first())
            .and_then(|p| p.last())
            .map(|hop| hop.out_lane)
    }
}

/// Why a mapping attempt failed feasibility analysis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingError {
    /// More processes than tiles.
    NotEnoughTiles {
        /// Processes requested.
        processes: usize,
        /// Tiles available.
        tiles: usize,
    },
    /// An edge needs more parallel lanes than a port offers.
    EdgeTooWide {
        /// The offending edge.
        edge: EdgeId,
        /// Lanes required.
        needed: usize,
        /// Lanes per port.
        available: usize,
    },
    /// No path with enough free lanes exists.
    NoPath {
        /// The edge that could not be routed.
        edge: EdgeId,
    },
    /// A tile ran out of interface lanes for its streams.
    TileLanesExhausted {
        /// The saturated node.
        node: NodeId,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::NotEnoughTiles { processes, tiles } => {
                write!(f, "{processes} processes but only {tiles} tiles")
            }
            MappingError::EdgeTooWide {
                edge,
                needed,
                available,
            } => write!(
                f,
                "edge {edge:?} needs {needed} lanes, a port has {available}"
            ),
            MappingError::NoPath { edge } => write!(f, "no lane path for edge {edge:?}"),
            MappingError::TileLanesExhausted { node } => {
                write!(f, "tile {node:?} has no free interface lanes")
            }
        }
    }
}

impl std::error::Error for MappingError {}

/// The Central Coordination Node.
#[derive(Debug, Clone)]
pub struct Ccn {
    mesh: Mesh,
    params: RouterParams,
    clock: MegaHertz,
}

/// Lane-occupancy bookkeeping during allocation.
struct Allocator {
    /// Free lanes per directed link, keyed by `(node, out port)`.
    link_free: HashMap<(NodeId, Port), Vec<bool>>,
    /// Free tile transmit lanes per node (tile → router direction).
    tx_free: Vec<Vec<bool>>,
    /// Free tile receive lanes per node (router → tile direction).
    rx_free: Vec<Vec<bool>>,
}

impl Allocator {
    fn new(mesh: &Mesh, params: &RouterParams) -> Allocator {
        let mut link_free = HashMap::new();
        for (from, port, _) in mesh.links() {
            link_free.insert((from, port), vec![true; params.lanes_per_port]);
        }
        Allocator {
            link_free,
            tx_free: (0..mesh.nodes())
                .map(|_| vec![true; params.lanes_per_port])
                .collect(),
            rx_free: (0..mesh.nodes())
                .map(|_| vec![true; params.lanes_per_port])
                .collect(),
        }
    }

    fn link_free_count(&self, node: NodeId, port: Port) -> usize {
        self.link_free
            .get(&(node, port))
            .map_or(0, |v| v.iter().filter(|&&f| f).count())
    }

    /// Mark every lane of a directed link as unusable (fault injection).
    fn kill_link(&mut self, node: NodeId, port: Port) {
        if let Some(lanes) = self.link_free.get_mut(&(node, port)) {
            lanes.fill(false);
        }
    }

    /// Claim `k` lanes on a directed link; returns their indices.
    fn claim_link(&mut self, node: NodeId, port: Port, k: usize) -> Vec<usize> {
        let lanes = self.link_free.get_mut(&(node, port)).expect("link exists");
        let mut out = Vec::with_capacity(k);
        for (i, free) in lanes.iter_mut().enumerate() {
            if *free && out.len() < k {
                *free = false;
                out.push(i);
            }
        }
        assert_eq!(out.len(), k, "claim_link called without capacity check");
        out
    }

    fn claim_tile(pool: &mut [bool], k: usize) -> Option<Vec<usize>> {
        let mut out = Vec::with_capacity(k);
        for (i, free) in pool.iter_mut().enumerate() {
            if *free && out.len() < k {
                *free = false;
                out.push(i);
            }
        }
        (out.len() == k).then_some(out)
    }

    /// Mark every lane an existing circuit holds as occupied — the state
    /// runtime admission re-runs against: the allocator starts from the
    /// live circuits instead of an empty mesh, so freed lanes (released
    /// streams are simply not occupied) become admissible again.
    fn occupy_route(&mut self, route: &EdgeRoute) {
        for path in &route.paths {
            for hop in path {
                if hop.in_port == Port::Tile {
                    self.tx_free[hop.node.0][hop.in_lane] = false;
                }
                if hop.out_port == Port::Tile {
                    self.rx_free[hop.node.0][hop.out_lane] = false;
                } else if let Some(lanes) = self.link_free.get_mut(&(hop.node, hop.out_port)) {
                    lanes[hop.out_lane] = false;
                }
            }
        }
    }
}

impl Ccn {
    /// A CCN for the given mesh and router configuration at the SoC clock.
    pub fn new(mesh: Mesh, params: RouterParams, clock: MegaHertz) -> Ccn {
        Ccn {
            mesh,
            params,
            clock,
        }
    }

    /// A CCN whose clock is derived from a known per-lane payload
    /// bandwidth — the inverse of [`Ccn::lane_capacity`]. This is how a
    /// fabric re-creates its admission authority at runtime from a
    /// provisioned [`Mapping`] alone (which records `lane_capacity` but
    /// not the clock).
    pub fn with_lane_capacity(mesh: Mesh, params: RouterParams, lane_capacity: Bandwidth) -> Ccn {
        Ccn {
            mesh,
            params,
            clock: MegaHertz(lane_capacity.value() / params.lane_payload_bits_per_cycle()),
        }
    }

    /// Payload bandwidth of one lane at the SoC clock (16 payload bits per
    /// 5-cycle phit on a 4-bit lane: 80 Mbit/s at 25 MHz).
    pub fn lane_capacity(&self) -> Bandwidth {
        Bandwidth(self.clock.value() * self.params.lane_payload_bits_per_cycle())
    }

    /// Map an application onto tiles and lanes.
    pub fn map(&self, graph: &TaskGraph, tile_kinds: &[TileKind]) -> Result<Mapping, MappingError> {
        self.map_with_faults(graph, tile_kinds, &[])
    }

    /// Map an application, spilling demands the circuit plane cannot admit
    /// instead of rejecting the whole application.
    ///
    /// Placement and lane allocation are identical to [`Ccn::map`] (same
    /// heaviest-first order, same BFS path search), so a feasible
    /// application produces a bit-identical mapping with an empty
    /// [`Mapping::spilled`]. When lanes run out, the losing demands land in
    /// `spilled` for a best-effort plane to carry — the admission mode the
    /// hybrid fabric provisions from. Only structural failures (more
    /// process clusters than tiles) still error.
    pub fn map_with_spill(
        &self,
        graph: &TaskGraph,
        tile_kinds: &[TileKind],
    ) -> Result<Mapping, MappingError> {
        self.map_impl(graph, tile_kinds, &[], true)
    }

    /// Map an application while avoiding failed links.
    ///
    /// Each `(node, port)` names one *directed* link leaving `node`; a
    /// physically broken link should be listed in both directions. Dead
    /// links simply have no free lanes, so path allocation routes around
    /// them (or reports [`MappingError::NoPath`] when no detour exists) —
    /// the CCN-side half of fault tolerance, exercised by the
    /// fault-injection tests.
    pub fn map_with_faults(
        &self,
        graph: &TaskGraph,
        tile_kinds: &[TileKind],
        dead_links: &[(NodeId, Port)],
    ) -> Result<Mapping, MappingError> {
        self.map_impl(graph, tile_kinds, dead_links, false)
    }

    /// The one admission pipeline behind every `map_*` entry point:
    /// cluster, check tile count, place, then allocate lanes (strictly or
    /// with spill).
    fn map_impl(
        &self,
        graph: &TaskGraph,
        tile_kinds: &[TileKind],
        dead_links: &[(NodeId, Port)],
        spill: bool,
    ) -> Result<Mapping, MappingError> {
        assert_eq!(tile_kinds.len(), self.mesh.nodes(), "one kind per tile");
        let clusters = self.cluster(graph);
        let cluster_count = clusters
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len();
        if cluster_count > self.mesh.nodes() {
            return Err(MappingError::NotEnoughTiles {
                processes: cluster_count,
                tiles: self.mesh.nodes(),
            });
        }

        let placement = self.place(graph, tile_kinds, &clusters);
        let (routes, spilled) = self.route_demands(graph, &placement, dead_links, spill)?;
        debug_assert!(spill || spilled.is_empty(), "strict admission never spills");
        Ok(Mapping {
            placement,
            routes,
            spilled,
            lane_capacity: self.lane_capacity(),
        })
    }

    /// Reduce tile-interface lane pressure by co-locating processes.
    ///
    /// A tile has `lanes_per_port` transmit and receive lanes; a process
    /// with more distinct communication partners than that cannot live
    /// alone. Repeatedly merge the most-pressured cluster with the partner
    /// cluster it exchanges the most bandwidth with, until every cluster's
    /// distinct-partner counts fit (or everything is one cluster, in which
    /// case all communication is on-tile and trivially feasible).
    ///
    /// Returns, per process index, its cluster's representative.
    fn cluster(&self, graph: &TaskGraph) -> Vec<usize> {
        let n = graph.process_count();
        let mut rep: Vec<usize> = (0..n).collect();
        // Small n: resolve representatives by scanning (no union-find rank
        // machinery needed at task-graph sizes).
        fn find(rep: &[usize], mut i: usize) -> usize {
            while rep[i] != i {
                i = rep[i];
            }
            i
        }

        let lanes = self.params.lanes_per_port;
        loop {
            // Distinct out/in partner clusters and exchanged bandwidth.
            let mut out_partners: BTreeMap<usize, BTreeMap<usize, f64>> = BTreeMap::new();
            let mut in_partners: BTreeMap<usize, BTreeMap<usize, f64>> = BTreeMap::new();
            for (_, e) in graph.edges() {
                let s = find(&rep, e.src.0);
                let d = find(&rep, e.dst.0);
                if s == d {
                    continue;
                }
                *out_partners.entry(s).or_default().entry(d).or_default() += e.bandwidth.value();
                *in_partners.entry(d).or_default().entry(s).or_default() += e.bandwidth.value();
            }

            // Find the most over-pressured cluster.
            let mut worst: Option<(usize, usize)> = None; // (overflow, cluster)
            for c in 0..n {
                if find(&rep, c) != c {
                    continue;
                }
                let o = out_partners.get(&c).map_or(0, |m| m.len());
                let i = in_partners.get(&c).map_or(0, |m| m.len());
                let overflow = o.saturating_sub(lanes) + i.saturating_sub(lanes);
                if overflow > 0 && worst.is_none_or(|(w, _)| overflow > w) {
                    worst = Some((overflow, c));
                }
            }
            let Some((_, c)) = worst else { break };

            // Merge with the partner exchanging the most bandwidth (both
            // directions summed once). BTreeMap keeps candidate order —
            // and therefore tie-breaking — deterministic.
            let mut exchanged: std::collections::BTreeMap<usize, f64> =
                std::collections::BTreeMap::new();
            if let Some(m) = out_partners.get(&c) {
                for (&p, &bw) in m {
                    *exchanged.entry(p).or_default() += bw;
                }
            }
            if let Some(m) = in_partners.get(&c) {
                for (&p, &bw) in m {
                    *exchanged.entry(p).or_default() += bw;
                }
            }
            let mut best_partner: Option<(f64, usize)> = None;
            for (&p, &total) in &exchanged {
                let better = match best_partner {
                    None => true,
                    // Strictly more bandwidth wins; ties keep the earlier
                    // (smaller-id) partner.
                    Some((b, _)) => total > b + 1e-9,
                };
                if better {
                    best_partner = Some((total, p));
                }
            }
            let Some((_, p)) = best_partner else { break };
            let (lo, hi) = (c.min(p), c.max(p));
            rep[hi] = lo;
        }

        (0..n).map(|i| find(&rep, i)).collect()
    }

    /// Greedy spatial mapping of clusters: heaviest communicators first,
    /// each to the free tile minimising bandwidth-weighted distance to
    /// already-placed partners, with affinity preference.
    fn place(
        &self,
        graph: &TaskGraph,
        tile_kinds: &[TileKind],
        clusters: &[usize],
    ) -> Vec<(ProcessId, NodeId)> {
        // External bandwidth per cluster.
        let mut volume: HashMap<usize, f64> = HashMap::new();
        for (_, e) in graph.edges() {
            let s = clusters[e.src.0];
            let d = clusters[e.dst.0];
            if s != d {
                *volume.entry(s).or_default() += e.bandwidth.value();
                *volume.entry(d).or_default() += e.bandwidth.value();
            }
        }
        let mut order: Vec<usize> = clusters
            .iter()
            .copied()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        order.sort_by(|a, b| {
            let va = volume.get(a).copied().unwrap_or(0.0);
            let vb = volume.get(b).copied().unwrap_or(0.0);
            vb.partial_cmp(&va)
                .expect("traffic volumes are finite sums of finite bandwidths")
                .then(a.cmp(b))
        });

        let mut placed: HashMap<usize, NodeId> = HashMap::new();
        let mut used = vec![false; self.mesh.nodes()];
        for cid in order {
            // Affinity: any member process's hint counts.
            let hints: Vec<&str> = graph
                .processes()
                .filter(|(id, _)| clusters[id.0] == cid)
                .filter_map(|(_, p)| p.affinity.as_deref())
                .collect();
            let mut best: Option<(f64, NodeId)> = None;
            for node in self.mesh.iter() {
                if used[node.0] {
                    continue;
                }
                let mut cost = 0.0;
                for (_, e) in graph.edges() {
                    let (s, d) = (clusters[e.src.0], clusters[e.dst.0]);
                    let other = if s == cid && d != cid {
                        d
                    } else if d == cid && s != cid {
                        s
                    } else {
                        continue;
                    };
                    if let Some(&other_node) = placed.get(&other) {
                        cost += e.bandwidth.value() * self.mesh.distance(node, other_node) as f64;
                    }
                }
                let affinity_ok = hints.is_empty()
                    || hints.iter().any(|h| tile_kinds[node.0].matches_affinity(h));
                if !affinity_ok {
                    // Affinity miss: pay the volume again — placement
                    // still succeeds when no matching tile is free.
                    cost += volume.get(&cid).copied().unwrap_or(0.0) + 1.0;
                }
                if best.is_none_or(|(c, _)| cost < c) {
                    best = Some((cost, node));
                }
            }
            let (_, node) = best.expect("cluster count checked before placement");
            used[node.0] = true;
            placed.insert(cid, node);
        }

        let mut out: Vec<(ProcessId, NodeId)> = graph
            .processes()
            .map(|(id, _)| (id, placed[&clusters[id.0]]))
            .collect();
        out.sort();
        out
    }

    /// Allocate lane paths per tile-to-tile demand, heaviest first. All
    /// edges between the same tile pair share one circuit: the tile
    /// interface multiplexes them at word level.
    #[cfg(test)]
    fn route(
        &self,
        graph: &TaskGraph,
        placement: &[(ProcessId, NodeId)],
    ) -> Result<Vec<EdgeRoute>, MappingError> {
        self.route_demands(graph, placement, &[], false)
            .map(|(routes, _)| routes)
    }

    /// Allocate circuits per demand. With `spill` set, an inadmissible
    /// demand is recorded as a [`SpillStream`] instead of failing the
    /// whole mapping.
    fn route_demands(
        &self,
        graph: &TaskGraph,
        placement: &[(ProcessId, NodeId)],
        dead_links: &[(NodeId, Port)],
        spill: bool,
    ) -> Result<(Vec<EdgeRoute>, Vec<SpillStream>), MappingError> {
        let node_of: HashMap<ProcessId, NodeId> = placement.iter().copied().collect();
        let mut alloc = Allocator::new(&self.mesh, &self.params);
        for &(node, port) in dead_links {
            alloc.kill_link(node, port);
        }
        let capacity = self.lane_capacity();

        // Aggregate edges into demands by (src tile, dst tile).
        let mut demands: BTreeMap<(NodeId, NodeId), (Vec<EdgeId>, f64)> = BTreeMap::new();
        for (id, e) in graph.edges() {
            let key = (node_of[&e.src], node_of[&e.dst]);
            let entry = demands.entry(key).or_default();
            entry.0.push(id);
            entry.1 += e.bandwidth.value();
        }
        type DemandList = Vec<((NodeId, NodeId), (Vec<EdgeId>, f64))>;
        let mut demand_list: DemandList = demands.into_iter().collect();
        demand_list.sort_by(|a, b| {
            b.1 .1
                .partial_cmp(&a.1 .1)
                .expect("aggregate demands are finite sums of finite bandwidths")
                .then(a.1 .0.cmp(&b.1 .0))
        });

        let mut routes = Vec::with_capacity(demand_list.len());
        let mut spilled = Vec::new();
        for ((src, dst), (mut edge_ids, total_bw)) in demand_list {
            edge_ids.sort();
            if src == dst {
                routes.push(EdgeRoute {
                    edges: edge_ids,
                    paths: Vec::new(),
                    lane_capacity: capacity,
                    demand: Bandwidth(total_bw),
                });
                continue;
            }
            let needed = (total_bw / capacity.value()).ceil().max(1.0) as usize;
            match self.allocate_paths(&mut alloc, src, dst, needed) {
                Ok(paths) => routes.push(EdgeRoute {
                    edges: edge_ids,
                    paths,
                    lane_capacity: capacity,
                    demand: Bandwidth(total_bw),
                }),
                Err(admit_err) => {
                    let first_edge = edge_ids[0];
                    let (reason, err) = match admit_err {
                        AdmitError::TooWide { needed, available } => (
                            SpillReason::TooWide,
                            MappingError::EdgeTooWide {
                                edge: first_edge,
                                needed,
                                available,
                            },
                        ),
                        AdmitError::NoFreeLanes => (
                            SpillReason::NoFreeLanes,
                            MappingError::NoPath { edge: first_edge },
                        ),
                        AdmitError::TileLanesExhausted { node } => (
                            SpillReason::NoFreeLanes,
                            MappingError::TileLanesExhausted { node },
                        ),
                        // allocate_paths emits only the three variants above.
                        other => unreachable!("allocation cannot fail with {other}"),
                    };
                    if spill {
                        spilled.push(SpillStream {
                            edges: edge_ids,
                            src,
                            dst,
                            demand: Bandwidth(total_bw),
                            reason,
                        });
                    } else {
                        return Err(err);
                    }
                }
            }
        }
        routes.sort_by_key(|r| r.edges[0]);
        spilled.sort_by_key(|s| s.edges[0]);
        Ok((routes, spilled))
    }

    /// Allocate `needed` parallel lane paths from `src` to `dst` against
    /// the allocator's current occupancy: BFS for the shortest node path
    /// whose links all have `needed` free lanes, then claim tile and link
    /// lanes. Both tile pools are checked before either is claimed, so a
    /// failed demand leaves the allocator untouched for the demands after
    /// it. Shared by the whole-application pipeline
    /// ([`Ccn::map`]/[`Ccn::map_with_spill`]) and runtime admission
    /// ([`Ccn::admit_stream`]) — one admission algorithm, two entry
    /// points.
    fn allocate_paths(
        &self,
        alloc: &mut Allocator,
        src: NodeId,
        dst: NodeId,
        needed: usize,
    ) -> Result<Vec<Vec<PathHop>>, AdmitError> {
        if needed > self.params.lanes_per_port {
            return Err(AdmitError::TooWide {
                needed,
                available: self.params.lanes_per_port,
            });
        }

        let Some(node_path) = self.bfs(src, dst, needed, alloc) else {
            return Err(AdmitError::NoFreeLanes);
        };

        let free = |pool: &[bool]| pool.iter().filter(|&&f| f).count();
        if free(&alloc.tx_free[src.0]) < needed || free(&alloc.rx_free[dst.0]) < needed {
            let node = if free(&alloc.tx_free[src.0]) < needed {
                src
            } else {
                dst
            };
            return Err(AdmitError::TileLanesExhausted { node });
        }
        let tx = Allocator::claim_tile(&mut alloc.tx_free[src.0], needed).expect("checked above");
        let rx = Allocator::claim_tile(&mut alloc.rx_free[dst.0], needed).expect("checked above");

        // Claim link lanes hop by hop.
        let mut link_lanes: Vec<Vec<usize>> = Vec::new(); // [hop][parallel]
        for w in node_path.windows(2) {
            let port = self
                .port_between(w[0], w[1])
                .expect("BFS path uses mesh links");
            link_lanes.push(alloc.claim_link(w[0], port, needed));
        }

        // Assemble per-parallel-circuit hop lists.
        let mut paths = Vec::with_capacity(needed);
        for j in 0..needed {
            let mut hops = Vec::with_capacity(node_path.len());
            for (i, &node) in node_path.iter().enumerate() {
                let (in_port, in_lane) = if i == 0 {
                    (Port::Tile, tx[j])
                } else {
                    let from = node_path[i - 1];
                    let port = self
                        .port_between(from, node)
                        .expect("BFS paths step between mesh neighbours");
                    (
                        port.opposite().expect("mesh ports have opposites"),
                        link_lanes[i - 1][j],
                    )
                };
                let (out_port, out_lane) = if i + 1 == node_path.len() {
                    (Port::Tile, rx[j])
                } else {
                    let port = self
                        .port_between(node, node_path[i + 1])
                        .expect("BFS paths step between mesh neighbours");
                    (port, link_lanes[i][j])
                };
                hops.push(PathHop {
                    node,
                    in_port,
                    in_lane,
                    out_port,
                    out_lane,
                });
            }
            paths.push(hops);
        }
        Ok(paths)
    }

    /// Run-time admission of a single stream against the lanes the
    /// `occupied` circuits currently hold.
    ///
    /// This is [`Ccn::map_with_spill`]'s lane allocation re-run at stream
    /// granularity: the allocator is seeded with every live circuit's
    /// lanes, then the demand takes ⌈bandwidth / lane-capacity⌉ parallel
    /// lanes over the shortest feasible path — identical BFS order and
    /// lane-claiming to deployment-time mapping, so releasing a circuit
    /// and re-admitting the same demand reproduces the original route
    /// bit-for-bit. Fabrics call this through
    /// [`crate::fabric::Fabric::admit`] (which also charges the BE-network
    /// configuration-delivery latency, paper §5.1, to the new stream).
    ///
    /// An on-tile demand (`src == dst`) is trivially admitted with no lane
    /// paths.
    pub fn admit_stream(
        &self,
        demand: &StreamDemand,
        occupied: &[EdgeRoute],
    ) -> Result<EdgeRoute, AdmitError> {
        let capacity = self.lane_capacity();
        let mut route = EdgeRoute {
            edges: Vec::new(),
            paths: Vec::new(),
            lane_capacity: capacity,
            demand: demand.demand,
        };
        if demand.src == demand.dst {
            return Ok(route);
        }
        let mut alloc = Allocator::new(&self.mesh, &self.params);
        for r in occupied {
            alloc.occupy_route(r);
        }
        let needed = (demand.demand.value() / capacity.value()).ceil().max(1.0) as usize;
        route.paths = self.allocate_paths(&mut alloc, demand.src, demand.dst, needed)?;
        Ok(route)
    }

    fn port_between(&self, from: NodeId, to: NodeId) -> Option<Port> {
        Port::NEIGHBOURS
            .into_iter()
            .find(|&p| self.mesh.neighbour(from, p) == Some(to))
    }

    /// Shortest path by BFS over links with at least `needed` free lanes.
    fn bfs(
        &self,
        src: NodeId,
        dst: NodeId,
        needed: usize,
        alloc: &Allocator,
    ) -> Option<Vec<NodeId>> {
        let mut prev: HashMap<NodeId, NodeId> = HashMap::new();
        let mut queue = VecDeque::from([src]);
        let mut seen = vec![false; self.mesh.nodes()];
        seen[src.0] = true;
        while let Some(node) = queue.pop_front() {
            if node == dst {
                let mut path = vec![dst];
                let mut cur = dst;
                while let Some(&p) = prev.get(&cur) {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for port in Port::NEIGHBOURS {
                if let Some(next) = self.mesh.neighbour(node, port) {
                    if !seen[next.0] && alloc.link_free_count(node, port) >= needed {
                        seen[next.0] = true;
                        prev.insert(next, node);
                        queue.push_back(next);
                    }
                }
            }
        }
        None
    }

    /// Feasibility report: does every circuit carry at least the summed
    /// bandwidth of the edges sharing it?
    pub fn verify(&self, graph: &TaskGraph, mapping: &Mapping) -> bool {
        // Every edge must be served by exactly one route…
        let all_served = graph
            .edges()
            .all(|(id, _)| mapping.routes.iter().filter(|r| r.serves(id)).count() == 1);
        // …and every route must cover its demand.
        let all_covered = mapping.routes.iter().all(|r| {
            let demand: f64 = r
                .edges
                .iter()
                .map(|&id| graph.edge(id).bandwidth.value())
                .sum();
            r.allocated_bandwidth().value() >= demand - 1e-9
        });
        all_served && all_covered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_apps::taskgraph::TrafficShape;

    fn kinds(n: usize) -> Vec<TileKind> {
        let palette = [
            TileKind::Gpp,
            TileKind::Dsp,
            TileKind::Asic,
            TileKind::Dsrh,
            TileKind::Fpga,
            TileKind::Dsrh,
        ];
        (0..n).map(|i| palette[i % palette.len()]).collect()
    }

    fn ccn(w: usize, h: usize) -> Ccn {
        Ccn::new(Mesh::new(w, h), RouterParams::paper(), MegaHertz(25.0))
    }

    fn pipeline(stages: usize, bw: f64) -> TaskGraph {
        let mut g = TaskGraph::new("pipe");
        let ids: Vec<ProcessId> = (0..stages)
            .map(|i| g.add_process(format!("s{i}")))
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], Bandwidth(bw), TrafficShape::Streaming, "e");
        }
        g
    }

    #[test]
    fn lane_capacity_at_25_mhz_is_80_mbit() {
        assert!((ccn(2, 2).lane_capacity().value() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn maps_a_pipeline_and_verifies() {
        let c = ccn(3, 3);
        let g = pipeline(5, 60.0);
        let m = c.map(&g, &kinds(9)).expect("feasible");
        assert_eq!(m.placement.len(), 5);
        assert!(c.verify(&g, &m));
        // Placement is injective.
        let nodes: std::collections::HashSet<NodeId> =
            m.placement.iter().map(|&(_, n)| n).collect();
        assert_eq!(nodes.len(), 5);
    }

    #[test]
    fn heavy_neighbours_are_placed_adjacently() {
        // Two heavy communicators should end up one hop apart.
        let c = ccn(4, 4);
        let mut g = TaskGraph::new("pair");
        let a = g.add_process("a");
        let b = g.add_process("b");
        g.add_edge(a, b, Bandwidth(79.0), TrafficShape::Streaming, "hot");
        let m = c.map(&g, &kinds(16)).unwrap();
        let na = m.node_of(a).unwrap();
        let nb = m.node_of(b).unwrap();
        assert_eq!(c.mesh.distance(na, nb), 1);
    }

    #[test]
    fn wide_edge_takes_multiple_lanes() {
        // 200 Mbit/s at 80 Mbit/s per lane -> 3 parallel circuits.
        let c = ccn(2, 1);
        let g = pipeline(2, 200.0);
        let m = c.map(&g, &kinds(2)).unwrap();
        let route = &m.routes[0];
        assert_eq!(route.paths.len(), 3);
        assert!(c.verify(&g, &m));
        // Parallel circuits use distinct lanes of the same link.
        let lanes: std::collections::HashSet<usize> = route
            .paths
            .iter()
            .map(|p| p.first().unwrap().out_lane)
            .collect();
        assert_eq!(lanes.len(), 3);
    }

    #[test]
    fn edge_beyond_port_capacity_rejected() {
        // 400 Mbit/s needs 5 lanes; a port has 4.
        let c = ccn(2, 1);
        let g = pipeline(2, 400.0);
        match c.map(&g, &kinds(2)) {
            Err(MappingError::EdgeTooWide { needed: 5, .. }) => {}
            other => panic!("expected EdgeTooWide, got {other:?}"),
        }
    }

    #[test]
    fn too_many_processes_rejected() {
        let c = ccn(2, 1);
        let g = pipeline(3, 1.0);
        assert!(matches!(
            c.map(&g, &kinds(2)),
            Err(MappingError::NotEnoughTiles {
                processes: 3,
                tiles: 2
            })
        ));
    }

    #[test]
    fn congestion_routes_around_saturated_link() {
        // A heavy stream (0,0)->(2,0) claims all four lanes of the two
        // eastbound links of the top row; a later stream (1,0)->(2,1) must
        // avoid the saturated (1,0)->East link and go through (1,1).
        let c = ccn(3, 2);
        let mut g = TaskGraph::new("congest");
        let p0 = g.add_process("src-heavy");
        let p1 = g.add_process("dst-heavy");
        let p2 = g.add_process("src-light");
        let p3 = g.add_process("dst-light");
        let e1 = g.add_edge(p0, p1, Bandwidth(310.0), TrafficShape::Streaming, "heavy");
        let e2 = g.add_edge(p2, p3, Bandwidth(79.0), TrafficShape::Streaming, "light");
        // Hand placement (bypasses `place` so the contention is exact).
        let mesh = c.mesh;
        let placement = vec![
            (p0, mesh.node(0, 0)),
            (p1, mesh.node(2, 0)),
            (p2, mesh.node(1, 0)),
            (p3, mesh.node(2, 1)),
        ];
        let routes = c.route(&g, &placement).expect("detour exists");
        let heavy = routes.iter().find(|r| r.serves(e1)).unwrap();
        assert_eq!(heavy.paths.len(), 4, "310 Mbit/s = 4 lanes at 80 each");
        let light = routes.iter().find(|r| r.serves(e2)).unwrap();
        // The light stream's first hop must leave south, not east.
        let first_hop = &light.paths[0][0];
        assert_eq!(first_hop.out_port, Port::South, "must avoid saturated link");
        assert_eq!(
            light.paths[0].len(),
            3,
            "one router more than direct XY? no: equal-length detour through (1,1)"
        );
    }

    #[test]
    fn saturated_line_yields_no_path() {
        // On a 1-D mesh there is no detour: two streams needing 3+2 lanes
        // of the same eastbound link cannot both be admitted.
        let c = ccn(3, 1);
        let mut g = TaskGraph::new("line");
        let a = g.add_process("a");
        let b = g.add_process("b");
        let d = g.add_process("d");
        g.add_edge(a, d, Bandwidth(230.0), TrafficShape::Streaming, "3 lanes");
        g.add_edge(b, d, Bandwidth(155.0), TrafficShape::Streaming, "2 lanes");
        let mesh = c.mesh;
        let placement = vec![
            (a, mesh.node(0, 0)),
            (b, mesh.node(1, 0)),
            (d, mesh.node(2, 0)),
        ];
        // Link (1,0)->East would need 5 lanes; expect NoPath for the
        // lighter edge (routed second).
        match c.route(&g, &placement) {
            Err(MappingError::NoPath { .. }) => {}
            other => panic!("expected NoPath, got {other:?}"),
        }
    }

    #[test]
    fn config_words_apply_to_a_soc() {
        let c = ccn(3, 1);
        let g = pipeline(3, 60.0);
        let m = c.map(&g, &kinds(3)).unwrap();
        let mut soc = Soc::new(Mesh::new(3, 1), RouterParams::paper());
        m.apply_direct(&mut soc).expect("all words legal");
        // Each route's hops configured: every hop's output lane is active.
        for route in &m.routes {
            for path in &route.paths {
                for hop in path {
                    let entry = soc
                        .router(hop.node)
                        .config()
                        .entry_of(hop.out_port, hop.out_lane);
                    assert!(entry.active, "hop not configured: {hop:?}");
                }
            }
        }
    }

    #[test]
    fn same_tile_edge_needs_no_lanes() {
        // Force a tiny mesh so two processes share... actually placement
        // is injective; same-tile edges only occur with process count 1.
        // Exercise the branch directly instead.
        let c = ccn(1, 1);
        let mut g = TaskGraph::new("self");
        let a = g.add_process("a");
        let m = c.map(&g, &kinds(1)).unwrap();
        assert_eq!(m.node_of(a), Some(NodeId(0)));
        assert!(m.routes.is_empty());
    }

    #[test]
    fn feasible_graph_spills_nothing_and_matches_strict_map() {
        let c = ccn(3, 3);
        let g = pipeline(5, 60.0);
        let strict = c.map(&g, &kinds(9)).expect("feasible");
        let spilly = c.map_with_spill(&g, &kinds(9)).expect("feasible");
        assert!(spilly.spilled.is_empty());
        assert_eq!(strict, spilly, "same admission path, same mapping");
    }

    #[test]
    fn oversubscribed_line_spills_the_lighter_demand() {
        // The `saturated_line_yields_no_path` scenario under spill
        // admission: the heavy 3-lane demand gets its circuit, the lighter
        // 2-lane demand spills instead of failing the mapping.
        let c = ccn(3, 1);
        let mut g = TaskGraph::new("line");
        let a = g.add_process("a");
        let b = g.add_process("b");
        let d = g.add_process("d");
        let heavy = g.add_edge(a, d, Bandwidth(230.0), TrafficShape::Streaming, "3 lanes");
        let light = g.add_edge(b, d, Bandwidth(155.0), TrafficShape::Streaming, "2 lanes");
        let mesh = c.mesh;
        let placement = vec![
            (a, mesh.node(0, 0)),
            (b, mesh.node(1, 0)),
            (d, mesh.node(2, 0)),
        ];
        let (routes, spilled) = c
            .route_demands(&g, &placement, &[], true)
            .expect("spill mode always succeeds past placement");
        assert_eq!(routes.len(), 1);
        assert!(routes[0].serves(heavy), "heaviest demand keeps its circuit");
        assert_eq!(spilled.len(), 1);
        assert_eq!(spilled[0].edges, vec![light]);
        assert_eq!(spilled[0].src, mesh.node(1, 0));
        assert_eq!(spilled[0].dst, mesh.node(2, 0));
        assert_eq!(spilled[0].reason, SpillReason::NoFreeLanes);
        assert!((spilled[0].demand.value() - 155.0).abs() < 1e-9);
    }

    #[test]
    fn too_wide_demand_spills_with_reason() {
        // 400 Mbit/s needs 5 lanes, a port has 4: strictly an error,
        // spilled under hybrid admission.
        let c = ccn(2, 1);
        let g = pipeline(2, 400.0);
        assert!(c.map(&g, &kinds(2)).is_err());
        let m = c.map_with_spill(&g, &kinds(2)).unwrap();
        assert!(m.routes.is_empty());
        assert_eq!(m.spilled.len(), 1);
        assert_eq!(m.spilled[0].reason, SpillReason::TooWide);
    }

    #[test]
    fn spilled_demand_leaves_allocator_untouched() {
        // A spilled demand must not hold lanes hostage. On a 2x2 mesh:
        // e1 a(0,0)->d(1,0) takes all 4 of d's tile RX lanes; e2
        // b(0,1)->d(1,0) then spills at d's receive side. e3 b->c(1,1)
        // needs 3 of b's 4 TX lanes — it only routes if the spilled e2
        // claimed nothing at b on its way out.
        let c = ccn(2, 2);
        let mut g = TaskGraph::new("untouched");
        let a = g.add_process("a");
        let d = g.add_process("d");
        let b = g.add_process("b");
        let cc = g.add_process("c");
        let e1 = g.add_edge(a, d, Bandwidth(310.0), TrafficShape::Streaming, "4 lanes");
        let e2 = g.add_edge(b, d, Bandwidth(310.0), TrafficShape::Streaming, "4 lanes");
        let e3 = g.add_edge(b, cc, Bandwidth(230.0), TrafficShape::Streaming, "3 lanes");
        let mesh = c.mesh;
        let placement = vec![
            (a, mesh.node(0, 0)),
            (d, mesh.node(1, 0)),
            (b, mesh.node(0, 1)),
            (cc, mesh.node(1, 1)),
        ];
        let (routes, spilled) = c.route_demands(&g, &placement, &[], true).unwrap();
        assert!(routes.iter().any(|r| r.serves(e1)));
        assert_eq!(spilled.len(), 1, "only e2 spills: {spilled:?}");
        assert!(spilled[0].edges.contains(&e2));
        assert!(
            routes.iter().any(|r| r.serves(e3)),
            "e3 must still route: the spilled e2 may not claim b's TX lanes"
        );
    }

    #[test]
    fn streams_number_routes_then_spills() {
        let c = ccn(3, 1);
        let mut g = TaskGraph::new("line");
        let a = g.add_process("a");
        let b = g.add_process("b");
        let d = g.add_process("d");
        g.add_edge(a, d, Bandwidth(230.0), TrafficShape::Streaming, "heavy");
        g.add_edge(b, d, Bandwidth(155.0), TrafficShape::Streaming, "light");
        let m = c.map_with_spill(&g, &kinds(3)).unwrap();
        assert_eq!(m.spilled.len(), 1, "premise: the light edge spills");
        let streams = m.streams();
        assert_eq!(streams.len(), 2);
        assert_eq!(streams[0].id, StreamId(0));
        assert!(!streams[0].spilled);
        assert_eq!(streams[0].route, Some(0));
        assert_eq!(streams[1].id, StreamId(1));
        assert!(streams[1].spilled);
        assert_eq!(streams[1].spill, Some(0));
        assert_eq!(streams[1].src, m.spilled[0].src);
        // Demands round-trip into re-admissible asks.
        let ask = m.stream_demand(StreamId(1)).unwrap();
        assert_eq!(ask.src, m.spilled[0].src);
        assert!((ask.demand.value() - m.spilled[0].demand.value()).abs() < 1e-9);
        assert!(m.stream_demand(StreamId(9)).is_none());
    }

    #[test]
    fn on_tile_routes_are_not_streams() {
        let c = ccn(1, 1);
        let mut g = TaskGraph::new("self");
        let _ = g.add_process("a");
        let m = c.map(&g, &kinds(1)).unwrap();
        assert!(m.streams().is_empty());
    }

    #[test]
    fn admit_stream_reproduces_the_mapped_route() {
        // Admission-at-runtime determinism: the route a freshly admitted
        // stream gets on an empty mesh is bit-identical to the one the
        // whole-application pipeline allocated for the same demand.
        let c = ccn(3, 3);
        let g = pipeline(2, 150.0);
        let m = c.map(&g, &kinds(9)).unwrap();
        let route = &m.routes[0];
        let demand = m.stream_demand(StreamId(0)).unwrap();
        let admitted = c.admit_stream(&demand, &[]).expect("empty mesh admits");
        assert_eq!(admitted.paths, route.paths, "same BFS, same lanes");
        assert_eq!(admitted.lane_capacity, route.lane_capacity);
    }

    #[test]
    fn admit_stream_respects_occupied_lanes() {
        // The oversubscribed line: with the heavy 3-lane circuit live, the
        // 2-lane ask has no path; with it released (not occupied), the ask
        // is admitted onto the freed lanes.
        let c = ccn(3, 1);
        let mesh = c.mesh;
        let heavy = c
            .admit_stream(
                &StreamDemand {
                    src: mesh.node(0, 0),
                    dst: mesh.node(2, 0),
                    demand: Bandwidth(230.0),
                },
                &[],
            )
            .unwrap();
        let light = StreamDemand {
            src: mesh.node(1, 0),
            dst: mesh.node(2, 0),
            demand: Bandwidth(155.0),
        };
        assert_eq!(
            c.admit_stream(&light, std::slice::from_ref(&heavy)),
            Err(AdmitError::NoFreeLanes)
        );
        let freed = c.admit_stream(&light, &[]).expect("freed lanes admit");
        assert_eq!(freed.paths.len(), 2, "155 Mbit/s = 2 lanes at 80 each");
    }

    #[test]
    fn admit_stream_rejects_too_wide() {
        let c = ccn(2, 1);
        let mesh = c.mesh;
        let err = c
            .admit_stream(
                &StreamDemand {
                    src: mesh.node(0, 0),
                    dst: mesh.node(1, 0),
                    demand: Bandwidth(400.0),
                },
                &[],
            )
            .unwrap_err();
        assert_eq!(
            err,
            AdmitError::TooWide {
                needed: 5,
                available: 4
            }
        );
    }

    #[test]
    fn with_lane_capacity_round_trips() {
        let c = ccn(2, 2);
        let rebuilt = Ccn::with_lane_capacity(c.mesh, RouterParams::paper(), c.lane_capacity());
        assert!((rebuilt.lane_capacity().value() - c.lane_capacity().value()).abs() < 1e-6);
    }

    #[test]
    fn affinity_steers_placement() {
        let c = ccn(2, 1);
        let mut g = TaskGraph::new("aff");
        let p = g.add_process_with_affinity("filter", "DSP");
        let q = g.add_process("other");
        g.add_edge(p, q, Bandwidth(1.0), TrafficShape::Streaming, "e");
        // Tile 1 is the DSP.
        let tiles = vec![TileKind::Gpp, TileKind::Dsp];
        let m = c.map(&g, &tiles).unwrap();
        assert_eq!(m.node_of(p), Some(NodeId(1)), "DSP process on DSP tile");
    }
}
