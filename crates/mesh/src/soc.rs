//! The assembled SoC: routers + tiles + link wiring, stepped per cycle.
//!
//! Wiring follows the paper's link structure: every neighbour port carries
//! `lanes_per_port` forward 4-bit lanes plus one reverse acknowledge wire
//! per lane (Fig. 7). Each cycle:
//!
//! 1. **Sample** — every router's inputs are loaded from its neighbours'
//!    registered outputs (the values latched at the previous edge);
//! 2. **Tiles** — sources inject, sinks drain;
//! 3. **Evaluate** — all routers compute combinationally; order-free, so
//!    optionally fanned out over the persistent worker pool
//!    ([`noc_sim::par`]);
//! 4. **Commit** — all routers latch.
//!
//! Because sampling reads only latched outputs, the sample pass and the
//! evaluate pass never race — this is the property that makes big-mesh
//! simulation embarrassingly parallel (see the `mesh_step` bench).

use crate::ccn::Mapping;
use crate::tile::{default_tile_kinds, Tile, TileKind};
use crate::topology::{Mesh, NodeId};
use noc_core::error::ConfigError;
use noc_core::lane::Port;
use noc_core::params::RouterParams;
use noc_core::phit::Phit;
use noc_core::router::CircuitRouter;
use noc_sim::activity::{ActivityLedger, ComponentActivity};
use noc_sim::kernel::Clocked;
use noc_sim::par::{par_commit, par_eval, ParPolicy};
use noc_sim::time::{Cycle, CycleCount};
use std::collections::VecDeque;

/// The provisioned word-level injection plan behind the [`crate::fabric`]
/// API: for every node, the tile transmit lanes of the circuits that
/// originate there, and the queue of payload words awaiting injection.
#[derive(Debug, Clone, Default)]
struct CircuitPlan {
    /// Per node: tile TX lanes of provisioned circuits, in route order.
    tx_lanes: Vec<Vec<usize>>,
    /// Per node: payload words queued by `inject`, drained onto the tile
    /// lanes one phit per free lane per cycle.
    ingress: Vec<VecDeque<u16>>,
}

/// A mesh SoC of circuit-switched routers with one tile per router.
#[derive(Debug)]
pub struct Soc {
    mesh: Mesh,
    params: RouterParams,
    routers: Vec<CircuitRouter>,
    tiles: Vec<Tile>,
    policy: ParPolicy,
    now: Cycle,
    /// Scratch: sampled link values per node per flat lane (data).
    sample_data: Vec<Vec<noc_sim::bits::Nibble>>,
    /// Scratch: sampled reverse acks per node per flat lane.
    sample_ack: Vec<Vec<bool>>,
    /// Set by [`Soc::provision`]; drives the fabric-level inject/drain.
    plan: Option<CircuitPlan>,
}

impl Soc {
    /// Build a SoC with identical routers and a default tile mix: kinds
    /// rotate through the Fig. 1 palette so every kind exists somewhere.
    pub fn new(mesh: Mesh, params: RouterParams) -> Soc {
        let kinds = default_tile_kinds(&mesh);
        let routers = mesh.iter().map(|_| CircuitRouter::new(params)).collect();
        let tiles = mesh
            .iter()
            .map(|n| Tile::new(kinds[n.0], params.lanes_per_port))
            .collect();
        let lanes = params.total_lanes();
        Soc {
            mesh,
            params,
            routers,
            tiles,
            policy: ParPolicy::Auto,
            now: Cycle::ZERO,
            sample_data: (0..mesh.nodes())
                .map(|_| vec![Default::default(); lanes])
                .collect(),
            sample_ack: (0..mesh.nodes()).map(|_| vec![false; lanes]).collect(),
            plan: None,
        }
    }

    /// Configure every circuit of `mapping` directly into the routers and
    /// set up the word-level injection plan the [`crate::fabric::Fabric`]
    /// API drives: source tiles get their provisioned TX lanes recorded,
    /// destination tiles get payload capture enabled so `drain` can
    /// return delivered words.
    ///
    /// Production configuration delivery rides the BE network
    /// ([`crate::be`]); this is the instantaneous path, equivalent in
    /// final router state (`be_configuration_matches_direct_configuration`
    /// in the end-to-end tests).
    ///
    /// [`Mapping::spilled`] entries are *not* served: a circuit-only SoC
    /// has no best-effort plane to put them on. Deploy spill-admitted
    /// mappings on [`crate::hybrid::HybridFabric`] (or the packet fabric)
    /// when every stream must be delivered.
    pub fn provision(&mut self, mapping: &Mapping) -> Result<(), ConfigError> {
        let params = self.params;
        // Idempotency (the Fabric contract): a re-provision replaces the
        // previous plan entirely — tear down every configured lane and
        // stop capturing at the old destinations before applying the new
        // mapping, so no stale circuit keeps forwarding or capturing.
        if self.plan.is_some() {
            for node in self.mesh.iter() {
                for port in Port::ALL {
                    for lane in 0..params.lanes_per_port {
                        self.routers[node.0].deactivate_lane(port, lane)?;
                    }
                }
                self.tiles[node.0].set_capture(false);
            }
        }
        for (node, word) in mapping.config_words(&params) {
            self.routers[node.0].apply_config_word(word)?;
        }
        let mut plan = CircuitPlan {
            tx_lanes: vec![Vec::new(); self.mesh.nodes()],
            ingress: vec![VecDeque::new(); self.mesh.nodes()],
        };
        for route in &mapping.routes {
            for path in &route.paths {
                let first = path.first().expect("non-empty path");
                let last = path.last().expect("non-empty path");
                plan.tx_lanes[first.node.0].push(first.in_lane);
                self.tiles[last.node.0].set_capture(true);
            }
        }
        self.plan = Some(plan);
        Ok(())
    }

    /// Queue payload words for injection at `node`'s tile. Words are
    /// drained onto the node's provisioned TX lanes (round-robin across
    /// parallel lanes, one phit per free lane per cycle). Returns the
    /// number of words accepted (all of them — the ingress queue is
    /// unbounded; its depth measures offered-load backlog).
    ///
    /// # Panics
    /// Panics when called before [`Soc::provision`] or at a node with no
    /// outgoing circuit.
    pub fn inject_words(&mut self, node: NodeId, words: &[u16]) -> usize {
        let plan = self
            .plan
            .as_mut()
            .expect("Soc::inject_words before Soc::provision");
        assert!(
            !plan.tx_lanes[node.0].is_empty(),
            "node {node:?} has no provisioned outgoing circuit"
        );
        plan.ingress[node.0].extend(words.iter().copied());
        words.len()
    }

    /// Take the payload words delivered to `node`'s tile since the last
    /// call (requires capture, which [`Soc::provision`] enables at every
    /// circuit destination).
    pub fn drain_words(&mut self, node: NodeId) -> Vec<u16> {
        self.tiles[node.0].take_captured()
    }

    /// Total words queued for injection but not yet on the wire.
    pub fn ingress_backlog(&self) -> usize {
        self.plan
            .as_ref()
            .map_or(0, |p| p.ingress.iter().map(|q| q.len()).sum())
    }

    /// Choose serial or pooled router evaluation (default
    /// [`ParPolicy::Auto`]): the eval and commit phases fan out over the
    /// persistent [`noc_sim::par::WorkerPool`]. Results are bit-identical
    /// under every policy; fabric-generic code reaches this knob through
    /// `Fabric::set_parallelism` or
    /// `Deployment::builder(..).parallelism(..)`.
    pub fn set_parallelism(&mut self, policy: ParPolicy) {
        self.policy = policy;
    }

    /// The mesh topology.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The shared router parameters.
    pub fn params(&self) -> &RouterParams {
        &self.params
    }

    /// The current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Immutable access to a router.
    pub fn router(&self, node: NodeId) -> &CircuitRouter {
        &self.routers[node.0]
    }

    /// Mutable access to a router (configuration, testbench drives).
    pub fn router_mut(&mut self, node: NodeId) -> &mut CircuitRouter {
        &mut self.routers[node.0]
    }

    /// Immutable access to a tile.
    pub fn tile(&self, node: NodeId) -> &Tile {
        &self.tiles[node.0]
    }

    /// Mutable access to a tile (stream binding).
    pub fn tile_mut(&mut self, node: NodeId) -> &mut Tile {
        &mut self.tiles[node.0]
    }

    /// Set a tile's hardware kind (before mapping).
    pub fn set_tile_kind(&mut self, node: NodeId, kind: TileKind) {
        self.tiles[node.0].kind = kind;
    }

    /// Advance the whole SoC by one clock cycle.
    pub fn step(&mut self) {
        // 1. Sample neighbour outputs into scratch (reads only latched Qs).
        let lanes = self.params.lanes_per_port;
        for node in self.mesh.iter() {
            for port in Port::NEIGHBOURS {
                if let Some(nb) = self.mesh.neighbour(node, port) {
                    let opp = port.opposite().expect("neighbour port");
                    for l in 0..lanes {
                        let flat = noc_core::lane::LaneIndex::of(port, l, lanes).get();
                        self.sample_data[node.0][flat] = self.routers[nb.0].link_output(opp, l);
                        self.sample_ack[node.0][flat] = self.routers[nb.0].ack_to_upstream(opp, l);
                    }
                }
            }
        }
        // Apply samples.
        for node in self.mesh.iter() {
            for port in Port::NEIGHBOURS {
                if self.mesh.neighbour(node, port).is_some() {
                    for l in 0..lanes {
                        let flat = noc_core::lane::LaneIndex::of(port, l, lanes).get();
                        self.routers[node.0].set_link_input(
                            port,
                            l,
                            self.sample_data[node.0][flat],
                        );
                        self.routers[node.0].set_ack_input(port, l, self.sample_ack[node.0][flat]);
                    }
                }
            }
        }

        // 2. Tiles inject and drain. Provisioned ingress queues go first:
        //    one word per free TX lane per cycle, round-robin over the
        //    node's parallel circuits.
        if let Some(plan) = &mut self.plan {
            for node in self.mesh.iter() {
                for &lane in &plan.tx_lanes[node.0] {
                    if plan.ingress[node.0].is_empty() {
                        break;
                    }
                    if self.routers[node.0].tile_can_send(lane) {
                        let word = plan.ingress[node.0].pop_front().expect("non-empty");
                        let ok = self.routers[node.0].tile_send(lane, Phit::data(word));
                        debug_assert!(ok, "tile_can_send implies acceptance");
                    }
                }
            }
        }
        for node in self.mesh.iter() {
            self.tiles[node.0].step(&mut self.routers[node.0]);
        }

        // 3+4. Two-phase clocking over all routers, optionally parallel.
        par_eval(&mut self.routers, self.policy);
        par_commit(&mut self.routers, self.policy);
        self.now += 1;
    }

    /// Run `cycles` cycles.
    pub fn run(&mut self, cycles: CycleCount) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Merge the whole SoC's per-component activity (for SoC-level power).
    pub fn activity(&self) -> Vec<ComponentActivity> {
        let mut merged: Vec<ComponentActivity> = Vec::new();
        for r in &self.routers {
            for comp in r.activity() {
                match merged.iter_mut().find(|c| c.kind == comp.kind) {
                    Some(existing) => existing.ledger.merge(&comp.ledger),
                    None => merged.push(comp),
                }
            }
        }
        merged
    }

    /// Sum of all routers' activity as one ledger.
    pub fn total_activity(&self) -> ActivityLedger {
        let mut total = ActivityLedger::new();
        for c in self.activity() {
            total.merge(&c.ledger);
        }
        total
    }

    /// Clear every router's ledgers (start of a measurement window).
    pub fn clear_activity(&mut self) {
        for r in &mut self.routers {
            r.clear_activity();
        }
    }

    /// Total phits delivered to all tiles.
    pub fn total_delivered(&self) -> u64 {
        self.tiles.iter().map(|t| t.total_received()).sum()
    }
}

// Let a whole SoC be stepped by generic drivers too.
impl Clocked for Soc {
    fn eval(&mut self) {
        // The SoC's step() interleaves wiring and clocking; expose the
        // complete cycle through commit() and make eval a no-op so that
        // `kernel::step(&mut soc)` advances exactly one cycle.
    }

    fn commit(&mut self) {
        self.step();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_apps::traffic::DataPattern;
    use noc_core::phit::Phit;

    fn two_by_one() -> Soc {
        Soc::new(Mesh::new(2, 1), RouterParams::paper())
    }

    #[test]
    fn single_hop_stream_across_routers() {
        // Node (0,0) tile -> East -> node (1,0) tile.
        let mut soc = two_by_one();
        let a = soc.mesh().node(0, 0);
        let b = soc.mesh().node(1, 0);
        // Configure: at A, tile lane 0 -> East lane 0; at B, West lane 0
        // -> tile lane 0.
        soc.router_mut(a)
            .connect(Port::Tile, 0, Port::East, 0)
            .unwrap();
        soc.router_mut(b)
            .connect(Port::West, 0, Port::Tile, 0)
            .unwrap();
        soc.tile_mut(a)
            .bind_source(0, DataPattern::Random, 7, 1.0, 5);

        soc.run(200);
        let received = soc.tile(b).rx(0).received;
        // 200 cycles / 5 per phit minus pipeline fill & window throttling.
        assert!(received >= 30, "expected a steady stream, got {received}");
        assert_eq!(soc.router(b).rx_overflows(), 0);
    }

    #[test]
    fn acks_flow_back_across_the_link() {
        // With the destination tile draining, the source's window refills:
        // emission exceeds the window size by far.
        let mut soc = two_by_one();
        let a = soc.mesh().node(0, 0);
        let b = soc.mesh().node(1, 0);
        soc.router_mut(a)
            .connect(Port::Tile, 0, Port::East, 0)
            .unwrap();
        soc.router_mut(b)
            .connect(Port::West, 0, Port::Tile, 0)
            .unwrap();
        soc.tile_mut(a)
            .bind_source(0, DataPattern::Zeros, 1, 1.0, 5);
        soc.run(400);
        let sent = soc.tile(a).total_sent();
        assert!(
            sent > u64::from(soc.params().window_size) * 2,
            "window must refill through returning acks; sent {sent}"
        );
    }

    #[test]
    fn multi_hop_path() {
        // 3x1 mesh: tile(0) -> East -> router(1) passthrough -> East ->
        // tile(2).
        let mut soc = Soc::new(Mesh::new(3, 1), RouterParams::paper());
        let n0 = soc.mesh().node(0, 0);
        let n1 = soc.mesh().node(1, 0);
        let n2 = soc.mesh().node(2, 0);
        soc.router_mut(n0)
            .connect(Port::Tile, 0, Port::East, 0)
            .unwrap();
        soc.router_mut(n1)
            .connect(Port::West, 0, Port::East, 0)
            .unwrap();
        soc.router_mut(n2)
            .connect(Port::West, 0, Port::Tile, 0)
            .unwrap();
        soc.tile_mut(n0)
            .bind_source(0, DataPattern::Random, 3, 1.0, 5);
        soc.run(300);
        assert!(soc.tile(n2).rx(0).received > 40);
        // Intermediate tile got nothing.
        assert_eq!(soc.tile(n1).total_received(), 0);
    }

    #[test]
    fn serial_and_parallel_stepping_agree() {
        let build = || {
            let mut soc = Soc::new(Mesh::new(4, 4), RouterParams::paper());
            let a = soc.mesh().node(0, 0);
            let b = soc.mesh().node(1, 0);
            soc.router_mut(a)
                .connect(Port::Tile, 0, Port::East, 0)
                .unwrap();
            soc.router_mut(b)
                .connect(Port::West, 0, Port::Tile, 0)
                .unwrap();
            soc.tile_mut(a)
                .bind_source(0, DataPattern::Random, 11, 1.0, 5);
            soc
        };
        let mut serial = build();
        serial.set_parallelism(ParPolicy::Sequential);
        let mut parallel = build();
        parallel.set_parallelism(ParPolicy::Threads(4));
        serial.run(150);
        parallel.run(150);
        assert_eq!(
            serial.tile(serial.mesh().node(1, 0)).rx(0).received,
            parallel.tile(parallel.mesh().node(1, 0)).rx(0).received
        );
        assert_eq!(serial.total_activity(), parallel.total_activity());
    }

    #[test]
    fn idle_soc_accumulates_only_clock_activity() {
        let mut soc = two_by_one();
        soc.run(50);
        let total = soc.total_activity();
        assert_eq!(
            total.total(),
            total.get(noc_sim::activity::ActivityClass::RegClock),
            "idle SoC: every event is a register clock"
        );
        soc.clear_activity();
        assert!(soc.total_activity().is_empty());
    }

    #[test]
    fn direct_router_drive_through_mesh_api() {
        // The testbench can bypass tile sources and push raw phits; the
        // destination tile drains its queues every cycle, so delivery shows
        // up in the tile's receive statistics.
        let mut soc = two_by_one();
        let a = soc.mesh().node(0, 0);
        let b = soc.mesh().node(1, 0);
        soc.router_mut(a)
            .connect(Port::Tile, 1, Port::East, 2)
            .unwrap();
        soc.router_mut(b)
            .connect(Port::West, 2, Port::Tile, 1)
            .unwrap();
        assert!(soc.router_mut(a).tile_send(1, Phit::data(0xD00D)));
        soc.run(12);
        assert_eq!(soc.tile(b).rx(1).received, 1);
        assert_eq!(soc.tile(b).rx(1).last_word, Some(0xD00D));
    }
}
