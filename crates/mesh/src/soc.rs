//! The assembled SoC: routers + tiles + link wiring, stepped per cycle.
//!
//! Wiring follows the paper's link structure: every neighbour port carries
//! `lanes_per_port` forward 4-bit lanes plus one reverse acknowledge wire
//! per lane (Fig. 7). Each cycle:
//!
//! 1. **Sample** — every router's inputs are loaded from its neighbours'
//!    registered outputs (the values latched at the previous edge);
//! 2. **Tiles** — sources inject, sinks drain;
//! 3. **Evaluate** — all routers compute combinationally; order-free, so
//!    optionally fanned out over the persistent worker pool
//!    ([`noc_sim::par`]);
//! 4. **Commit** — all routers latch.
//!
//! Because sampling reads only latched outputs, the sample pass and the
//! evaluate pass never race — this is the property that makes big-mesh
//! simulation embarrassingly parallel (see the `mesh_step` bench).

use crate::be::{BeConfig, BeNetwork};
use crate::ccn::{Ccn, EdgeRoute, Mapping};
use crate::stream::{
    AdmitError, ProvisionMode, ReleaseMode, StreamDemand, StreamId, StreamPlane, StreamStats,
};
use crate::tile::{default_tile_kinds, TileKind, TileSlab};
use crate::topology::{Mesh, NodeId};
use noc_core::error::ConfigError;
use noc_core::lane::Port;
use noc_core::params::RouterParams;
use noc_core::phit::Phit;
use noc_core::router::CircuitRouter;
use noc_sim::activity::{ActivityLedger, ComponentActivity};
use noc_sim::kernel::Clocked;
use noc_sim::par::{par_commit, par_eval, ParPolicy};
use noc_sim::stats::LatencyHistogram;
use noc_sim::time::{Cycle, CycleCount};
use noc_sim::units::Bandwidth;
use std::collections::{BTreeMap, VecDeque};

/// One provisioned circuit stream: the session state behind a
/// [`StreamId`] on the circuit plane.
#[derive(Debug, Clone)]
struct SocStream {
    id: StreamId,
    src: NodeId,
    dst: NodeId,
    /// The allocated circuit (kept whole so release can tear it down and
    /// runtime admission can count its lanes as occupied).
    route: EdgeRoute,
    /// Tile TX lane per parallel path (at `src`).
    tx_lanes: Vec<usize>,
    /// Tile RX lane per parallel path (at `dst`).
    rx_lanes: Vec<usize>,
    /// Words queued by `inject_stream`, tagged with their inject cycle.
    ingress: VecDeque<(u16, u64)>,
    /// Inject timestamps of words in flight, per parallel path (circuit
    /// delivery is FIFO per lane, so front-of-queue pairs with the next
    /// word captured on the path's RX lane).
    pending_ts: Vec<VecDeque<u64>>,
    /// Delivered words awaiting `drain_stream`.
    egress: Vec<u16>,
    injected: u64,
    delivered: u64,
    /// BE-network configuration-delivery wait charged to this stream
    /// (zero for provision-time circuits).
    reconfig_cycles: u64,
    /// First cycle the circuit is configured and may carry traffic.
    ready_at: u64,
    /// BE message ids of in-flight setup words (runtime-admitted
    /// circuits only). Release cancels them: a dead stream's setup words
    /// must never land on lanes a newer circuit may hold by then.
    setup_msgs: Vec<u64>,
    latency: LatencyHistogram,
    active: bool,
    /// Released with [`ReleaseMode::Drain`]: admission is stopped but the
    /// lanes are held until the last accepted word is captured, at which
    /// point [`Soc::step`] finalises the teardown.
    draining: bool,
    /// Earliest teardown cycle of a drain whose words are all captured:
    /// the lanes are held one ack-flush window longer, because
    /// acknowledge pulses lag the last consumption by up to the circuit's
    /// hop count and must not hit a freshly reset window counter.
    quiesce_at: Option<u64>,
}

/// The provisioned stream table behind the [`crate::fabric`] API: every
/// circuit session with its lanes, queues and telemetry, plus the
/// per-node source index the per-cycle TX pump walks.
#[derive(Debug, Clone)]
struct StreamPlan {
    streams: Vec<SocStream>,
    /// StreamId -> index into `streams`.
    by_id: BTreeMap<u32, usize>,
    /// Per node: indices of *active* streams originating there.
    by_src: Vec<Vec<usize>>,
    /// Per node, per tile RX lane: which (stream, path) terminates there.
    rx_map: Vec<Vec<Option<(usize, usize)>>>,
    /// Nodes with at least one entry ever in `rx_map` (collection skips
    /// the rest on the per-cycle hot path).
    rx_nodes: Vec<usize>,
    /// Stream indices mid-drain, polled each cycle for completion.
    draining: Vec<usize>,
    /// One lane's payload bandwidth, recorded from the mapping so runtime
    /// admission can re-run CCN lane allocation without a clock in hand.
    lane_capacity: Bandwidth,
    /// Next session id (continues the mapping's numbering across
    /// runtime admissions).
    next_id: u32,
}

impl StreamPlan {
    fn new(mesh: &Mesh, lanes_per_port: usize, lane_capacity: Bandwidth) -> StreamPlan {
        StreamPlan {
            streams: Vec::new(),
            by_id: BTreeMap::new(),
            by_src: vec![Vec::new(); mesh.nodes()],
            rx_map: vec![vec![None; lanes_per_port]; mesh.nodes()],
            rx_nodes: Vec::new(),
            draining: Vec::new(),
            lane_capacity,
            next_id: 0,
        }
    }

    /// Register one circuit session and index its lanes. The route must
    /// have at least one path.
    fn register(
        &mut self,
        id: StreamId,
        route: EdgeRoute,
        ready_at: u64,
        reconfig_cycles: u64,
        setup_msgs: Vec<u64>,
    ) -> usize {
        let src = route.src().expect("circuit streams have paths");
        let dst = route.dst().expect("circuit streams have paths");
        let tx_lanes: Vec<usize> = route.paths.iter().map(|p| p[0].in_lane).collect();
        let rx_lanes: Vec<usize> = route
            .paths
            .iter()
            .map(|p| p.last().expect("non-empty path").out_lane)
            .collect();
        let idx = self.streams.len();
        for (j, &lane) in rx_lanes.iter().enumerate() {
            debug_assert!(self.rx_map[dst.0][lane].is_none(), "rx lane double-booked");
            self.rx_map[dst.0][lane] = Some((idx, j));
        }
        if !self.rx_nodes.contains(&dst.0) {
            self.rx_nodes.push(dst.0);
        }
        self.by_src[src.0].push(idx);
        self.by_id.insert(id.0, idx);
        let paths = route.paths.len();
        self.streams.push(SocStream {
            id,
            src,
            dst,
            route,
            tx_lanes,
            rx_lanes,
            ingress: VecDeque::new(),
            pending_ts: vec![VecDeque::new(); paths],
            egress: Vec::new(),
            injected: 0,
            delivered: 0,
            reconfig_cycles,
            ready_at,
            setup_msgs,
            latency: LatencyHistogram::new(),
            active: true,
            draining: false,
            quiesce_at: None,
        });
        idx
    }
}

/// A mesh SoC of circuit-switched routers with one tile per router.
#[derive(Debug, Clone)]
pub struct Soc {
    mesh: Mesh,
    params: RouterParams,
    routers: Vec<CircuitRouter>,
    tiles: TileSlab,
    policy: ParPolicy,
    now: Cycle,
    /// Set by [`Soc::provision`]; drives the fabric-level stream API.
    plan: Option<StreamPlan>,
    /// The BE configuration network runtime admission sends its circuit
    /// setup words over; [`Soc::step`] applies them when they fall due,
    /// so reconfiguration latency (paper §5.1) is cycle-accurate.
    be: BeNetwork,
}

impl Soc {
    /// Build a SoC with identical routers and a default tile mix: kinds
    /// rotate through the Fig. 1 palette so every kind exists somewhere.
    pub fn new(mesh: Mesh, params: RouterParams) -> Soc {
        let kinds = default_tile_kinds(&mesh);
        let routers = mesh.iter().map(|_| CircuitRouter::new(params)).collect();
        let tiles = TileSlab::new(kinds, params.lanes_per_port);
        Soc {
            mesh,
            params,
            routers,
            tiles,
            policy: ParPolicy::Auto,
            now: Cycle::ZERO,
            plan: None,
            be: BeNetwork::new(mesh, BeConfig::default()),
        }
    }

    /// Configure every circuit of `mapping` directly into the routers and
    /// set up the per-stream session table the [`crate::fabric::Fabric`]
    /// API drives: one [`StreamId`] per NoC-crossing route (the mapping's
    /// [`Mapping::streams`] numbering), each with its provisioned TX/RX
    /// lanes, word queues and latency telemetry; destination tiles get
    /// per-lane payload capture enabled so `drain_stream` can return
    /// delivered words stream-exactly.
    ///
    /// Production configuration delivery rides the BE network
    /// ([`crate::be`]); this is the instantaneous path, equivalent in
    /// final router state (`be_configuration_matches_direct_configuration`
    /// in the end-to-end tests). Circuits admitted later at runtime
    /// ([`Soc::admit_stream`]) *do* pay BE delivery latency.
    ///
    /// [`Mapping::spilled`] entries are *not* served: a circuit-only SoC
    /// has no best-effort plane to put them on (their [`StreamId`]s stay
    /// reserved so handles agree across backends). Deploy spill-admitted
    /// mappings on [`crate::hybrid::HybridFabric`] (or the packet fabric)
    /// when every stream must be delivered.
    ///
    /// Returns the handles of the streams this fabric serves.
    pub fn provision(&mut self, mapping: &Mapping) -> Result<Vec<StreamId>, ConfigError> {
        self.provision_with(mapping, ProvisionMode::Instant)
    }

    /// [`Soc::provision`] with an explicit [`ProvisionMode`].
    ///
    /// Under [`ProvisionMode::BeDelivered`] no configuration word touches
    /// a router here: each stream's setup words are batched per router
    /// ([`EdgeRoute::config_words_by_node`]) and sent over the BE network
    /// from the CCN's corner node — exactly the runtime-admission path
    /// ([`Soc::admit_stream`]) — so the cold-start delivery wait (paper
    /// §5.1 budgets) is charged to each stream's `reconfig_cycles` and,
    /// through `ready_at`, to the measured latency of every word injected
    /// before the circuit materialises. Streams are sent in [`StreamId`]
    /// order, so BE-link contention (and therefore each stream's charge)
    /// is deterministic.
    pub fn provision_with(
        &mut self,
        mapping: &Mapping,
        mode: ProvisionMode,
    ) -> Result<Vec<StreamId>, ConfigError> {
        let params = self.params;
        // Idempotency (the Fabric contract): a re-provision replaces the
        // previous plan entirely — tear down every configured lane and
        // stop capturing at the old destinations before applying the new
        // mapping, so no stale circuit keeps forwarding or capturing.
        if self.plan.is_some() {
            for node in self.mesh.iter() {
                for port in Port::ALL {
                    for lane in 0..params.lanes_per_port {
                        self.routers[node.0].deactivate_lane(port, lane)?;
                    }
                }
                for lane in 0..params.lanes_per_port {
                    // A replaced plan's mid-window credit counts and ack
                    // phases must not leak into the new plan's circuits.
                    self.routers[node.0].reset_tile_lane_flow(lane);
                }
                self.tiles.set_capture(node.0, false);
            }
        }
        if mode == ProvisionMode::Instant {
            for (node, word) in mapping.config_words(&params) {
                self.routers[node.0].apply_config_word(word)?;
            }
        }
        // In-flight configuration of a replaced plan is void.
        self.be = BeNetwork::new(self.mesh, BeConfig::default());

        let mut plan = StreamPlan::new(&self.mesh, params.lanes_per_port, mapping.lane_capacity);
        let mut served = Vec::new();
        let streams = mapping.streams();
        plan.next_id = streams.len() as u32;
        let now = self.now;
        let ccn_node = self.mesh.node(0, 0);
        for ms in streams {
            let Some(route_idx) = ms.route else {
                continue; // spilled: no circuit to serve it with
            };
            let route = mapping.routes[route_idx].clone();
            match mode {
                ProvisionMode::Instant => {
                    plan.register(ms.id, route, 0, 0, Vec::new());
                }
                ProvisionMode::BeDelivered => {
                    let by_node = route.config_words_by_node(&params);
                    let mut ready = now;
                    let mut setup_msgs = Vec::new();
                    for (node, words) in by_node {
                        let (delivery, msg) = self.be.send_tracked(now, ccn_node, node, &words);
                        ready = Cycle(ready.0.max(delivery.0));
                        setup_msgs.push(msg);
                    }
                    plan.register(ms.id, route, ready.0, ready.0 - now.0, setup_msgs);
                }
            }
            self.tiles.set_capture(ms.dst.0, true);
            served.push(ms.id);
        }
        self.plan = Some(plan);
        Ok(served)
    }

    /// Queue payload words on stream `id`. Words are tagged with the
    /// current cycle (the latency clock starts at injection, so
    /// serialisation backlog counts as service time) and drained onto the
    /// stream's provisioned TX lanes, one phit per free lane per cycle.
    /// Returns the number of words accepted (all of them — the ingress
    /// queue is unbounded; its depth measures offered-load backlog).
    ///
    /// # Panics
    /// Panics before [`Soc::provision`], on a handle this fabric does not
    /// serve, or on a released stream.
    pub fn inject_stream_words(&mut self, id: StreamId, words: &[u16]) -> usize {
        let now = self.now.0;
        let plan = self
            .plan
            .as_mut()
            .expect("Soc::inject_stream_words before Soc::provision");
        let &idx = plan
            .by_id
            .get(&id.0)
            .unwrap_or_else(|| panic!("{id} is not served by this circuit fabric"));
        let s = &mut plan.streams[idx];
        assert!(s.active, "{id} was released");
        assert!(!s.draining, "{id} is draining — admission is stopped");
        s.ingress.extend(words.iter().map(|&w| (w, now)));
        s.injected += words.len() as u64;
        words.len()
    }

    /// Take the payload words stream `id` delivered since the last call
    /// (in order — circuits are FIFO). Valid on released streams, whose
    /// last deliveries may arrive after the release.
    ///
    /// # Panics
    /// Panics before [`Soc::provision`] or on a handle this fabric does
    /// not serve.
    pub fn drain_stream_words(&mut self, id: StreamId) -> Vec<u16> {
        let plan = self
            .plan
            .as_mut()
            .expect("Soc::drain_stream_words before Soc::provision");
        let &idx = plan
            .by_id
            .get(&id.0)
            .unwrap_or_else(|| panic!("{id} is not served by this circuit fabric"));
        std::mem::take(&mut plan.streams[idx].egress)
    }

    /// Parallel circuit paths (lanes) stream `id` holds; `None` for
    /// handles this fabric does not serve. The authoritative lane count
    /// behind the hybrid's GT/BE split accounting.
    pub fn stream_path_count(&self, id: StreamId) -> Option<usize> {
        let plan = self.plan.as_ref()?;
        let &idx = plan.by_id.get(&id.0)?;
        Some(plan.streams[idx].route.paths.len())
    }

    /// Per-stream telemetry for every session the fabric has served since
    /// the last [`Soc::provision`], released ones included.
    pub fn stream_stats(&self) -> Vec<StreamStats> {
        let Some(plan) = &self.plan else {
            return Vec::new();
        };
        plan.streams
            .iter()
            .map(|s| StreamStats {
                id: s.id,
                src: s.src,
                dst: s.dst,
                plane: StreamPlane::Circuit,
                active: s.active,
                injected_words: s.injected,
                delivered_words: s.delivered,
                reconfig_cycles: s.reconfig_cycles,
                latency: s.latency.clone(),
                max_deflections: 0,
            })
            .collect()
    }

    /// Retire stream `id` per `mode`. [`ReleaseMode::Drop`] tears the
    /// circuit down now: its lanes are deactivated (one inactive
    /// configuration word per held output lane) and returned to the free
    /// pool runtime admission allocates from; undelivered ingress backlog
    /// is discarded and words mid-circuit are dropped with the lanes.
    /// [`ReleaseMode::Drain`] stops admission immediately but holds the
    /// lanes until every accepted word has been captured — [`Soc::step`]
    /// finalises the teardown loss-free once the pipeline is empty (a
    /// stream with nothing in flight tears down at once). Either way the
    /// handle stays valid for [`Soc::drain_stream_words`] /
    /// [`Soc::stream_stats`], and the stream's telemetry reports
    /// `active` until its teardown actually ran.
    pub fn release_stream(&mut self, id: StreamId, mode: ReleaseMode) -> Result<(), AdmitError> {
        let Some(plan) = &mut self.plan else {
            return Err(AdmitError::UnknownStream(id));
        };
        let Some(&idx) = plan.by_id.get(&id.0) else {
            return Err(AdmitError::UnknownStream(id));
        };
        let s = &plan.streams[idx];
        if !s.active {
            return Err(AdmitError::UnknownStream(id));
        }
        if s.draining {
            return Err(AdmitError::Draining(id));
        }
        let empty = s.ingress.is_empty() && s.pending_ts.iter().all(VecDeque::is_empty);
        let never_carried = s.delivered == 0;
        match mode {
            ReleaseMode::Drop => self.teardown_stream_at(idx),
            // A drain on a stream that never moved a word is already
            // complete — no capture happened, so no acknowledge can be in
            // flight on the reverse wires.
            ReleaseMode::Drain if empty && never_carried => self.teardown_stream_at(idx),
            ReleaseMode::Drain => {
                plan.streams[idx].draining = true;
                plan.draining.push(idx);
            }
        }
        Ok(())
    }

    /// Tear the circuit of stream index `idx` down and free its lanes —
    /// the shared endpoint of the immediate [`ReleaseMode::Drop`] path and
    /// the deferred drain finalisation in [`Soc::step`].
    fn teardown_stream_at(&mut self, idx: usize) {
        let params = self.params;
        let plan = self.plan.as_mut().expect("teardown needs a plan");
        let (src, dst, tx_lanes, rx_lanes, setup_msgs) = {
            let s = &mut plan.streams[idx];
            s.active = false;
            s.draining = false;
            s.ingress.clear();
            for q in &mut s.pending_ts {
                q.clear();
            }
            (
                s.src,
                s.dst,
                s.tx_lanes.clone(),
                s.rx_lanes.clone(),
                std::mem::take(&mut s.setup_msgs),
            )
        };
        // Void setup words still in flight on the BE network: once the
        // stream is dead its lanes may be re-admitted to a newer circuit,
        // and a late-landing stale configuration would clobber it.
        for msg in setup_msgs {
            self.be.cancel(msg);
        }
        for (node, word) in
            crate::reconfig::teardown_words_for_route(&plan.streams[idx].route, &params)
        {
            self.routers[node.0]
                .apply_config_word(word)
                .expect("teardown words are legal by construction");
        }
        plan.by_src[src.0].retain(|&i| i != idx);
        // Teardown resets the endpoints' flow-control FSMs with the lane
        // configuration: the freed lanes hand a *clean* window and ack
        // phase to whatever stream is admitted onto them next.
        for lane in tx_lanes {
            self.routers[src.0].reset_tile_lane_flow(lane);
        }
        for lane in rx_lanes {
            self.routers[dst.0].reset_tile_lane_flow(lane);
            plan.rx_map[dst.0][lane] = None;
            // Drop in-flight residue already captured on the lane.
            let _ = self.tiles.take_captured_lane(dst.0, lane);
        }
        if plan.rx_map[dst.0].iter().all(Option::is_none) {
            self.tiles.set_capture(dst.0, false);
        }
    }

    /// Is stream `id` still holding its circuit (`true` until a release
    /// — including a [`ReleaseMode::Drain`]'s deferred teardown — has
    /// actually run)? `None` for handles this fabric does not serve. A
    /// cheap per-cycle poll for drain supervisors: no telemetry clones.
    pub fn stream_is_active(&self, id: StreamId) -> Option<bool> {
        let plan = self.plan.as_ref()?;
        let &idx = plan.by_id.get(&id.0)?;
        Some(plan.streams[idx].active)
    }

    /// Would [`Soc::admit_stream`] put `demand` on circuit lanes right
    /// now? A side-effect-free probe: the CCN's lane allocation is re-run
    /// against the live circuits (draining streams still hold theirs)
    /// without claiming anything — the feasibility check control-plane
    /// policies use to avoid churning sessions on hopeless promotions.
    pub fn can_admit_circuit(&self, demand: &StreamDemand) -> bool {
        let Some(plan) = &self.plan else {
            return false;
        };
        let occupied: Vec<EdgeRoute> = plan
            .streams
            .iter()
            .filter(|s| s.active)
            .map(|s| s.route.clone())
            .collect();
        let ccn = Ccn::with_lane_capacity(self.mesh, self.params, plan.lane_capacity);
        matches!(ccn.admit_stream(demand, &occupied), Ok(route) if !route.paths.is_empty())
    }

    /// Run-time admission: re-run CCN lane allocation for `demand`
    /// against the lanes the live circuits hold (freed lanes of released
    /// streams are admissible again), ship the new circuit's
    /// configuration words over the BE network, and charge the delivery
    /// wait (paper §5.1 budgets) to the new stream — words injected
    /// before the configuration lands queue up and pay the wait in their
    /// measured latency. Returns the new session handle.
    pub fn admit_stream(&mut self, demand: &StreamDemand) -> Result<StreamId, AdmitError> {
        let mesh = self.mesh;
        let params = self.params;
        let now = self.now;
        let Some(plan) = &mut self.plan else {
            return Err(AdmitError::Unsupported(
                "admit needs a provisioned fabric (lane capacity comes from the mapping)",
            ));
        };
        let occupied: Vec<EdgeRoute> = plan
            .streams
            .iter()
            .filter(|s| s.active)
            .map(|s| s.route.clone())
            .collect();
        let ccn = Ccn::with_lane_capacity(mesh, params, plan.lane_capacity);
        let route = ccn.admit_stream(demand, &occupied)?;
        if route.paths.is_empty() {
            return Err(AdmitError::Unsupported(
                "on-tile demands need no NoC stream",
            ));
        }

        // The new circuit's configuration rides the BE network from the
        // CCN's corner node; `step` applies each batch when it falls due.
        let by_node = route.config_words_by_node(&params);
        let ccn_node = mesh.node(0, 0);
        let mut ready = now;
        let mut setup_msgs = Vec::new();
        for (node, words) in by_node {
            let (delivery, msg) = self.be.send_tracked(now, ccn_node, node, &words);
            ready = Cycle(ready.0.max(delivery.0));
            setup_msgs.push(msg);
        }

        let id = StreamId(plan.next_id);
        plan.next_id += 1;
        let dst = route.dst().expect("paths checked non-empty");
        plan.register(id, route, ready.0, ready.0 - now.0, setup_msgs);
        self.tiles.set_capture(dst.0, true);
        Ok(id)
    }

    /// Streams whose [`ReleaseMode::Drain`] teardown has not finalised
    /// yet (words still in flight, or lanes held for the ack-flush
    /// window). Outstanding work: a fabric with pending drains is not
    /// quiescent — their teardown still has to run inside `step`.
    pub fn pending_drains(&self) -> usize {
        self.plan.as_ref().map_or(0, |p| p.draining.len())
    }

    /// Total words queued for injection but not yet on the wire.
    pub fn ingress_backlog(&self) -> usize {
        self.plan
            .as_ref()
            .map_or(0, |p| p.streams.iter().map(|s| s.ingress.len()).sum())
    }

    /// Choose serial or pooled router evaluation (default
    /// [`ParPolicy::Auto`]): the eval and commit phases fan out over the
    /// persistent [`noc_sim::par::WorkerPool`]. Results are bit-identical
    /// under every policy; fabric-generic code reaches this knob through
    /// `Fabric::set_parallelism` or
    /// `Deployment::builder(..).parallelism(..)`.
    pub fn set_parallelism(&mut self, policy: ParPolicy) {
        self.policy = policy;
    }

    /// The mesh topology.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The shared router parameters.
    pub fn params(&self) -> &RouterParams {
        &self.params
    }

    /// The current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Immutable access to a router.
    pub fn router(&self, node: NodeId) -> &CircuitRouter {
        &self.routers[node.0]
    }

    /// Mutable access to a router (configuration, testbench drives).
    pub fn router_mut(&mut self, node: NodeId) -> &mut CircuitRouter {
        &mut self.routers[node.0]
    }

    /// Immutable access to the tile slab (per-node statistics, capture).
    pub fn tiles(&self) -> &TileSlab {
        &self.tiles
    }

    /// Mutable access to the tile slab (stream binding).
    pub fn tiles_mut(&mut self) -> &mut TileSlab {
        &mut self.tiles
    }

    /// Set a tile's hardware kind (before mapping).
    pub fn set_tile_kind(&mut self, node: NodeId, kind: TileKind) {
        self.tiles.set_kind(node.0, kind);
    }

    /// Advance the whole SoC by one clock cycle.
    pub fn step(&mut self) {
        // 0. Apply BE-delivered configuration that fell due this cycle:
        //    runtime-admitted circuits materialise here, charging their
        //    §5.1 reconfiguration wait cycle-accurately.
        if self.be.in_flight() > 0 {
            for (node, words) in self.be.take_due(self.now) {
                for word in words {
                    self.routers[node.0]
                        .apply_config_word(word)
                        .expect("admission emits only legal words");
                }
            }
        }

        // 1. Wire the links: every router's inputs are loaded from its
        //    neighbours' registered outputs. `set_link_input` writes only
        //    the input scratch and never a latched output, so one fused
        //    pass reading neighbours while writing own inputs is race-free
        //    (identical to the former sample-then-apply double pass). A
        //    neighbour whose every output has been parked at zero for two
        //    consecutive commits (`quiet_links`) drives nothing on any
        //    lane — skip sampling it entirely; on a mostly-idle mesh this
        //    removes the wiring pass from the per-cycle cost.
        let lanes = self.params.lanes_per_port;
        let mut data = [noc_sim::bits::Nibble::ZERO; 16];
        let mut acks = [false; 16];
        debug_assert!(lanes <= data.len());
        for node in self.mesh.iter() {
            for port in Port::NEIGHBOURS {
                if let Some(nb) = self.mesh.neighbour(node, port) {
                    if self.routers[nb.0].quiet_links() {
                        continue;
                    }
                    let opp = port.opposite().expect("neighbour port");
                    let nbr = &self.routers[nb.0];
                    for l in 0..lanes {
                        data[l] = nbr.link_output(opp, l);
                        acks[l] = nbr.ack_to_upstream(opp, l);
                    }
                    let me = &mut self.routers[node.0];
                    for l in 0..lanes {
                        me.set_link_input(port, l, data[l]);
                        me.set_ack_input(port, l, acks[l]);
                    }
                }
            }
        }

        // 2. Tiles inject and drain. Provisioned stream ingress queues go
        //    first: one word per free TX lane per cycle, each stream
        //    spreading over its own parallel circuits. Streams whose
        //    configuration is still in flight on the BE network
        //    (`ready_at`) wait — that wait is the reconfiguration latency
        //    their words' timestamps charge.
        if let Some(plan) = &mut self.plan {
            let now = self.now.0;
            for node in self.mesh.iter() {
                for &si in &plan.by_src[node.0] {
                    let s = &mut plan.streams[si];
                    if s.ready_at > now {
                        continue;
                    }
                    for (j, &lane) in s.tx_lanes.iter().enumerate() {
                        let Some(&(word, ts)) = s.ingress.front() else {
                            break;
                        };
                        if self.routers[node.0].tile_can_send(lane) {
                            s.ingress.pop_front();
                            let ok = self.routers[node.0].tile_send(lane, Phit::data(word));
                            debug_assert!(ok, "tile_can_send implies acceptance");
                            s.pending_ts[j].push_back(ts);
                        }
                    }
                }
            }
        }
        for node in self.mesh.iter() {
            self.tiles.step_node(node.0, &mut self.routers[node.0]);
        }

        // 2b. Collect per-lane captures into their streams' egress, pairing
        //     each word with its inject timestamp (FIFO per lane) for the
        //     latency ledger.
        if let Some(plan) = &mut self.plan {
            let now = self.now.0;
            for &n in &plan.rx_nodes {
                for (lane, slot) in plan.rx_map[n].iter().enumerate() {
                    let Some((si, pj)) = *slot else { continue };
                    let words = self.tiles.take_captured_lane(n, lane);
                    if words.is_empty() {
                        continue;
                    }
                    let s = &mut plan.streams[si];
                    for word in words {
                        if let Some(ts) = s.pending_ts[pj].pop_front() {
                            s.latency.record(now - ts);
                        }
                        s.egress.push(word);
                        s.delivered += 1;
                    }
                }
            }
        }

        // 2c. Finalise draining releases: a stream retired with
        //     `ReleaseMode::Drain` holds its lanes until its last accepted
        //     word was captured above, then tears down loss-free. This
        //     runs in the serial section of the cycle, so drain timing is
        //     bit-identical under every `ParPolicy`.
        if self
            .plan
            .as_ref()
            .is_some_and(|plan| !plan.draining.is_empty())
        {
            let mut done = Vec::new();
            {
                let plan = self.plan.as_mut().expect("checked above");
                let now = self.now.0;
                for i in 0..plan.draining.len() {
                    let idx = plan.draining[i];
                    let s = &mut plan.streams[idx];
                    if !(s.ingress.is_empty() && s.pending_ts.iter().all(VecDeque::is_empty)) {
                        continue;
                    }
                    // All words captured — hold the lanes one ack-flush
                    // window longer: acknowledge pulses lag the last
                    // consumption by up to the circuit's hop count, and a
                    // late ack must never hit a freshly reset window
                    // counter.
                    let margin = s.route.hops() as u64 + 4;
                    let at = *s.quiesce_at.get_or_insert(now + margin);
                    if now >= at {
                        done.push(idx);
                    }
                }
                plan.draining.retain(|idx| !done.contains(idx));
            }
            for idx in done {
                self.teardown_stream_at(idx);
            }
        }

        // 3+4. Two-phase clocking over all routers, optionally parallel.
        par_eval(&mut self.routers, self.policy);
        par_commit(&mut self.routers, self.policy);
        self.now += 1;
    }

    /// Run `cycles` cycles.
    pub fn run(&mut self, cycles: CycleCount) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Merge the whole SoC's per-component activity (for SoC-level power).
    pub fn activity(&self) -> Vec<ComponentActivity> {
        let mut merged: Vec<ComponentActivity> = Vec::new();
        for r in &self.routers {
            for comp in r.activity() {
                match merged.iter_mut().find(|c| c.kind == comp.kind) {
                    Some(existing) => existing.ledger.merge(&comp.ledger),
                    None => merged.push(comp),
                }
            }
        }
        merged
    }

    /// Sum of all routers' activity as one ledger.
    pub fn total_activity(&self) -> ActivityLedger {
        let mut total = ActivityLedger::new();
        for c in self.activity() {
            total.merge(&c.ledger);
        }
        total
    }

    /// Clear every router's ledgers (start of a measurement window).
    pub fn clear_activity(&mut self) {
        for r in &mut self.routers {
            r.clear_activity();
        }
    }

    /// Total phits delivered to all tiles.
    pub fn total_delivered(&self) -> u64 {
        (0..self.tiles.len())
            .map(|n| self.tiles.total_received(n))
            .sum()
    }
}

// Let a whole SoC be stepped by generic drivers too.
impl Clocked for Soc {
    fn eval(&mut self) {
        // The SoC's step() interleaves wiring and clocking; expose the
        // complete cycle through commit() and make eval a no-op so that
        // `kernel::step(&mut soc)` advances exactly one cycle.
    }

    fn commit(&mut self) {
        self.step();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_apps::traffic::DataPattern;
    use noc_core::phit::Phit;

    fn two_by_one() -> Soc {
        Soc::new(Mesh::new(2, 1), RouterParams::paper())
    }

    #[test]
    fn single_hop_stream_across_routers() {
        // Node (0,0) tile -> East -> node (1,0) tile.
        let mut soc = two_by_one();
        let a = soc.mesh().node(0, 0);
        let b = soc.mesh().node(1, 0);
        // Configure: at A, tile lane 0 -> East lane 0; at B, West lane 0
        // -> tile lane 0.
        soc.router_mut(a)
            .connect(Port::Tile, 0, Port::East, 0)
            .unwrap();
        soc.router_mut(b)
            .connect(Port::West, 0, Port::Tile, 0)
            .unwrap();
        soc.tiles_mut()
            .bind_source(a.0, 0, DataPattern::Random, 7, 1.0, 5);

        soc.run(200);
        let received = soc.tiles().rx(b.0, 0).received;
        // 200 cycles / 5 per phit minus pipeline fill & window throttling.
        assert!(received >= 30, "expected a steady stream, got {received}");
        assert_eq!(soc.router(b).rx_overflows(), 0);
    }

    #[test]
    fn acks_flow_back_across_the_link() {
        // With the destination tile draining, the source's window refills:
        // emission exceeds the window size by far.
        let mut soc = two_by_one();
        let a = soc.mesh().node(0, 0);
        let b = soc.mesh().node(1, 0);
        soc.router_mut(a)
            .connect(Port::Tile, 0, Port::East, 0)
            .unwrap();
        soc.router_mut(b)
            .connect(Port::West, 0, Port::Tile, 0)
            .unwrap();
        soc.tiles_mut()
            .bind_source(a.0, 0, DataPattern::Zeros, 1, 1.0, 5);
        soc.run(400);
        let sent = soc.tiles().total_sent(a.0);
        assert!(
            sent > u64::from(soc.params().window_size) * 2,
            "window must refill through returning acks; sent {sent}"
        );
    }

    #[test]
    fn multi_hop_path() {
        // 3x1 mesh: tile(0) -> East -> router(1) passthrough -> East ->
        // tile(2).
        let mut soc = Soc::new(Mesh::new(3, 1), RouterParams::paper());
        let n0 = soc.mesh().node(0, 0);
        let n1 = soc.mesh().node(1, 0);
        let n2 = soc.mesh().node(2, 0);
        soc.router_mut(n0)
            .connect(Port::Tile, 0, Port::East, 0)
            .unwrap();
        soc.router_mut(n1)
            .connect(Port::West, 0, Port::East, 0)
            .unwrap();
        soc.router_mut(n2)
            .connect(Port::West, 0, Port::Tile, 0)
            .unwrap();
        soc.tiles_mut()
            .bind_source(n0.0, 0, DataPattern::Random, 3, 1.0, 5);
        soc.run(300);
        assert!(soc.tiles().rx(n2.0, 0).received > 40);
        // Intermediate tile got nothing.
        assert_eq!(soc.tiles().total_received(n1.0), 0);
    }

    #[test]
    fn serial_and_parallel_stepping_agree() {
        let build = || {
            let mut soc = Soc::new(Mesh::new(4, 4), RouterParams::paper());
            let a = soc.mesh().node(0, 0);
            let b = soc.mesh().node(1, 0);
            soc.router_mut(a)
                .connect(Port::Tile, 0, Port::East, 0)
                .unwrap();
            soc.router_mut(b)
                .connect(Port::West, 0, Port::Tile, 0)
                .unwrap();
            soc.tiles_mut()
                .bind_source(a.0, 0, DataPattern::Random, 11, 1.0, 5);
            soc
        };
        let mut serial = build();
        serial.set_parallelism(ParPolicy::Sequential);
        let mut parallel = build();
        parallel.set_parallelism(ParPolicy::Threads(4));
        serial.run(150);
        parallel.run(150);
        assert_eq!(
            serial.tiles().rx(serial.mesh().node(1, 0).0, 0).received,
            parallel
                .tiles()
                .rx(parallel.mesh().node(1, 0).0, 0)
                .received
        );
        assert_eq!(serial.total_activity(), parallel.total_activity());
    }

    #[test]
    fn idle_soc_accumulates_only_clock_activity() {
        let mut soc = two_by_one();
        soc.run(50);
        let total = soc.total_activity();
        assert_eq!(
            total.total(),
            total.get(noc_sim::activity::ActivityClass::RegClock),
            "idle SoC: every event is a register clock"
        );
        soc.clear_activity();
        assert!(soc.total_activity().is_empty());
    }

    #[test]
    fn direct_router_drive_through_mesh_api() {
        // The testbench can bypass tile sources and push raw phits; the
        // destination tile drains its queues every cycle, so delivery shows
        // up in the tile's receive statistics.
        let mut soc = two_by_one();
        let a = soc.mesh().node(0, 0);
        let b = soc.mesh().node(1, 0);
        soc.router_mut(a)
            .connect(Port::Tile, 1, Port::East, 2)
            .unwrap();
        soc.router_mut(b)
            .connect(Port::West, 2, Port::Tile, 1)
            .unwrap();
        assert!(soc.router_mut(a).tile_send(1, Phit::data(0xD00D)));
        soc.run(12);
        assert_eq!(soc.tiles().rx(b.0, 1).received, 1);
        assert_eq!(soc.tiles().rx(b.0, 1).last_word, Some(0xD00D));
    }

    #[test]
    fn releasing_an_unready_admission_voids_its_in_flight_setup_words() {
        // Admit A (setup words in flight on the BE network), release it
        // before they land, then admit B onto the freed lanes. A's stale
        // configuration must never be applied: once B's circuit is ready,
        // the router state equals B's plan exactly and B delivers.
        use crate::ccn::Ccn;
        use crate::stream::StreamDemand;
        use crate::tile::default_tile_kinds;
        use noc_sim::units::{Bandwidth, MegaHertz};

        let mesh = Mesh::new(3, 1);
        let ccn = Ccn::new(mesh, RouterParams::paper(), MegaHertz(25.0));
        let mut g = noc_apps::taskgraph::TaskGraph::new("seed");
        let a = g.add_process("a");
        let b = g.add_process("b");
        g.add_edge(
            a,
            b,
            Bandwidth(60.0),
            noc_apps::taskgraph::TrafficShape::Streaming,
            "seed",
        );
        let mapping = ccn.map(&g, &default_tile_kinds(&mesh)).unwrap();

        let mut soc = Soc::new(mesh, RouterParams::paper());
        let ids = soc.provision(&mapping).unwrap();
        // Clear the seed stream so the interesting lanes start free.
        soc.release_stream(ids[0], ReleaseMode::Drop).unwrap();

        let demand_a = StreamDemand {
            src: mesh.node(0, 0),
            dst: mesh.node(2, 0),
            demand: Bandwidth(150.0), // 2 lanes
        };
        let id_a = soc.admit_stream(&demand_a).unwrap();
        let a_ready = soc
            .stream_stats()
            .iter()
            .find(|s| s.id == id_a)
            .unwrap()
            .reconfig_cycles;
        assert!(a_ready > 0, "premise: A's setup is in flight");
        // Release A before its configuration lands; its lanes are free
        // again and its BE messages must be voided.
        soc.release_stream(id_a, ReleaseMode::Drop).unwrap();

        let demand_b = StreamDemand {
            src: mesh.node(1, 0),
            dst: mesh.node(2, 0),
            demand: Bandwidth(150.0), // 2 lanes, overlapping A's claims
        };
        let id_b = soc.admit_stream(&demand_b).unwrap();
        let b_ready = soc
            .stream_stats()
            .iter()
            .find(|s| s.id == id_b)
            .unwrap()
            .reconfig_cycles;

        // Run far past both delivery times: only B's words may land.
        soc.run(a_ready + b_ready + 64);
        let mut reference = Soc::new(mesh, RouterParams::paper());
        let ref_ids = reference.provision(&mapping).unwrap();
        reference
            .release_stream(ref_ids[0], ReleaseMode::Drop)
            .unwrap();
        let ref_b = reference.admit_stream(&demand_b).unwrap();
        let ref_ready = reference
            .stream_stats()
            .iter()
            .find(|s| s.id == ref_b)
            .unwrap()
            .reconfig_cycles;
        reference.run(ref_ready + 1);
        for node in mesh.iter() {
            assert_eq!(
                soc.router(node).config().snapshot_words(),
                reference.router(node).config().snapshot_words(),
                "stale setup words of the released A corrupted {node:?}"
            );
        }

        // And B actually carries traffic on the cleanly configured lanes.
        soc.inject_stream_words(id_b, &[0xB0, 0xB1, 0xB2]);
        soc.run(400);
        assert_eq!(soc.drain_stream_words(id_b), vec![0xB0, 0xB1, 0xB2]);
    }
}
