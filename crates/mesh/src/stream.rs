//! Stream sessions: the per-connection vocabulary of the `Fabric` API.
//!
//! The paper's whole premise is *per-connection* guarantees — circuits are
//! provisioned per stream, and the energy/latency claims of Section 5 are
//! stated per stream. This module makes streams first-class API objects:
//!
//! * [`StreamId`] — the session handle [`crate::fabric::Fabric::provision`]
//!   returns per stream (and [`crate::fabric::Fabric::admit`] returns at
//!   runtime); words are injected and drained *by stream*, not by node.
//! * [`StreamStats`] — per-stream telemetry every backend reports through
//!   [`crate::fabric::Fabric::stream_stats`]: word counts, a full latency
//!   distribution ([`LatencyHistogram`]: min/mean/p50/p95/max cycles), and
//!   which [`StreamPlane`] served the stream — the data behind the hybrid
//!   fabric's GT/BE service-gap report.
//! * [`StreamDemand`] + [`AdmitError`] — the runtime lifecycle:
//!   [`crate::fabric::Fabric::release`] tears a circuit down and
//!   [`crate::fabric::Fabric::admit`] re-runs CCN admission against the
//!   freed lanes, the re-admission move of profiled hybrid switching
//!   (arXiv:2005.08478) over the reconfigurable circuit routing of
//!   arXiv:cs/0503066.
//! * [`ReleaseMode`] + [`ProvisionMode`] — the *phased* lifecycle verbs:
//!   teardown can drain loss-free instead of dropping mid-circuit words,
//!   and initial provisioning can ride the BE configuration network so
//!   cold-start setup time (paper §5.1 budgets) shows up in every
//!   stream's measured latency exactly like a runtime
//!   [`crate::fabric::Fabric::admit`]'s does. The policy loop that drives
//!   these verbs automatically lives in [`crate::controller`].

use crate::topology::NodeId;
use noc_sim::stats::LatencyHistogram;
use noc_sim::units::Bandwidth;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Handle of one provisioned stream session.
///
/// Ids are assigned by the fabric: [`crate::fabric::Fabric::provision`]
/// numbers the mapping's NoC-crossing streams densely — every route with
/// at least one lane path in `Mapping::routes` order, then every
/// `Mapping::spilled` entry — matching [`crate::ccn::Mapping::streams`];
/// runtime [`crate::fabric::Fabric::admit`] continues the numbering. A
/// handle stays valid (for `drain_stream`/`stream_stats`) after
/// [`crate::fabric::Fabric::release`]; re-provisioning resets the space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StreamId(pub u32);

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream#{}", self.0)
    }
}

/// Which switching plane serves a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamPlane {
    /// Provisioned circuit lanes (guaranteed throughput).
    Circuit,
    /// The packet-switched wormhole plane of a pure packet fabric.
    Packet,
    /// Best-effort spillover: the stream asked for a circuit the CCN
    /// could not admit and rides a packet plane instead (the hybrid
    /// fabric's BE side).
    Spilled,
}

impl StreamPlane {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StreamPlane::Circuit => "circuit",
            StreamPlane::Packet => "packet",
            StreamPlane::Spilled => "spilled",
        }
    }
}

impl fmt::Display for StreamPlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-stream telemetry reported by
/// [`crate::fabric::Fabric::stream_stats`].
///
/// Counters accumulate from provisioning (or runtime admission) until the
/// stream is released or re-provisioned away; they deliberately survive
/// [`crate::fabric::Fabric::clear_activity`], which resets *energy*
/// ledgers only — service telemetry and energy accounting are separate
/// measurement windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamStats {
    /// The stream's session handle.
    pub id: StreamId,
    /// Source tile.
    pub src: NodeId,
    /// Destination tile.
    pub dst: NodeId,
    /// Which plane serves (served) the stream.
    pub plane: StreamPlane,
    /// `false` once the stream has been [`crate::fabric::Fabric::release`]d.
    pub active: bool,
    /// Payload words accepted by `inject_stream` so far.
    pub injected_words: u64,
    /// Payload words delivered to the destination tile so far.
    pub delivered_words: u64,
    /// Cycles of reconfiguration (BE-network configuration delivery,
    /// paper §5.1 budgets) charged to this stream before it could carry
    /// traffic. Zero for streams provisioned at deployment time; nonzero
    /// for circuits set up by a runtime [`crate::fabric::Fabric::admit`].
    pub reconfig_cycles: u64,
    /// Word service latency in cycles, `inject_stream` to delivery —
    /// including serialisation backlog, in-network transit and (for
    /// runtime-admitted circuits) the reconfiguration wait.
    pub latency: LatencyHistogram,
    /// Largest per-word misroute count observed among this stream's
    /// delivered words. Only the bufferless deflection backend
    /// ([`crate::deflection::DeflectionFabric`]) can misroute, so this is
    /// always 0 on circuit, wormhole-packet and hybrid planes; there it
    /// is the stream-level view of deflection-storm severity.
    pub max_deflections: u64,
}

/// Largest p95 service latency among `plane`'s streams with deliveries.
pub fn worst_p95(stats: &[StreamStats], plane: StreamPlane) -> Option<u64> {
    stats
        .iter()
        .filter(|s| s.plane == plane)
        .filter_map(|s| s.latency.p95())
        .max()
}

/// Smallest p95 service latency among `plane`'s streams with deliveries.
pub fn best_p95(stats: &[StreamStats], plane: StreamPlane) -> Option<u64> {
    stats
        .iter()
        .filter(|s| s.plane == plane)
        .filter_map(|s| s.latency.p95())
        .min()
}

/// The GT/BE service-gap ordering — **the** per-connection QoS claim of
/// hybrid switching: every circuit-plane stream's p95 service latency is
/// at or below every spilled stream's p95 (vacuously true when either
/// side has no deliveries). One definition, shared by
/// [`crate::hybrid::HybridFabric::gt_no_worse_than_be`] and the
/// `fabric_compare` CI gate, so the two can never drift apart.
pub fn gt_no_worse_than_be(stats: &[StreamStats]) -> bool {
    match (
        worst_p95(stats, StreamPlane::Circuit),
        best_p95(stats, StreamPlane::Spilled),
    ) {
        (Some(gt), Some(be)) => gt <= be,
        _ => true,
    }
}

/// How [`crate::fabric::Fabric::release`] retires a stream session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReleaseMode {
    /// Immediate teardown: undelivered ingress backlog is discarded and
    /// words mid-circuit are dropped with the lanes — the historical
    /// behaviour, right when the stream's data no longer matters.
    Drop,
    /// Draining teardown: admission stops at once (further injection on
    /// the handle panics), but the lanes are held until every word
    /// already accepted has been delivered; only then does the fabric
    /// tear the circuit down and return the lanes to the admission pool.
    /// Loss-free under active injection — the stream's telemetry stays
    /// `active` until the deferred teardown completes.
    Drain,
}

impl ReleaseMode {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ReleaseMode::Drop => "drop",
            ReleaseMode::Drain => "drain",
        }
    }
}

impl fmt::Display for ReleaseMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How [`crate::fabric::Fabric::provision_with`] installs the initial
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProvisionMode {
    /// Configuration words are written straight into the routers — the
    /// zero-cost testbench path (equivalent in final router state to BE
    /// delivery, but cold-start time is invisible).
    Instant,
    /// Configuration rides the best-effort network from the CCN's corner
    /// node, exactly like a runtime [`crate::fabric::Fabric::admit`]:
    /// each stream's circuit materialises when its words land, the §5.1
    /// delivery wait is charged to the stream's `reconfig_cycles`, and
    /// words injected before readiness pay the wait in their measured
    /// latency. Backends without configuration state to deliver (the pure
    /// packet fabric's wormhole plane) are ready immediately either way.
    BeDelivered,
}

impl ProvisionMode {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ProvisionMode::Instant => "instant",
            ProvisionMode::BeDelivered => "be-delivered",
        }
    }
}

impl fmt::Display for ProvisionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A stream's guaranteed-throughput ask, the input to runtime admission
/// ([`crate::fabric::Fabric::admit`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamDemand {
    /// Source tile.
    pub src: NodeId,
    /// Destination tile.
    pub dst: NodeId,
    /// Requested bandwidth.
    pub demand: Bandwidth,
}

impl From<&crate::ccn::SpillStream> for StreamDemand {
    fn from(s: &crate::ccn::SpillStream) -> StreamDemand {
        StreamDemand {
            src: s.src,
            dst: s.dst,
            demand: s.demand,
        }
    }
}

impl From<&crate::ccn::MappedStream> for StreamDemand {
    fn from(s: &crate::ccn::MappedStream) -> StreamDemand {
        StreamDemand {
            src: s.src,
            dst: s.dst,
            demand: s.demand,
        }
    }
}

/// Why runtime admission (or a release) of a stream failed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdmitError {
    /// The demand alone exceeds a port's parallel-lane capacity.
    TooWide {
        /// Lanes the demand needs.
        needed: usize,
        /// Lanes a port offers.
        available: usize,
    },
    /// No lane path with enough free lanes exists right now.
    NoFreeLanes,
    /// A tile interface has no free lanes for the stream's endpoints.
    TileLanesExhausted {
        /// The saturated tile.
        node: NodeId,
    },
    /// The handle names no live stream of this fabric.
    UnknownStream(StreamId),
    /// The stream is already draining ([`ReleaseMode::Drain`]); a drain
    /// in progress cannot be released again or aborted.
    Draining(StreamId),
    /// The backend cannot serve this request at all.
    Unsupported(&'static str),
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::TooWide { needed, available } => {
                write!(f, "demand needs {needed} lanes, a port has {available}")
            }
            AdmitError::NoFreeLanes => write!(f, "no lane path with enough free lanes"),
            AdmitError::TileLanesExhausted { node } => {
                write!(f, "tile {node:?} has no free interface lanes")
            }
            AdmitError::UnknownStream(id) => write!(f, "{id} is not a live stream"),
            AdmitError::Draining(id) => write!(f, "{id} is already draining"),
            AdmitError::Unsupported(why) => write!(f, "unsupported: {why}"),
        }
    }
}

impl std::error::Error for AdmitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(StreamId(3).to_string(), "stream#3");
        assert_eq!(StreamPlane::Circuit.to_string(), "circuit");
        assert_eq!(StreamPlane::Spilled.to_string(), "spilled");
        assert_eq!(ReleaseMode::Drain.to_string(), "drain");
        assert_eq!(ProvisionMode::BeDelivered.to_string(), "be-delivered");
        assert!(AdmitError::NoFreeLanes.to_string().contains("lane path"));
        assert!(AdmitError::UnknownStream(StreamId(7))
            .to_string()
            .contains("stream#7"));
        assert!(AdmitError::Draining(StreamId(2))
            .to_string()
            .contains("draining"));
    }
}
