//! Processing tiles: the endpoints of every stream.
//!
//! Fig. 1's SoC mixes GPPs, DSPs, ASICs, FPGAs and Domain Specific
//! Reconfigurable Hardware (DSRH). For the communication experiments a tile
//! is a traffic endpoint: it injects phits on bound transmit lanes
//! (load-controlled, pattern-controlled) and drains its receive lanes,
//! counting and optionally checking what arrives. Computation latency
//! inside the tile is outside the paper's scope — its streams are periodic
//! by construction (Section 3.3).

use noc_apps::traffic::{DataPattern, PhitSource};
use noc_core::phit::Phit;
use noc_core::router::CircuitRouter;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The heterogeneous tile kinds of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TileKind {
    /// General-purpose processor.
    Gpp,
    /// Digital signal processor.
    Dsp,
    /// Fixed-function hardware.
    Asic,
    /// Field-programmable fabric.
    Fpga,
    /// Domain-specific reconfigurable hardware (e.g. the Montium).
    Dsrh,
}

impl TileKind {
    /// Does this tile kind satisfy a process affinity hint?
    pub fn matches_affinity(self, hint: &str) -> bool {
        let name = match self {
            TileKind::Gpp => "GPP",
            TileKind::Dsp => "DSP",
            TileKind::Asic => "ASIC",
            TileKind::Fpga => "FPGA",
            TileKind::Dsrh => "DSRH",
        };
        // FFT-style hints map onto reconfigurable fabric.
        name == hint || (matches!(self, TileKind::Dsrh | TileKind::Fpga) && hint == "FFT")
    }
}

impl fmt::Display for TileKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TileKind::Gpp => "GPP",
            TileKind::Dsp => "DSP",
            TileKind::Asic => "ASIC",
            TileKind::Fpga => "FPGA",
            TileKind::Dsrh => "DSRH",
        };
        f.write_str(s)
    }
}

/// The default heterogeneous tile mix: kinds rotate through the Fig. 1
/// palette so every kind exists somewhere on any non-trivial mesh. Shared
/// by [`crate::soc::Soc::new`] and the deployment builder so that both
/// fabrics map applications against the same tile inventory.
pub fn default_tile_kinds(mesh: &crate::topology::Mesh) -> Vec<TileKind> {
    const PALETTE: [TileKind; 6] = [
        TileKind::Gpp,
        TileKind::Dsp,
        TileKind::Asic,
        TileKind::Dsrh,
        TileKind::Fpga,
        TileKind::Dsrh,
    ];
    mesh.iter().map(|n| PALETTE[n.0 % PALETTE.len()]).collect()
}

/// A transmit binding: a phit source feeding one tile lane.
#[derive(Debug, Clone)]
struct TxBinding {
    lane: usize,
    source: PhitSource,
}

/// Per-receive-lane statistics.
#[derive(Debug, Clone, Default)]
pub struct RxStats {
    /// Phits consumed on this lane.
    pub received: u64,
    /// Payload bits received.
    pub payload_bits: u64,
    /// Last received word (for sequence checks by tests).
    pub last_word: Option<u16>,
}

/// One processing tile attached to a router's tile interface.
#[derive(Debug, Clone)]
pub struct Tile {
    /// The tile's hardware kind.
    pub kind: TileKind,
    tx: Vec<TxBinding>,
    rx_stats: Vec<RxStats>,
    /// When set, every received payload word is also kept **per receive
    /// lane** (in arrival order) for [`Tile::take_captured_lane`] — the
    /// fabric API's stream-addressed `drain` path. The circuit fabric
    /// maps each receive lane to the stream whose circuit terminates on
    /// it, so per-lane buffers are exactly per-stream delivery.
    capture: bool,
    captured: Vec<Vec<u16>>,
}

impl Tile {
    /// A tile of `kind` with `lanes` receive lanes and no transmit
    /// bindings yet.
    pub fn new(kind: TileKind, lanes: usize) -> Tile {
        Tile {
            kind,
            tx: Vec::new(),
            rx_stats: vec![RxStats::default(); lanes],
            capture: false,
            captured: vec![Vec::new(); lanes],
        }
    }

    /// Enable or disable payload capture. Capture is what backs the
    /// fabric-level `drain`; leave it off for load-style runs that only
    /// read the per-lane statistics, so long simulations do not
    /// accumulate payload history.
    pub fn set_capture(&mut self, on: bool) {
        self.capture = on;
        if !on {
            for lane in &mut self.captured {
                lane.clear();
            }
        }
    }

    /// Whether payload capture is enabled.
    pub fn capture_enabled(&self) -> bool {
        self.capture
    }

    /// Take all payload words captured since the last call, merged in
    /// lane order (the node-level legacy view; stream-exact callers use
    /// [`Tile::take_captured_lane`]).
    pub fn take_captured(&mut self) -> Vec<u16> {
        let mut out = Vec::new();
        for lane in &mut self.captured {
            out.append(lane);
        }
        out
    }

    /// Take the payload words captured on one receive lane since the last
    /// call — per-stream delivery for the fabric layer, which knows which
    /// stream's circuit terminates on the lane.
    pub fn take_captured_lane(&mut self, lane: usize) -> Vec<u16> {
        std::mem::take(&mut self.captured[lane])
    }

    /// Bind a load-controlled source to transmit lane `lane`.
    ///
    /// # Panics
    /// Panics when the lane is already bound — one stream per lane is the
    /// architecture's invariant.
    pub fn bind_source(
        &mut self,
        lane: usize,
        pattern: DataPattern,
        seed: u64,
        load: f64,
        flits_per_phit: usize,
    ) {
        assert!(
            self.tx.iter().all(|b| b.lane != lane),
            "tile lane {lane} already bound"
        );
        self.tx.push(TxBinding {
            lane,
            source: PhitSource::new(pattern, seed, load, flits_per_phit),
        });
    }

    /// Remove the source bound to `lane` (stream teardown).
    pub fn unbind_source(&mut self, lane: usize) {
        self.tx.retain(|b| b.lane != lane);
    }

    /// Drive one cycle of tile-side behaviour against the attached router:
    /// offer due phits on bound lanes, drain all receive queues.
    pub fn step(&mut self, router: &mut CircuitRouter) {
        for binding in &mut self.tx {
            let can = router.tile_can_send(binding.lane);
            if let Some(phit) = binding.source.poll(can) {
                let accepted = router.tile_send(binding.lane, phit);
                debug_assert!(accepted, "tile_can_send implies acceptance");
            }
        }
        for lane in 0..self.rx_stats.len() {
            while let Some(phit) = router.tile_recv(lane) {
                self.record_rx(lane, phit);
            }
        }
    }

    fn record_rx(&mut self, lane: usize, phit: Phit) {
        let stats = &mut self.rx_stats[lane];
        stats.received += 1;
        stats.payload_bits += 16;
        stats.last_word = Some(phit.data);
        if self.capture {
            self.captured[lane].push(phit.data);
        }
    }

    /// Statistics for receive lane `lane`.
    pub fn rx(&self, lane: usize) -> &RxStats {
        &self.rx_stats[lane]
    }

    /// Total phits emitted over all bound sources.
    pub fn total_sent(&self) -> u64 {
        self.tx.iter().map(|b| b.source.emitted).sum()
    }

    /// Total phits received over all lanes.
    pub fn total_received(&self) -> u64 {
        self.rx_stats.iter().map(|s| s.received).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::lane::Port;
    use noc_core::params::RouterParams;
    use noc_sim::kernel::step;

    #[test]
    fn tile_kind_affinity() {
        assert!(TileKind::Dsp.matches_affinity("DSP"));
        assert!(!TileKind::Dsp.matches_affinity("GPP"));
        assert!(TileKind::Dsrh.matches_affinity("FFT"));
        assert!(TileKind::Fpga.matches_affinity("FFT"));
        assert!(!TileKind::Asic.matches_affinity("FFT"));
    }

    #[test]
    fn source_feeds_router_and_sink_counts() {
        // Loopback at one router: tile lane 0 -> East, and externally we
        // feed East's traffic back in on North -> tile lane 0. Here just
        // check the TX path: the tile's source drives the router.
        let mut router = CircuitRouter::new(RouterParams::paper());
        router.connect(Port::Tile, 0, Port::East, 0).unwrap();
        let mut tile = Tile::new(TileKind::Dsp, 4);
        tile.bind_source(0, DataPattern::Random, 1, 1.0, 5);
        for _ in 0..100 {
            tile.step(&mut router);
            step(&mut router);
        }
        // 100 cycles at 1 phit/5 cycles, window WC=8 acked? No acks return
        // here, so the window (8) bounds the emission.
        assert_eq!(tile.total_sent(), 8);
    }

    #[test]
    fn rx_statistics_accumulate() {
        let mut router = CircuitRouter::new(RouterParams::paper());
        router.connect(Port::North, 0, Port::Tile, 2).unwrap();
        let mut tile = Tile::new(TileKind::Gpp, 4);
        // Stream five phits in from the north.
        let mut flits: Vec<noc_sim::bits::Nibble> = Vec::new();
        for i in 0..5u16 {
            flits.extend(Phit::data(0x100 + i).to_flits());
        }
        for nib in flits {
            router.set_link_input(Port::North, 0, nib);
            step(&mut router);
            tile.step(&mut router);
        }
        // Drain the pipeline.
        router.set_link_input(Port::North, 0, noc_sim::bits::Nibble::ZERO);
        for _ in 0..5 {
            step(&mut router);
            tile.step(&mut router);
        }
        assert_eq!(tile.rx(2).received, 5);
        assert_eq!(tile.rx(2).payload_bits, 80);
        assert_eq!(tile.rx(2).last_word, Some(0x104));
        assert_eq!(tile.total_received(), 5);
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_binding_rejected() {
        let mut tile = Tile::new(TileKind::Asic, 4);
        tile.bind_source(1, DataPattern::Zeros, 1, 1.0, 5);
        tile.bind_source(1, DataPattern::Zeros, 2, 1.0, 5);
    }

    #[test]
    fn unbind_stops_traffic() {
        let mut router = CircuitRouter::new(RouterParams::paper());
        router.connect(Port::Tile, 0, Port::East, 0).unwrap();
        let mut tile = Tile::new(TileKind::Dsrh, 4);
        tile.bind_source(0, DataPattern::Random, 1, 1.0, 5);
        for _ in 0..10 {
            tile.step(&mut router);
            step(&mut router);
        }
        let sent = tile.total_sent();
        assert!(sent > 0);
        tile.unbind_source(0);
        for _ in 0..10 {
            tile.step(&mut router);
            step(&mut router);
        }
        assert_eq!(tile.total_sent(), 0, "source removed, counter gone");
    }
}
