//! Processing tiles: the endpoints of every stream.
//!
//! Fig. 1's SoC mixes GPPs, DSPs, ASICs, FPGAs and Domain Specific
//! Reconfigurable Hardware (DSRH). For the communication experiments a tile
//! is a traffic endpoint: it injects phits on bound transmit lanes
//! (load-controlled, pattern-controlled) and drains its receive lanes,
//! counting and optionally checking what arrives. Computation latency
//! inside the tile is outside the paper's scope — its streams are periodic
//! by construction (Section 3.3).
//!
//! All tiles of one SoC live in a single [`TileSlab`] — structure-of-arrays
//! storage indexed by node, mirroring `noc_packet::router::RouterSlab`. The
//! hot per-cycle state (receive statistics, capture buffers) sits in flat
//! `nodes × lanes` arrays so a full-mesh sweep walks contiguous memory, and
//! [`TileSlab::step_node`] returns immediately for the (typical) majority of
//! tiles with no transmit bindings and nothing waiting to be drained.

use noc_apps::traffic::{DataPattern, PhitSource};
use noc_core::phit::Phit;
use noc_core::router::CircuitRouter;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The heterogeneous tile kinds of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TileKind {
    /// General-purpose processor.
    Gpp,
    /// Digital signal processor.
    Dsp,
    /// Fixed-function hardware.
    Asic,
    /// Field-programmable fabric.
    Fpga,
    /// Domain-specific reconfigurable hardware (e.g. the Montium).
    Dsrh,
}

impl TileKind {
    /// Does this tile kind satisfy a process affinity hint?
    pub fn matches_affinity(self, hint: &str) -> bool {
        let name = match self {
            TileKind::Gpp => "GPP",
            TileKind::Dsp => "DSP",
            TileKind::Asic => "ASIC",
            TileKind::Fpga => "FPGA",
            TileKind::Dsrh => "DSRH",
        };
        // FFT-style hints map onto reconfigurable fabric.
        name == hint || (matches!(self, TileKind::Dsrh | TileKind::Fpga) && hint == "FFT")
    }
}

impl fmt::Display for TileKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TileKind::Gpp => "GPP",
            TileKind::Dsp => "DSP",
            TileKind::Asic => "ASIC",
            TileKind::Fpga => "FPGA",
            TileKind::Dsrh => "DSRH",
        };
        f.write_str(s)
    }
}

/// The default heterogeneous tile mix: kinds rotate through the Fig. 1
/// palette so every kind exists somewhere on any non-trivial mesh. Shared
/// by [`crate::soc::Soc::new`] and the deployment builder so that both
/// fabrics map applications against the same tile inventory.
pub fn default_tile_kinds(mesh: &crate::topology::Mesh) -> Vec<TileKind> {
    const PALETTE: [TileKind; 6] = [
        TileKind::Gpp,
        TileKind::Dsp,
        TileKind::Asic,
        TileKind::Dsrh,
        TileKind::Fpga,
        TileKind::Dsrh,
    ];
    mesh.iter().map(|n| PALETTE[n.0 % PALETTE.len()]).collect()
}

/// A transmit binding: a phit source feeding one tile lane.
#[derive(Debug, Clone)]
struct TxBinding {
    lane: usize,
    source: PhitSource,
}

/// Per-receive-lane statistics.
#[derive(Debug, Clone, Default)]
pub struct RxStats {
    /// Phits consumed on this lane.
    pub received: u64,
    /// Payload bits received.
    pub payload_bits: u64,
    /// Last received word (for sequence checks by tests).
    pub last_word: Option<u16>,
}

/// Every processing tile of the SoC in structure-of-arrays layout, indexed
/// by node. Per-lane state lives in flat `nodes × lanes` arrays.
#[derive(Debug, Clone)]
pub struct TileSlab {
    lanes: usize,
    kinds: Vec<TileKind>,
    /// Transmit bindings per node — sparse: most nodes carry none, and
    /// [`TileSlab::step_node`] early-outs on the empty case.
    tx: Vec<Vec<TxBinding>>,
    /// Flat `nodes × lanes` receive statistics.
    rx_stats: Vec<RxStats>,
    /// When set for a node, every received payload word is also kept **per
    /// receive lane** (in arrival order) for [`TileSlab::take_captured_lane`]
    /// — the fabric API's stream-addressed `drain` path. The circuit fabric
    /// maps each receive lane to the stream whose circuit terminates on it,
    /// so per-lane buffers are exactly per-stream delivery.
    capture: Vec<bool>,
    /// Flat `nodes × lanes` capture buffers.
    captured: Vec<Vec<u16>>,
}

impl TileSlab {
    /// A slab of `kinds.len()` tiles, each with `lanes` receive lanes and
    /// no transmit bindings yet.
    pub fn new(kinds: Vec<TileKind>, lanes: usize) -> TileSlab {
        let n = kinds.len();
        TileSlab {
            lanes,
            kinds,
            tx: vec![Vec::new(); n],
            rx_stats: vec![RxStats::default(); n * lanes],
            capture: vec![false; n],
            captured: vec![Vec::new(); n * lanes],
        }
    }

    /// Number of tiles.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Is the slab empty?
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Tile lanes per node.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    #[inline]
    fn nl(&self, n: usize, lane: usize) -> usize {
        debug_assert!(lane < self.lanes);
        n * self.lanes + lane
    }

    /// The hardware kind of tile `n`.
    pub fn kind(&self, n: usize) -> TileKind {
        self.kinds[n]
    }

    /// Reassign the hardware kind of tile `n` (testbench convenience).
    pub fn set_kind(&mut self, n: usize, kind: TileKind) {
        self.kinds[n] = kind;
    }

    /// Enable or disable payload capture on tile `n`. Capture is what backs
    /// the fabric-level `drain`; leave it off for load-style runs that only
    /// read the per-lane statistics, so long simulations do not accumulate
    /// payload history.
    pub fn set_capture(&mut self, n: usize, on: bool) {
        self.capture[n] = on;
        if !on {
            for lane in 0..self.lanes {
                let idx = self.nl(n, lane);
                self.captured[idx].clear();
            }
        }
    }

    /// Whether payload capture is enabled on tile `n`.
    pub fn capture_enabled(&self, n: usize) -> bool {
        self.capture[n]
    }

    /// Take all payload words captured on tile `n` since the last call,
    /// merged in lane order (the node-level legacy view; stream-exact
    /// callers use [`TileSlab::take_captured_lane`]).
    pub fn take_captured(&mut self, n: usize) -> Vec<u16> {
        let mut out = Vec::new();
        for lane in 0..self.lanes {
            let idx = self.nl(n, lane);
            out.append(&mut self.captured[idx]);
        }
        out
    }

    /// Take the payload words captured on one receive lane of tile `n`
    /// since the last call — per-stream delivery for the fabric layer,
    /// which knows which stream's circuit terminates on the lane.
    pub fn take_captured_lane(&mut self, n: usize, lane: usize) -> Vec<u16> {
        let idx = self.nl(n, lane);
        std::mem::take(&mut self.captured[idx])
    }

    /// Bind a load-controlled source to transmit lane `lane` of tile `n`.
    ///
    /// # Panics
    /// Panics when the lane is already bound — one stream per lane is the
    /// architecture's invariant.
    pub fn bind_source(
        &mut self,
        n: usize,
        lane: usize,
        pattern: DataPattern,
        seed: u64,
        load: f64,
        flits_per_phit: usize,
    ) {
        assert!(
            self.tx[n].iter().all(|b| b.lane != lane),
            "tile lane {lane} already bound"
        );
        self.tx[n].push(TxBinding {
            lane,
            source: PhitSource::new(pattern, seed, load, flits_per_phit),
        });
    }

    /// Remove the source bound to `lane` of tile `n` (stream teardown).
    pub fn unbind_source(&mut self, n: usize, lane: usize) {
        self.tx[n].retain(|b| b.lane != lane);
    }

    /// Drive one cycle of tile `n`'s behaviour against its router: offer
    /// due phits on bound lanes, drain all receive queues. A tile with no
    /// bindings and nothing waiting returns immediately — on a mostly-idle
    /// mesh this is the common case and keeps the tile sweep out of the
    /// per-cycle cost entirely.
    pub fn step_node(&mut self, n: usize, router: &mut CircuitRouter) {
        if self.tx[n].is_empty() && router.tile_rx_total() == 0 {
            return;
        }
        for binding in &mut self.tx[n] {
            let can = router.tile_can_send(binding.lane);
            if let Some(phit) = binding.source.poll(can) {
                let accepted = router.tile_send(binding.lane, phit);
                debug_assert!(accepted, "tile_can_send implies acceptance");
            }
        }
        for lane in 0..self.lanes {
            while let Some(phit) = router.tile_recv(lane) {
                self.record_rx(n, lane, phit);
            }
        }
    }

    fn record_rx(&mut self, n: usize, lane: usize, phit: Phit) {
        let idx = self.nl(n, lane);
        let stats = &mut self.rx_stats[idx];
        stats.received += 1;
        stats.payload_bits += 16;
        stats.last_word = Some(phit.data);
        if self.capture[n] {
            self.captured[idx].push(phit.data);
        }
    }

    /// Statistics for receive lane `lane` of tile `n`.
    pub fn rx(&self, n: usize, lane: usize) -> &RxStats {
        &self.rx_stats[self.nl(n, lane)]
    }

    /// Total phits emitted over tile `n`'s currently bound sources.
    pub fn total_sent(&self, n: usize) -> u64 {
        self.tx[n].iter().map(|b| b.source.emitted).sum()
    }

    /// Total phits received over all lanes of tile `n`.
    pub fn total_received(&self, n: usize) -> u64 {
        (0..self.lanes)
            .map(|lane| self.rx_stats[self.nl(n, lane)].received)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::lane::Port;
    use noc_core::params::RouterParams;
    use noc_sim::kernel::step;

    fn slab_of_one(kind: TileKind) -> TileSlab {
        TileSlab::new(vec![kind], 4)
    }

    #[test]
    fn tile_kind_affinity() {
        assert!(TileKind::Dsp.matches_affinity("DSP"));
        assert!(!TileKind::Dsp.matches_affinity("GPP"));
        assert!(TileKind::Dsrh.matches_affinity("FFT"));
        assert!(TileKind::Fpga.matches_affinity("FFT"));
        assert!(!TileKind::Asic.matches_affinity("FFT"));
    }

    #[test]
    fn source_feeds_router_and_sink_counts() {
        // Loopback at one router: tile lane 0 -> East, and externally we
        // feed East's traffic back in on North -> tile lane 0. Here just
        // check the TX path: the tile's source drives the router.
        let mut router = CircuitRouter::new(RouterParams::paper());
        router.connect(Port::Tile, 0, Port::East, 0).unwrap();
        let mut tiles = slab_of_one(TileKind::Dsp);
        tiles.bind_source(0, 0, DataPattern::Random, 1, 1.0, 5);
        for _ in 0..100 {
            tiles.step_node(0, &mut router);
            step(&mut router);
        }
        // 100 cycles at 1 phit/5 cycles, window WC=8 acked? No acks return
        // here, so the window (8) bounds the emission.
        assert_eq!(tiles.total_sent(0), 8);
    }

    #[test]
    fn rx_statistics_accumulate() {
        let mut router = CircuitRouter::new(RouterParams::paper());
        router.connect(Port::North, 0, Port::Tile, 2).unwrap();
        let mut tiles = slab_of_one(TileKind::Gpp);
        // Stream five phits in from the north.
        let mut flits: Vec<noc_sim::bits::Nibble> = Vec::new();
        for i in 0..5u16 {
            flits.extend(Phit::data(0x100 + i).to_flits());
        }
        for nib in flits {
            router.set_link_input(Port::North, 0, nib);
            step(&mut router);
            tiles.step_node(0, &mut router);
        }
        // Drain the pipeline.
        router.set_link_input(Port::North, 0, noc_sim::bits::Nibble::ZERO);
        for _ in 0..5 {
            step(&mut router);
            tiles.step_node(0, &mut router);
        }
        assert_eq!(tiles.rx(0, 2).received, 5);
        assert_eq!(tiles.rx(0, 2).payload_bits, 80);
        assert_eq!(tiles.rx(0, 2).last_word, Some(0x104));
        assert_eq!(tiles.total_received(0), 5);
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_binding_rejected() {
        let mut tiles = slab_of_one(TileKind::Asic);
        tiles.bind_source(0, 1, DataPattern::Zeros, 1, 1.0, 5);
        tiles.bind_source(0, 1, DataPattern::Zeros, 2, 1.0, 5);
    }

    #[test]
    fn unbind_stops_traffic() {
        let mut router = CircuitRouter::new(RouterParams::paper());
        router.connect(Port::Tile, 0, Port::East, 0).unwrap();
        let mut tiles = slab_of_one(TileKind::Dsrh);
        tiles.bind_source(0, 0, DataPattern::Random, 1, 1.0, 5);
        for _ in 0..10 {
            tiles.step_node(0, &mut router);
            step(&mut router);
        }
        let sent = tiles.total_sent(0);
        assert!(sent > 0);
        tiles.unbind_source(0, 0);
        for _ in 0..10 {
            tiles.step_node(0, &mut router);
            step(&mut router);
        }
        assert_eq!(tiles.total_sent(0), 0, "source removed, counter gone");
    }

    #[test]
    fn idle_tile_step_is_a_no_op() {
        // No bindings, nothing received: step_node must not disturb the
        // router (in particular it must not mark its input inbox, which
        // would defeat the router's idle fast path).
        let mut router = CircuitRouter::new(RouterParams::paper());
        let mut tiles = slab_of_one(TileKind::Gpp);
        step(&mut router); // settle
        let before: Vec<_> = router.activity();
        step(&mut router); // fast path engaged
        tiles.step_node(0, &mut router);
        step(&mut router); // must still take the fast path
        let after: Vec<_> = router.activity();
        // Three idle cycles, identical per-cycle charges: the deltas of
        // cycles 2 and 3 each equal the cycle-1 charge.
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(
                a.ledger.total(),
                3 * b.ledger.total(),
                "{:?}: idle tile stepping must not unsettle the router",
                b.kind
            );
        }
    }

    #[test]
    fn capture_is_per_node() {
        let mut tiles = TileSlab::new(vec![TileKind::Gpp, TileKind::Dsp], 4);
        tiles.set_capture(0, true);
        assert!(tiles.capture_enabled(0));
        assert!(!tiles.capture_enabled(1));
        tiles.record_rx(0, 1, Phit::data(0xAB));
        tiles.record_rx(1, 1, Phit::data(0xCD));
        assert_eq!(tiles.take_captured(0), vec![0xAB]);
        assert_eq!(tiles.take_captured(1), Vec::<u16>::new());
        assert_eq!(tiles.rx(1, 1).received, 1, "stats still counted");
        // Disabling capture clears any residue.
        tiles.record_rx(0, 2, Phit::data(0x11));
        tiles.set_capture(0, false);
        assert_eq!(tiles.take_captured_lane(0, 2), Vec::<u16>::new());
    }
}
