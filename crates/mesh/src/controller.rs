//! The control plane: a policy-driven [`FabricController`] over any
//! [`Fabric`].
//!
//! The data plane's lifecycle verbs — [`Fabric::release`],
//! [`Fabric::admit`], [`Fabric::provision_with`] — are mechanisms; *which*
//! stream deserves a freed circuit, and *when* an under-used circuit
//! should give its lanes up, is policy. Profiled hybrid switching
//! (arXiv:2005.08478) makes that choice from measured traffic, and
//! dynamic circuit routing (arXiv:cs/0503066) treats setup and teardown as
//! phased operations with real latency. This module is that missing
//! layer:
//!
//! * [`FabricController`] owns a `Box<dyn Fabric>` and is itself a
//!   [`Fabric`], so everything written against the trait — the
//!   [`crate::deployment`] builder, the benches, the conformance suite —
//!   runs unchanged over a controlled fabric.
//! * [`AdmissionPolicy`] is the pluggable brain: each policy window the
//!   controller hands it the measured per-stream telemetry
//!   ([`StreamStats`] joined with each stream's declared
//!   [`StreamDemand`]) and executes the [`PolicyAction`]s it returns —
//!   all via the existing `release`/`admit` verbs, never behind the
//!   fabric's back.
//! * Three policies ship: [`FirstFit`] (promote the lowest-id spilled
//!   stream whenever a circuit is free), [`ProfiledPromotion`] (rank
//!   spilled streams by measured p95 service latency, then by delivered
//!   words — the stream suffering most gets the freed circuit first) and
//!   [`LoadDemotion`] (evict circuits whose measured load stays far below
//!   their declared demand, but only while a spilled stream is actively
//!   moving words — eviction without live pressure would just flap).
//!
//! Promotions are **churn-free**: the controller probes
//! [`Fabric::can_admit_circuit`] first, admits the demand onto the
//! circuit plane, and only then retires the old spilled session — with
//! [`ReleaseMode::Drain`], so not a single best-effort word is lost in
//! the hand-over. Demotions drain too; the demoted demand is re-admitted
//! in a *later* tick, after promotions have had first claim on the freed
//! lanes (on a hybrid it then lands on the packet plane as spillover).

use crate::ccn::Mapping;
use crate::fabric::{
    EnergyModel, Fabric, FabricKind, FabricSnapshot, ProvisionError, SnapshotError,
};
use crate::stream::{
    AdmitError, ProvisionMode, ReleaseMode, StreamDemand, StreamId, StreamPlane, StreamStats,
};
use crate::topology::Mesh;
use noc_power::estimator::PowerReport;
use noc_sim::activity::ComponentActivity;
use noc_sim::kernel::Clocked;
use noc_sim::par::ParPolicy;
use noc_sim::time::{Cycle, CycleCount};
use noc_sim::units::{Bandwidth, FemtoJoules, MegaHertz, SquareMicroMeters};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// One live stream as a policy sees it: measured telemetry joined with
/// the declared ask, plus the words moved during the window that just
/// closed (lifetime counters alone cannot show a circuit going idle).
#[derive(Debug, Clone)]
pub struct PolicyStream {
    /// Measured per-stream telemetry, cumulative since admission.
    pub stats: StreamStats,
    /// The stream's declared guaranteed-throughput ask.
    pub demand: StreamDemand,
    /// Words accepted during the last policy window.
    pub window_injected: u64,
    /// Words delivered during the last policy window.
    pub window_delivered: u64,
}

/// Everything an [`AdmissionPolicy`] sees at a tick.
#[derive(Debug)]
pub struct PolicyView<'a> {
    /// Live (active, policy-managed) streams; draining and released
    /// sessions are excluded.
    pub streams: &'a [PolicyStream],
    /// Cycles since the previous tick (the measurement window behind
    /// `window_injected`/`window_delivered`).
    pub window: CycleCount,
}

impl PolicyView<'_> {
    /// The spilled streams, in stream-id order.
    pub fn spilled(&self) -> impl Iterator<Item = &PolicyStream> {
        self.streams
            .iter()
            .filter(|s| s.stats.plane == StreamPlane::Spilled)
    }

    /// The circuit-plane streams, in stream-id order.
    pub fn circuits(&self) -> impl Iterator<Item = &PolicyStream> {
        self.streams
            .iter()
            .filter(|s| s.stats.plane == StreamPlane::Circuit)
    }
}

/// A lifecycle move an [`AdmissionPolicy`] asks the controller to make.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyAction {
    /// Move this spilled stream onto circuit lanes. The controller
    /// executes it only when [`Fabric::can_admit_circuit`] confirms lanes
    /// are free: it admits the demand first, then drains the old spilled
    /// session loss-free and maps the handles in the [`TickReport`].
    Promote(StreamId),
    /// Evict this circuit-plane stream: drain it loss-free, free its
    /// lanes, and re-admit its demand in a later tick — after promotions
    /// have had first claim on the lanes (on a hybrid the re-admission
    /// then spills to the packet plane).
    Demote(StreamId),
}

/// A pluggable admission policy: the profiled-selection brain of the
/// control plane. Object-safe — the controller holds a
/// `Box<dyn AdmissionPolicy>`.
///
/// ```
/// use noc_mesh::controller::{AdmissionPolicy, PolicyAction, PolicyView};
///
/// /// Promote every spilled stream, in id order (the controller still
/// /// probes lane feasibility before acting).
/// #[derive(Debug, Clone)]
/// struct PromoteAll;
///
/// impl AdmissionPolicy for PromoteAll {
///     fn name(&self) -> &'static str {
///         "promote-all"
///     }
///     fn decide(&mut self, view: &PolicyView<'_>) -> Vec<PolicyAction> {
///         view.spilled()
///             .map(|s| PolicyAction::Promote(s.stats.id))
///             .collect()
///     }
///     fn box_clone(&self) -> Box<dyn AdmissionPolicy> {
///         Box::new(self.clone())
///     }
/// }
///
/// assert_eq!(PromoteAll.name(), "promote-all");
/// ```
pub trait AdmissionPolicy: fmt::Debug + Send {
    /// Short policy name (benches print it).
    fn name(&self) -> &'static str;

    /// Inspect the window's measurements and propose lifecycle moves.
    /// Infeasible proposals are dropped by the controller, so a policy
    /// may freely rank every candidate.
    fn decide(&mut self, view: &PolicyView<'_>) -> Vec<PolicyAction>;

    /// An owned copy of this policy, *including* any accumulated
    /// measurement state (EWMA estimates, dwell counters). Controller
    /// snapshots carry the policy through this, so a restored replay
    /// makes bit-identical decisions; fleet specs use it to stamp out
    /// one configured policy per tenant.
    fn box_clone(&self) -> Box<dyn AdmissionPolicy>;
}

/// The naive baseline: whenever circuit lanes are free, promote the
/// lowest-id spilled stream — admission order, no profiling.
#[derive(Debug, Default, Clone, Copy)]
pub struct FirstFit;

impl AdmissionPolicy for FirstFit {
    fn name(&self) -> &'static str {
        "first-fit"
    }

    fn decide(&mut self, view: &PolicyView<'_>) -> Vec<PolicyAction> {
        view.spilled()
            .map(|s| PolicyAction::Promote(s.stats.id))
            .collect()
    }

    fn box_clone(&self) -> Box<dyn AdmissionPolicy> {
        Box::new(*self)
    }
}

/// Profiled promotion (arXiv:2005.08478): rank spilled streams by
/// *measured* suffering — largest p95 service latency first, then most
/// delivered words per window (the busiest victim), then lowest id — and
/// hand freed circuits to the worst first.
#[derive(Debug, Default, Clone, Copy)]
pub struct ProfiledPromotion;

impl AdmissionPolicy for ProfiledPromotion {
    fn name(&self) -> &'static str {
        "profiled-promotion"
    }

    fn decide(&mut self, view: &PolicyView<'_>) -> Vec<PolicyAction> {
        let mut spilled: Vec<&PolicyStream> = view.spilled().collect();
        spilled.sort_by(|a, b| {
            let pa = a.stats.latency.p95().unwrap_or(0);
            let pb = b.stats.latency.p95().unwrap_or(0);
            pb.cmp(&pa)
                .then(b.window_delivered.cmp(&a.window_delivered))
                .then(a.stats.id.cmp(&b.stats.id))
        });
        spilled
            .into_iter()
            .map(|s| PolicyAction::Promote(s.stats.id))
            .collect()
    }

    fn box_clone(&self) -> Box<dyn AdmissionPolicy> {
        Box::new(*self)
    }
}

/// Load-based demotion: evict circuits whose *measured* delivered
/// bandwidth stayed below `utilisation_floor` of their declared demand
/// for a full window — but only while spilled streams are waiting for
/// lanes (eviction without pressure would only flap). Pair it with a
/// promotion policy via [`LoadDemotion::then`] to complete the loop.
///
/// The raw single-window measurement is fragile under *bursty* traffic:
/// a stream with a 75% duty cycle reads as dead every off-window, gets
/// evicted, and is re-admitted straight back — an eviction flap. The
/// hardened form ([`LoadDemotion::hardened`], or [`LoadDemotion::with_ewma`]
/// / [`LoadDemotion::with_min_dwell`] individually) fixes both failure
/// modes: an exponentially weighted moving average smooths the load
/// estimate over several windows (so the off-phase of a burst no longer
/// looks like abandonment), and a per-circuit minimum dwell time keeps
/// freshly admitted circuits safe until enough windows of evidence have
/// accumulated.
#[derive(Debug)]
pub struct LoadDemotion {
    /// The controller clock, to convert words/window into bandwidth.
    clock: MegaHertz,
    /// Demote below this fraction of declared demand (e.g. 0.25).
    floor: f64,
    /// Promotion policy run on the same view (demotions are pointless
    /// without someone to hand the lanes to).
    promote: Option<Box<dyn AdmissionPolicy>>,
    /// EWMA smoothing factor α (`estimate = α·window + (1−α)·previous`);
    /// `None` measures each window raw — the unhardened baseline.
    ewma_alpha: Option<f64>,
    /// Windows a circuit must have been observed before it is eligible
    /// for eviction.
    min_dwell: u32,
    /// Per-circuit smoothed bandwidth estimate (Mbit/s), keyed by
    /// session id. A re-admission gets a fresh session id and therefore
    /// a fresh estimate.
    ewma: BTreeMap<u32, f64>,
    /// Per-circuit count of observed windows (dwell), keyed likewise.
    dwell: BTreeMap<u32, u32>,
}

impl LoadDemotion {
    /// [`LoadDemotion::hardened`]'s EWMA smoothing factor: ~3 windows of
    /// memory, enough to ride out single off-windows of a bursty phase.
    pub const DEFAULT_EWMA_ALPHA: f64 = 0.3;

    /// [`LoadDemotion::hardened`]'s minimum dwell in policy windows.
    pub const DEFAULT_MIN_DWELL: u32 = 4;

    /// Demote circuits measured below `floor` (a fraction in `0.0..1.0`)
    /// of their declared demand at SoC clock `clock`. Raw per-window
    /// measurement, no dwell protection — the baseline that flaps under
    /// bursty load.
    pub fn new(clock: MegaHertz, floor: f64) -> LoadDemotion {
        assert!((0.0..=1.0).contains(&floor), "floor is a fraction");
        LoadDemotion {
            clock,
            floor,
            promote: None,
            ewma_alpha: None,
            min_dwell: 0,
            ewma: BTreeMap::new(),
            dwell: BTreeMap::new(),
        }
    }

    /// The fleet-hardened variant: [`LoadDemotion::new`] plus EWMA
    /// smoothing ([`LoadDemotion::DEFAULT_EWMA_ALPHA`]) and a minimum
    /// dwell ([`LoadDemotion::DEFAULT_MIN_DWELL`]).
    pub fn hardened(clock: MegaHertz, floor: f64) -> LoadDemotion {
        LoadDemotion::new(clock, floor)
            .with_ewma(Self::DEFAULT_EWMA_ALPHA)
            .with_min_dwell(Self::DEFAULT_MIN_DWELL)
    }

    /// Smooth the load estimate with an EWMA of factor `alpha` in
    /// `(0.0, 1.0]` (1.0 degenerates to the raw window measurement).
    ///
    /// # Panics
    /// Panics on an `alpha` outside `(0.0, 1.0]`.
    pub fn with_ewma(mut self, alpha: f64) -> LoadDemotion {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha is a weight in (0, 1]"
        );
        self.ewma_alpha = Some(alpha);
        self
    }

    /// Protect circuits for their first `windows` policy windows.
    pub fn with_min_dwell(mut self, windows: u32) -> LoadDemotion {
        self.min_dwell = windows;
        self
    }

    /// Also run `promote` each tick (its actions follow the demotions).
    pub fn then(mut self, promote: Box<dyn AdmissionPolicy>) -> LoadDemotion {
        self.promote = Some(promote);
        self
    }

    /// Measured delivered bandwidth of one stream over the last window.
    fn measured(&self, s: &PolicyStream, window: CycleCount) -> Bandwidth {
        // words × 16 bit / (window cycles / clock MHz) = Mbit/s.
        Bandwidth(s.window_delivered as f64 * 16.0 * self.clock.value() / window.max(1) as f64)
    }
}

impl AdmissionPolicy for LoadDemotion {
    fn name(&self) -> &'static str {
        if self.ewma_alpha.is_some() || self.min_dwell > 0 {
            "load-demotion-hardened"
        } else {
            "load-demotion"
        }
    }

    fn decide(&mut self, view: &PolicyView<'_>) -> Vec<PolicyAction> {
        let mut actions = Vec::new();
        // Advance every circuit's estimator each window, pressure or
        // not: a stream's measured history must not depend on whether
        // anyone happened to be waiting for its lanes at the time.
        let mut estimates: Vec<(StreamId, f64, u32)> = Vec::new();
        for s in view.circuits() {
            let id = s.stats.id;
            let raw = self.measured(s, view.window).value();
            let smoothed = match self.ewma_alpha {
                Some(alpha) => {
                    let e = self.ewma.entry(id.0).or_insert(raw);
                    *e = alpha * raw + (1.0 - alpha) * *e;
                    *e
                }
                None => raw,
            };
            let dwell = self.dwell.entry(id.0).or_insert(0);
            *dwell = dwell.saturating_add(1);
            estimates.push((id, smoothed, *dwell));
        }
        // Forget estimator state of sessions no longer on circuit lanes
        // (demoted, promoted away or released): a later re-admission is
        // a new session with a new id and starts fresh.
        self.ewma
            .retain(|id, _| estimates.iter().any(|(e, _, _)| e.0 == *id));
        self.dwell
            .retain(|id, _| estimates.iter().any(|(e, _, _)| e.0 == *id));
        // Demote only under *active* pressure: a spilled stream that
        // actually moved words this window wants the lanes. (A merely
        // existing spilled stream is not enough — evicting for an idle
        // candidate would demote, promote, re-spill and repeat forever.)
        let pressure = view
            .spilled()
            .any(|s| s.window_injected > 0 || s.window_delivered > 0);
        if pressure {
            for s in view.circuits() {
                let Some(&(_, estimate, dwell)) =
                    estimates.iter().find(|(id, _, _)| *id == s.stats.id)
                else {
                    continue;
                };
                if dwell > self.min_dwell && estimate < self.floor * s.demand.demand.value() {
                    actions.push(PolicyAction::Demote(s.stats.id));
                }
            }
        }
        if let Some(promote) = &mut self.promote {
            actions.extend(promote.decide(view));
        }
        actions
    }

    fn box_clone(&self) -> Box<dyn AdmissionPolicy> {
        Box::new(LoadDemotion {
            clock: self.clock,
            floor: self.floor,
            promote: self.promote.as_ref().map(|p| p.box_clone()),
            ewma_alpha: self.ewma_alpha,
            min_dwell: self.min_dwell,
            ewma: self.ewma.clone(),
            dwell: self.dwell.clone(),
        })
    }
}

/// One executed promotion: the spilled session `from` was drained and its
/// demand re-admitted onto circuit lanes as session `to`. Telemetry
/// splits cleanly at the hand-over: `from`'s histogram is the spilled
/// phase, `to`'s is the post-promotion phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Promotion {
    /// The retired spilled session (drained loss-free, still drainable).
    pub from: StreamId,
    /// The circuit session now serving the demand.
    pub to: StreamId,
}

/// What one [`FabricController::tick`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TickReport {
    /// Spilled sessions promoted onto freed circuit lanes.
    pub promoted: Vec<Promotion>,
    /// Circuit sessions whose loss-free eviction drain was started.
    pub demotion_started: Vec<StreamId>,
    /// Demoted demands re-admitted after their drain completed, as
    /// `(old session, new session)` — on a hybrid the new session is
    /// spillover when promotions took the lanes.
    pub readmitted: Vec<Promotion>,
    /// Demoted demands whose re-admission failed outright (no circuit
    /// lanes *and* no best-effort plane); their streams are gone.
    pub lost: Vec<StreamId>,
}

impl TickReport {
    /// Did this tick change anything?
    pub fn is_empty(&self) -> bool {
        self.promoted.is_empty()
            && self.demotion_started.is_empty()
            && self.readmitted.is_empty()
            && self.lost.is_empty()
    }
}

/// Cumulative control-plane counters since the last provision: what the
/// policy loop *did*, fabric-generically, without replaying
/// [`TickReport`]s. The fleet SLO report aggregates these per tenant;
/// `pointless_evictions` is the eviction-flap metric the hardened
/// [`LoadDemotion`] is gated on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Policy ticks run (automatic and hand-driven).
    pub ticks: u64,
    /// Spilled sessions promoted onto circuit lanes.
    pub promotions: u64,
    /// Eviction drains started.
    pub demotions: u64,
    /// Demoted demands re-admitted after their drain completed.
    pub readmissions: u64,
    /// Demoted demands whose re-admission failed outright (stream gone).
    pub lost: u64,
    /// Demote actions the controller refused because the demand was in
    /// its post-flap cooldown.
    pub suppressed_evictions: u64,
    /// Evictions that turned out pointless — the demoted demand's
    /// re-admission landed straight back on circuit lanes because no
    /// promotion wanted them. Each one is a demote/readmit flap.
    pub pointless_evictions: u64,
}

/// The policy-driven control plane over any [`Fabric`] — and itself a
/// [`Fabric`], so deployments, benches and the conformance suite drive a
/// controlled fabric through the exact same trait.
///
/// The controller remembers every live stream's declared
/// [`StreamDemand`] (learned at `provision`/`admit` time), and every
/// `window` cycles of [`Fabric::step`] it runs one [`FabricController::tick`]:
///
/// 1. build a [`PolicyView`] (measured stats joined with demands, plus
///    per-window word deltas) and ask the [`AdmissionPolicy`] to decide;
/// 2. execute `Promote` actions churn-free — probe
///    [`Fabric::can_admit_circuit`], admit, then drain the old spilled
///    session loss-free;
/// 3. re-admit previously demoted demands whose drains completed (after
///    promotions, so the evicted stream cannot just take its lanes back);
/// 4. start `Demote` drains.
///
/// ```
/// use noc_apps::taskgraph::{TaskGraph, TrafficShape};
/// use noc_core::params::RouterParams;
/// use noc_mesh::ccn::Ccn;
/// use noc_mesh::controller::{FabricController, ProfiledPromotion};
/// use noc_mesh::fabric::Fabric;
/// use noc_mesh::hybrid::HybridFabric;
/// use noc_mesh::stream::{ProvisionMode, ReleaseMode, StreamPlane};
/// use noc_mesh::tile::default_tile_kinds;
/// use noc_mesh::topology::Mesh;
/// use noc_sim::units::MegaHertz;
///
/// // The canonical oversubscribed line: the light stream spills.
/// let mesh = Mesh::new(3, 1);
/// let ccn = Ccn::new(mesh, RouterParams::paper(), MegaHertz(25.0));
/// let g = noc_apps::synthetic::oversubscribed_line(ccn.lane_capacity());
/// let mapping = ccn.map_with_spill(&g, &default_tile_kinds(&mesh)).unwrap();
///
/// let mut ctl = FabricController::new(
///     Box::new(HybridFabric::paper(mesh)),
///     Box::new(ProfiledPromotion),
/// )
/// .with_window(64);
/// // Cold start over the BE network: §5.1 delivery charged per stream.
/// let ids = ctl
///     .provision_with(&mapping, ProvisionMode::BeDelivered)
///     .unwrap();
///
/// // Drain-release the heavy circuit: loss-free teardown, and the next
/// // tick promotes the spilled stream onto the freed lanes.
/// ctl.release(ids[0], ReleaseMode::Drain).unwrap();
/// ctl.run(256);
/// let promoted = ctl
///     .take_reports()
///     .iter()
///     .flat_map(|t| t.promoted.clone())
///     .next()
///     .expect("the spilled stream is promoted");
/// assert_eq!(promoted.from, ids[1]);
/// let stats = ctl.stream_stats();
/// let s = stats.iter().find(|s| s.id == promoted.to).unwrap();
/// assert_eq!(s.plane, StreamPlane::Circuit);
/// assert!(s.reconfig_cycles > 0, "promotion pays BE delivery");
/// ```
pub struct FabricController {
    fabric: Box<dyn Fabric>,
    policy: Box<dyn AdmissionPolicy>,
    /// Policy window in cycles.
    window: CycleCount,
    since_tick: CycleCount,
    /// Declared demand per live, policy-managed stream.
    demands: HashMap<u32, StreamDemand>,
    /// `(injected, delivered)` snapshot per stream at the last tick.
    last_counts: HashMap<u32, (u64, u64)>,
    /// Demoted streams whose drains are pending re-admission.
    demoting: Vec<StreamId>,
    /// Tick outcomes since the last [`FabricController::take_reports`].
    reports: Vec<TickReport>,
    /// Hand-overs not yet collected by [`Fabric::take_handle_moves`]
    /// (how `Deployment` follows promotions without seeing TickReports).
    pending_moves: Vec<(StreamId, Option<StreamId>)>,
    /// Demotion hysteresis, keyed by the demand's `(src, dst)` pair:
    /// ticks to wait before evicting the same demand again, after an
    /// eviction turned out pointless (its re-admission landed straight
    /// back on circuit lanes because no promotion claimed them).
    cooldown: BTreeMap<(usize, usize), u32>,
    /// Cumulative action counters since the last provision.
    stats: ControllerStats,
}

impl fmt::Debug for FabricController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FabricController")
            .field("kind", &self.fabric.kind())
            .field("policy", &self.policy)
            .field("window", &self.window)
            .field("live_streams", &self.demands.len())
            .field("demoting", &self.demoting)
            .finish_non_exhaustive()
    }
}

impl FabricController {
    /// The default policy window: how many [`Fabric::step`]s between
    /// automatic [`FabricController::tick`]s.
    pub const DEFAULT_WINDOW: CycleCount = 256;

    /// Ticks a demand sits out after a pointless eviction (its
    /// re-admission landed straight back on circuit lanes): demotion
    /// hysteresis, so `LoadDemotion` without a taker cannot flap a
    /// circuit down and up every window.
    pub const DEMOTION_COOLDOWN: u32 = 8;

    /// A controller over `fabric` running `policy` every
    /// [`FabricController::DEFAULT_WINDOW`] cycles.
    pub fn new(fabric: Box<dyn Fabric>, policy: Box<dyn AdmissionPolicy>) -> FabricController {
        FabricController {
            fabric,
            policy,
            window: Self::DEFAULT_WINDOW,
            since_tick: 0,
            demands: HashMap::new(),
            last_counts: HashMap::new(),
            demoting: Vec::new(),
            reports: Vec::new(),
            pending_moves: Vec::new(),
            cooldown: BTreeMap::new(),
            stats: ControllerStats::default(),
        }
    }

    /// Set the policy window (cycles between automatic ticks).
    ///
    /// # Panics
    /// Panics on a zero window.
    pub fn with_window(mut self, window: CycleCount) -> FabricController {
        assert!(window > 0, "a zero policy window never ticks");
        self.window = window;
        self
    }

    /// The controlled fabric (inspection).
    pub fn inner(&self) -> &dyn Fabric {
        &*self.fabric
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Cumulative control-plane action counters since the last
    /// provision: ticks run, promotions, demotions, re-admissions,
    /// losses, and the two eviction-hygiene counters (suppressed and
    /// pointless evictions). Cheap — a `Copy` of live counters, no
    /// [`TickReport`] replay.
    pub fn controller_stats(&self) -> ControllerStats {
        self.stats
    }

    /// The declared demand the controller recorded for `stream` (live
    /// streams only — releases forget their demand).
    pub fn demand_of(&self, stream: StreamId) -> Option<StreamDemand> {
        self.demands.get(&stream.0).copied()
    }

    /// Drain the accumulated [`TickReport`]s (automatic ticks fire inside
    /// [`Fabric::step`]; this is how callers observe promotions and learn
    /// replacement handles).
    pub fn take_reports(&mut self) -> Vec<TickReport> {
        std::mem::take(&mut self.reports)
    }

    /// Build the policy view from one telemetry fetch: live,
    /// policy-managed streams joined with their demands and per-window
    /// word deltas.
    fn view_streams(&self, stats: &[StreamStats]) -> Vec<PolicyStream> {
        stats
            .iter()
            .filter(|s| s.active)
            .filter_map(|stats| {
                let demand = *self.demands.get(&stats.id.0)?;
                let (li, ld) = self.last_counts.get(&stats.id.0).copied().unwrap_or((0, 0));
                Some(PolicyStream {
                    window_injected: stats.injected_words - li,
                    window_delivered: stats.delivered_words - ld,
                    stats: stats.clone(),
                    demand,
                })
            })
            .collect()
    }

    /// Promote one spilled stream: probe, admit onto circuits, then
    /// drain the old session loss-free. Returns the hand-over on
    /// success; `None` leaves everything untouched.
    fn promote(&mut self, from: StreamId) -> Option<Promotion> {
        let demand = *self.demands.get(&from.0)?;
        if !self.fabric.can_admit_circuit(&demand) {
            return None;
        }
        let to = self.fabric.admit(&demand).ok()?;
        // Hand over loss-free: in-flight best-effort words still land on
        // the old handle, which a drain keeps valid for collection.
        if self.fabric.release(from, ReleaseMode::Drain).is_err() {
            // The old session vanished under us (caller released it);
            // keep the new one — it serves the recorded demand.
        }
        self.demands.remove(&from.0);
        self.demands.insert(to.0, demand);
        Some(Promotion { from, to })
    }

    /// One pass of the policy loop. Runs automatically every `window`
    /// cycles of [`Fabric::step`]; callable directly for hand-driven
    /// rigs. Returns what changed.
    pub fn tick(&mut self) -> TickReport {
        let mut report = TickReport::default();
        self.stats.ticks += 1;
        self.cooldown.retain(|_, ticks| {
            *ticks -= 1;
            *ticks > 0
        });

        // 1. One telemetry fetch serves the whole tick: the policy view
        //    and the drain-completion scan below (histogram clones are
        //    not free on the stepping path).
        let stats = self.fabric.stream_stats();
        let streams = self.view_streams(&stats);
        let view = PolicyView {
            streams: &streams,
            window: self.window,
        };
        let actions = self.policy.decide(&view);

        // 2. Promotions first: they have first claim on freed lanes.
        let mut demotions = Vec::new();
        for action in actions {
            match action {
                PolicyAction::Promote(id) => {
                    // Only live spilled sessions promote; the probe plus
                    // plane check keep this churn-free.
                    let is_spilled = streams
                        .iter()
                        .any(|s| s.stats.id == id && s.stats.plane == StreamPlane::Spilled);
                    if is_spilled {
                        if let Some(p) = self.promote(id) {
                            self.pending_moves.push((p.from, Some(p.to)));
                            report.promoted.push(p);
                        }
                    }
                }
                PolicyAction::Demote(id) => demotions.push(id),
            }
        }

        // 3. Re-admit demoted demands whose loss-free drain completed —
        //    after promotions, so an evicted stream cannot reclaim its own
        //    lanes ahead of the spilled streams the eviction was for. When
        //    the re-admission *does* land back on circuit lanes (nobody
        //    claimed them), the eviction was pointless: re-evicting the
        //    same demand is suppressed for DEMOTION_COOLDOWN ticks so the
        //    loop cannot flap demote/readmit forever.
        let finished: Vec<StreamId> = self
            .demoting
            .iter()
            .copied()
            .filter(|id| stats.iter().find(|s| s.id == *id).is_none_or(|s| !s.active))
            .collect();
        self.demoting.retain(|id| !finished.contains(id));
        for old in finished {
            let Some(demand) = self.demands.remove(&old.0) else {
                continue;
            };
            match self.fabric.admit(&demand) {
                Ok(new) => {
                    self.demands.insert(new.0, demand);
                    if self
                        .fabric
                        .stream_stats()
                        .iter()
                        .any(|s| s.id == new && s.plane == StreamPlane::Circuit)
                    {
                        self.stats.pointless_evictions += 1;
                        self.cooldown
                            .insert((demand.src.0, demand.dst.0), Self::DEMOTION_COOLDOWN);
                    }
                    self.pending_moves.push((old, Some(new)));
                    report.readmitted.push(Promotion { from: old, to: new });
                }
                Err(_) => report.lost.push(old),
            }
        }

        // 4. Start new demotion drains; their re-admission runs in a
        //    later tick, once the plane reports the drain finalised.
        for id in demotions {
            let Some(demand) = self.demands.get(&id.0).copied() else {
                continue;
            };
            if self.cooldown.contains_key(&(demand.src.0, demand.dst.0)) {
                self.stats.suppressed_evictions += 1;
                continue; // recently evicted for nothing — hold off
            }
            let live = streams
                .iter()
                .any(|s| s.stats.id == id && s.stats.plane == StreamPlane::Circuit);
            if live && self.fabric.release(id, ReleaseMode::Drain).is_ok() {
                self.demoting.push(id);
                self.pending_moves.push((id, None));
                report.demotion_started.push(id);
            }
        }

        // 5. Snapshot counters for the next window's deltas — from the
        //    tick-top fetch when nothing changed, fresh otherwise (the
        //    actions above created or retired sessions).
        let snapshot = |stats: &[StreamStats]| {
            stats
                .iter()
                .map(|s| (s.id.0, (s.injected_words, s.delivered_words)))
                .collect()
        };
        self.last_counts = if report.is_empty() {
            snapshot(&stats)
        } else {
            snapshot(&self.fabric.stream_stats())
        };

        self.stats.promotions += report.promoted.len() as u64;
        self.stats.demotions += report.demotion_started.len() as u64;
        self.stats.readmissions += report.readmitted.len() as u64;
        self.stats.lost += report.lost.len() as u64;
        if !report.is_empty() {
            self.reports.push(report.clone());
        }
        report
    }

    /// Record the demands of a freshly provisioned mapping.
    fn adopt_mapping(&mut self, mapping: &Mapping, served: &[StreamId]) {
        self.demands.clear();
        self.last_counts.clear();
        self.demoting.clear();
        self.reports.clear();
        self.pending_moves.clear();
        self.cooldown.clear();
        self.stats = ControllerStats::default();
        self.since_tick = 0;
        for ms in mapping.streams() {
            if served.contains(&ms.id) {
                self.demands.insert(ms.id.0, StreamDemand::from(&ms));
            }
        }
    }
}

impl Clocked for FabricController {
    fn eval(&mut self) {
        // Like every composite fabric: the full cycle lives in commit().
    }

    fn commit(&mut self) {
        Fabric::step(self);
    }
}

/// Backend label of [`FabricController`] in
/// [`crate::fabric::FabricSnapshot`]s.
pub(crate) const CONTROLLER_BACKEND: &str = "controlled";

/// The boxed state of a controller snapshot: the inner fabric's own
/// snapshot plus the whole control-plane bookkeeping — policy state
/// included, so a restored replay repeats the same decisions.
#[derive(Debug)]
struct ControllerState {
    fabric: FabricSnapshot,
    policy: Box<dyn AdmissionPolicy>,
    window: CycleCount,
    since_tick: CycleCount,
    demands: HashMap<u32, StreamDemand>,
    last_counts: HashMap<u32, (u64, u64)>,
    demoting: Vec<StreamId>,
    reports: Vec<TickReport>,
    pending_moves: Vec<(StreamId, Option<StreamId>)>,
    cooldown: BTreeMap<(usize, usize), u32>,
    stats: ControllerStats,
}

impl Fabric for FabricController {
    fn kind(&self) -> FabricKind {
        self.fabric.kind()
    }

    fn snapshot(&self) -> FabricSnapshot {
        FabricSnapshot::new(
            CONTROLLER_BACKEND,
            ControllerState {
                fabric: self.fabric.snapshot(),
                policy: self.policy.box_clone(),
                window: self.window,
                since_tick: self.since_tick,
                demands: self.demands.clone(),
                last_counts: self.last_counts.clone(),
                demoting: self.demoting.clone(),
                reports: self.reports.clone(),
                pending_moves: self.pending_moves.clone(),
                cooldown: self.cooldown.clone(),
                stats: self.stats,
            },
        )
    }

    fn restore(&mut self, snapshot: &FabricSnapshot) -> Result<(), SnapshotError> {
        let state = snapshot.downcast::<ControllerState>(CONTROLLER_BACKEND)?;
        // Restore the data plane first: if the inner backends mismatch,
        // the whole controller is left untouched.
        self.fabric.restore(&state.fabric)?;
        self.policy = state.policy.box_clone();
        self.window = state.window;
        self.since_tick = state.since_tick;
        self.demands = state.demands.clone();
        self.last_counts = state.last_counts.clone();
        self.demoting = state.demoting.clone();
        self.reports = state.reports.clone();
        self.pending_moves = state.pending_moves.clone();
        self.cooldown = state.cooldown.clone();
        self.stats = state.stats;
        Ok(())
    }

    fn mesh(&self) -> &Mesh {
        self.fabric.mesh()
    }

    fn now(&self) -> Cycle {
        self.fabric.now()
    }

    fn provision(&mut self, mapping: &Mapping) -> Result<Vec<StreamId>, ProvisionError> {
        let served = self.fabric.provision(mapping)?;
        self.adopt_mapping(mapping, &served);
        Ok(served)
    }

    fn provision_with(
        &mut self,
        mapping: &Mapping,
        mode: ProvisionMode,
    ) -> Result<Vec<StreamId>, ProvisionError> {
        let served = self.fabric.provision_with(mapping, mode)?;
        self.adopt_mapping(mapping, &served);
        Ok(served)
    }

    fn inject_stream(&mut self, stream: StreamId, words: &[u16]) -> usize {
        self.fabric.inject_stream(stream, words)
    }

    fn drain_stream(&mut self, stream: StreamId) -> Vec<u16> {
        self.fabric.drain_stream(stream)
    }

    fn stream_stats(&self) -> Vec<StreamStats> {
        self.fabric.stream_stats()
    }

    fn release(&mut self, stream: StreamId, mode: ReleaseMode) -> Result<(), AdmitError> {
        self.fabric.release(stream, mode)?;
        // A caller-released stream leaves the policy's purview: its
        // demand is forgotten, so the policy loop never resurrects it.
        self.demands.remove(&stream.0);
        Ok(())
    }

    fn admit(&mut self, demand: &StreamDemand) -> Result<StreamId, AdmitError> {
        let id = self.fabric.admit(demand)?;
        self.demands.insert(id.0, *demand);
        Ok(id)
    }

    fn can_admit_circuit(&self, demand: &StreamDemand) -> bool {
        self.fabric.can_admit_circuit(demand)
    }

    fn take_handle_moves(&mut self) -> Vec<(StreamId, Option<StreamId>)> {
        std::mem::take(&mut self.pending_moves)
    }

    fn finish_injection(&mut self) {
        self.fabric.finish_injection()
    }

    fn set_parallelism(&mut self, policy: ParPolicy) {
        self.fabric.set_parallelism(policy)
    }

    /// One data-plane cycle, plus the control plane: every `window`
    /// cycles the policy loop runs ([`FabricController::tick`]).
    fn step(&mut self) {
        self.fabric.step();
        self.since_tick += 1;
        if self.since_tick >= self.window {
            self.since_tick = 0;
            self.tick();
        }
    }

    fn activity(&self) -> Vec<ComponentActivity> {
        self.fabric.activity()
    }

    fn clear_activity(&mut self) {
        self.fabric.clear_activity()
    }

    fn is_quiescent(&self) -> bool {
        self.fabric.is_quiescent()
    }

    fn total_overflows(&self) -> u64 {
        self.fabric.total_overflows()
    }

    fn spilled_streams(&self) -> u64 {
        self.fabric.spilled_streams()
    }

    fn spilled_words(&self) -> u64 {
        self.fabric.spilled_words()
    }

    fn area(&self, model: &EnergyModel) -> SquareMicroMeters {
        self.fabric.area(model)
    }

    fn power(&self, model: &EnergyModel, cycles: CycleCount) -> PowerReport {
        self.fabric.power(model, cycles)
    }

    fn total_energy(&self, model: &EnergyModel) -> FemtoJoules {
        self.fabric.total_energy(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ccn::Ccn;
    use crate::hybrid::HybridFabric;
    use crate::soc::Soc;
    use crate::tile::default_tile_kinds;
    use noc_core::params::RouterParams;

    fn oversubscribed() -> (Mapping, Mesh) {
        let mesh = Mesh::new(3, 1);
        let ccn = Ccn::new(mesh, RouterParams::paper(), MegaHertz(25.0));
        let g = noc_apps::synthetic::oversubscribed_line(ccn.lane_capacity());
        let mapping = ccn
            .map_with_spill(&g, &default_tile_kinds(&mesh))
            .expect("spill admission");
        (mapping, mesh)
    }

    fn controlled(policy: Box<dyn AdmissionPolicy>) -> (FabricController, Vec<StreamId>, Mapping) {
        let (mapping, mesh) = oversubscribed();
        let mut ctl =
            FabricController::new(Box::new(HybridFabric::paper(mesh)), policy).with_window(64);
        let ids = ctl.provision(&mapping).unwrap();
        (ctl, ids, mapping)
    }

    #[test]
    fn no_free_lanes_means_no_churn() {
        // With the heavy circuit live, no promotion is feasible: ticks
        // must not create (and kill) probe sessions.
        let (mut ctl, ids, _) = controlled(Box::new(ProfiledPromotion));
        let before = ctl.stream_stats().len();
        ctl.run(512); // several windows
        assert!(ctl.take_reports().is_empty(), "nothing should change");
        assert_eq!(ctl.stream_stats().len(), before, "no session churn");
        assert_eq!(
            ctl.stream_stats()[ids[1].0 as usize].plane,
            StreamPlane::Spilled
        );
    }

    #[test]
    fn promote_on_free_hands_circuit_to_the_spilled_stream() {
        let (mut ctl, ids, _) = controlled(Box::new(ProfiledPromotion));
        // Give the spilled stream some measured history.
        ctl.inject_stream(ids[1], &[1, 2, 3, 4]);
        ctl.finish_injection();
        ctl.run(200);
        assert_eq!(ctl.drain_stream(ids[1]), vec![1, 2, 3, 4]);

        ctl.release(ids[0], ReleaseMode::Drain).unwrap();
        ctl.run(128);
        let reports = ctl.take_reports();
        let promotion = reports
            .iter()
            .flat_map(|t| &t.promoted)
            .next()
            .expect("a tick promoted the spilled stream");
        assert_eq!(promotion.from, ids[1]);
        let stats = ctl.stream_stats();
        let s = stats.iter().find(|s| s.id == promotion.to).unwrap();
        assert_eq!(s.plane, StreamPlane::Circuit);
        assert!(s.reconfig_cycles > 0, "§5.1 wait charged to the promotion");
        // The promoted session carries traffic.
        ctl.inject_stream(promotion.to, &[9, 8, 7]);
        ctl.run(1_000);
        assert_eq!(ctl.drain_stream(promotion.to), vec![9, 8, 7]);
    }

    #[test]
    fn first_fit_promotes_in_id_order() {
        let (mut ctl, ids, _) = controlled(Box::new(FirstFit));
        ctl.release(ids[0], ReleaseMode::Drop).unwrap();
        let report = ctl.tick();
        assert_eq!(report.promoted.len(), 1);
        assert_eq!(report.promoted[0].from, ids[1]);
    }

    #[test]
    fn load_demotion_waits_for_pressure() {
        // A feasible single stream (no spill): even at zero measured
        // load, nothing is demoted — eviction needs a waiting candidate.
        let mesh = Mesh::new(2, 2);
        let ccn = Ccn::new(mesh, RouterParams::paper(), MegaHertz(100.0));
        let mut g = noc_apps::taskgraph::TaskGraph::new("pair");
        let a = g.add_process("a");
        let b = g.add_process("b");
        g.add_edge(
            a,
            b,
            Bandwidth(60.0),
            noc_apps::taskgraph::TrafficShape::Streaming,
            "e",
        );
        let mapping = ccn.map(&g, &default_tile_kinds(&mesh)).unwrap();
        let mut ctl = FabricController::new(
            Box::new(Soc::new(mesh, RouterParams::paper())),
            Box::new(LoadDemotion::new(MegaHertz(100.0), 0.5)),
        )
        .with_window(32);
        ctl.provision(&mapping).unwrap();
        ctl.run(128);
        assert!(ctl.take_reports().is_empty(), "no pressure, no demotion");
    }

    #[test]
    fn load_demotion_evicts_idle_circuit_and_promotion_takes_the_lanes() {
        // Oversubscribed line, idle heavy circuit, busy spilled stream:
        // LoadDemotion (with ProfiledPromotion chained) must evict the
        // idle circuit, promote the spilled stream onto the freed lanes,
        // and re-admit the evicted demand as spillover.
        let policy = LoadDemotion::new(MegaHertz(25.0), 0.25).then(Box::new(ProfiledPromotion));
        let (mut ctl, ids, _) = controlled(Box::new(policy));
        // Only the spilled stream moves words.
        ctl.inject_stream(ids[1], &[1, 2, 3, 4, 5, 6, 7, 8]);
        ctl.finish_injection();
        ctl.run(1_200); // windows: measure, demote, drain, promote, readmit
        let reports = ctl.take_reports();
        let demoted: Vec<_> = reports.iter().flat_map(|t| &t.demotion_started).collect();
        assert_eq!(demoted, vec![&ids[0]], "the idle circuit is evicted");
        let promotion = reports
            .iter()
            .flat_map(|t| &t.promoted)
            .next()
            .expect("the busy spilled stream takes the lanes");
        assert_eq!(promotion.from, ids[1]);
        let readmitted = reports
            .iter()
            .flat_map(|t| &t.readmitted)
            .next()
            .expect("the evicted demand is re-admitted");
        assert_eq!(readmitted.from, ids[0]);
        let stats = ctl.stream_stats();
        assert_eq!(
            stats.iter().find(|s| s.id == promotion.to).unwrap().plane,
            StreamPlane::Circuit
        );
        assert_eq!(
            stats.iter().find(|s| s.id == readmitted.to).unwrap().plane,
            StreamPlane::Spilled,
            "the evicted heavy demand rides best-effort now"
        );
        assert!(reports.iter().all(|t| t.lost.is_empty()));
    }

    #[test]
    fn pointless_eviction_is_suppressed_by_the_cooldown() {
        // LoadDemotion with no chained promotion: the evicted demand's
        // re-admission lands straight back on its circuit (nobody else
        // can use the lanes — the spilled stream needs them while the
        // heavy circuit holds 3 of 4). The cooldown must stop the loop
        // from flapping demote/readmit every window.
        let policy = LoadDemotion::new(MegaHertz(25.0), 0.25);
        let (mut ctl, ids, _) = controlled(Box::new(policy));
        // Keep the spilled stream actively moving words so demotion
        // pressure persists across many windows.
        for _ in 0..40 {
            ctl.inject_stream(ids[1], &[1, 2]);
            ctl.run(64); // one window per iteration
        }
        let reports = ctl.take_reports();
        let demotions = reports
            .iter()
            .map(|t| t.demotion_started.len())
            .sum::<usize>();
        assert!(
            demotions > 0,
            "premise: the idle circuit is evicted at least once"
        );
        assert!(
            demotions <= 40 / FabricController::DEMOTION_COOLDOWN as usize + 1,
            "cooldown must bound pointless evictions: {demotions} in 40 windows"
        );
        // Every readmission went straight back to circuit (pointless),
        // and nothing was ever lost.
        assert!(reports.iter().all(|t| t.lost.is_empty()));
    }

    #[test]
    fn controller_stats_count_the_policy_loop() {
        // The pointless-eviction scenario again, but observed through the
        // fabric-generic counters instead of TickReport replay: ticks,
        // demotions, readmissions, and both eviction-hygiene counters.
        let policy = LoadDemotion::new(MegaHertz(25.0), 0.25);
        let (mut ctl, ids, _) = controlled(Box::new(policy));
        for _ in 0..40 {
            ctl.inject_stream(ids[1], &[1, 2]);
            ctl.run(64); // one window per iteration
        }
        let stats = ctl.controller_stats();
        let reports = ctl.take_reports();
        assert_eq!(stats.ticks, 40);
        assert_eq!(
            stats.demotions as usize,
            reports
                .iter()
                .map(|t| t.demotion_started.len())
                .sum::<usize>()
        );
        assert_eq!(
            stats.readmissions as usize,
            reports.iter().map(|t| t.readmitted.len()).sum::<usize>()
        );
        assert_eq!(stats.promotions, 0);
        assert_eq!(stats.lost, 0);
        assert!(
            stats.pointless_evictions > 0,
            "every re-admission lands back on circuit lanes here"
        );
        assert!(
            stats.suppressed_evictions > 0,
            "the cooldown must have refused repeat demote actions"
        );
    }

    #[test]
    fn hardened_load_demotion_rides_out_bursty_circuits() {
        // The heavy circuit bursts 3 windows on, 1 window off, while the
        // spilled stream keeps the demotion pressure alive. The raw
        // per-window measurement would read the off-window as
        // abandonment; EWMA smoothing plus the minimum dwell must keep
        // the circuit owned throughout — zero demotions, zero flaps.
        let policy = LoadDemotion::hardened(MegaHertz(25.0), 0.25);
        let (mut ctl, ids, _) = controlled(Box::new(policy));
        // ~demand-rate words for the heavy stream during on-windows:
        // 2.9 lanes × 80 Mbit/s at 25 MHz × 16 bit ≈ 0.58 words/cycle.
        let burst: Vec<u16> = (0..37).collect();
        for w in 0..40 {
            ctl.inject_stream(ids[1], &[1, 2]);
            if w % 4 != 3 {
                ctl.inject_stream(ids[0], &burst);
            }
            ctl.run(64); // one window per iteration
        }
        let stats = ctl.controller_stats();
        assert_eq!(stats.ticks, 40);
        assert_eq!(
            stats.demotions, 0,
            "hardened demotion must not flap a bursty circuit"
        );
        assert_eq!(stats.pointless_evictions, 0);
    }

    #[test]
    fn caller_release_removes_the_stream_from_policy_reach() {
        let (mut ctl, ids, _) = controlled(Box::new(FirstFit));
        ctl.release(ids[1], ReleaseMode::Drop).unwrap();
        ctl.release(ids[0], ReleaseMode::Drop).unwrap();
        // Lanes are free and FirstFit is eager — but no managed spilled
        // stream exists, so nothing happens.
        let report = ctl.tick();
        assert!(report.is_empty());
        assert!(ctl.demand_of(ids[1]).is_none());
    }
}
