//! The best-effort (BE) configuration network.
//!
//! The circuit-switched data plane cannot carry configuration: "Because a
//! data-packet cannot include routing information, we cannot serve best
//! effort traffic. We configure the configuration memory via a small
//! additional interface... The configuration interface is connected to the
//! separate BE network" (Section 5.1). The paper aims for a packet-switched
//! BE plane but leaves it future work; here it is modelled as a 16-bit
//! store-and-forward XY packet network with explicit serialisation and
//! per-link contention — the same mechanics as `noc-packet`'s data plane,
//! abstracted to message level so that meshes of hundreds of routers stay
//! cheap to simulate. Message framing uses a byte-exact wire format
//! (`bytes`), so payload sizes — and therefore delivery latencies — are
//! real.
//!
//! The paper's budget: one lane's configuration (a 10-bit word) in under
//! 1 ms, a full router (20 words) within 20 ms. The `reconfig_latency`
//! bench checks both.

use crate::soc::Soc;
use crate::topology::{Mesh, NodeId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use noc_core::config::ConfigWord;
use noc_core::error::ConfigError;
use noc_sim::time::Cycle;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// BE network timing/framing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BeConfig {
    /// Link width in bits (matches the GT plane's 16-bit links).
    pub link_width_bits: u32,
    /// Router traversal latency per hop in cycles (store-and-forward
    /// pipeline: buffer, route, arbitrate).
    pub hop_cycles: u64,
    /// Per-message header bits (destination, length, CRC).
    pub header_bits: u32,
}

impl Default for BeConfig {
    fn default() -> Self {
        BeConfig {
            link_width_bits: 16,
            hop_cycles: 3,
            header_bits: 32,
        }
    }
}

/// A configuration message in flight.
#[derive(Debug, Clone)]
struct InFlight {
    delivery: Cycle,
    dst: NodeId,
    payload: Bytes,
    /// Per-network message id, for [`BeNetwork::cancel`].
    id: u64,
}

/// The store-and-forward BE network.
#[derive(Debug, Clone)]
pub struct BeNetwork {
    mesh: Mesh,
    config: BeConfig,
    /// Earliest cycle each directed link is free again.
    link_free: HashMap<(NodeId, noc_core::lane::Port), Cycle>,
    pending: Vec<InFlight>,
    next_msg_id: u64,
    /// Messages delivered so far.
    pub delivered: u64,
    /// Configuration words applied so far.
    pub words_applied: u64,
}

/// Encode a batch of configuration words into a wire payload: a length
/// prefix followed by one little-endian `u16` per word.
pub fn encode_words(words: &[ConfigWord]) -> Bytes {
    let mut buf = BytesMut::with_capacity(2 + words.len() * 2);
    buf.put_u16_le(words.len() as u16);
    for w in words {
        buf.put_u16_le(w.0);
    }
    buf.freeze()
}

/// Decode a wire payload back into configuration words.
///
/// Returns `None` on truncated or inconsistent payloads (a corrupt BE
/// packet must not crash the configuration plane).
pub fn decode_words(mut payload: Bytes) -> Option<Vec<ConfigWord>> {
    if payload.remaining() < 2 {
        return None;
    }
    let n = payload.get_u16_le() as usize;
    if payload.remaining() != n * 2 {
        return None;
    }
    Some((0..n).map(|_| ConfigWord(payload.get_u16_le())).collect())
}

impl BeNetwork {
    /// An idle BE network over `mesh`.
    pub fn new(mesh: Mesh, config: BeConfig) -> BeNetwork {
        BeNetwork {
            mesh,
            config,
            link_free: HashMap::new(),
            pending: Vec::new(),
            next_msg_id: 0,
            delivered: 0,
            words_applied: 0,
        }
    }

    /// Cycles needed to push one message through one link.
    fn serialisation_cycles(&self, payload: &Bytes) -> u64 {
        let bits = self.config.header_bits as u64 + payload.len() as u64 * 8;
        bits.div_ceil(self.config.link_width_bits as u64)
    }

    /// Send `words` from `from` (usually the CCN's node) to `to`,
    /// entering the network at `now`. Returns the delivery cycle,
    /// accounting for XY hops, per-link serialisation and contention with
    /// earlier messages.
    pub fn send(&mut self, now: Cycle, from: NodeId, to: NodeId, words: &[ConfigWord]) -> Cycle {
        self.send_tracked(now, from, to, words).0
    }

    /// [`BeNetwork::send`], additionally returning the message id so the
    /// sender can [`BeNetwork::cancel`] the delivery later — the CCN
    /// aborting a circuit setup whose stream was released while its
    /// configuration was still in flight.
    pub fn send_tracked(
        &mut self,
        now: Cycle,
        from: NodeId,
        to: NodeId,
        words: &[ConfigWord],
    ) -> (Cycle, u64) {
        let payload = encode_words(words);
        let ser = self.serialisation_cycles(&payload);
        let mut t = now;
        let mut here = from;
        while let Some(port) = self.mesh.xy_step(here, to) {
            let free = self
                .link_free
                .get(&(here, port))
                .copied()
                .unwrap_or(Cycle::ZERO);
            let start = Cycle(t.0.max(free.0));
            let done = start.after(ser);
            self.link_free.insert((here, port), done);
            t = done.after(self.config.hop_cycles);
            here = self.mesh.neighbour(here, port).expect("xy stays in mesh");
        }
        // Local delivery (from == to) still pays one serialisation into
        // the router's configuration interface.
        if from == to {
            t = t.after(ser);
        }
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        self.pending.push(InFlight {
            delivery: t,
            dst: to,
            payload,
            id,
        });
        (t, id)
    }

    /// Void an in-flight message before it is applied. Returns `true`
    /// when the message was still pending (link occupancy already paid is
    /// not refunded — the bits were on the wire either way). Superseding
    /// a configuration that must not land any more — e.g. a released
    /// stream's setup words, whose lanes may already belong to a newer
    /// circuit — is the one legitimate use.
    pub fn cancel(&mut self, id: u64) -> bool {
        match self.pending.iter().position(|m| m.id == id) {
            Some(i) => {
                self.pending.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// Apply every message due by `now` to the SoC's routers. Returns the
    /// number of configuration words applied, or the first configuration
    /// error (corrupt words are surfaced, not dropped silently).
    pub fn deliver_due(&mut self, now: Cycle, soc: &mut Soc) -> Result<usize, ConfigError> {
        let mut applied = 0;
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].delivery <= now {
                let msg = self.pending.swap_remove(i);
                let words =
                    decode_words(msg.payload).ok_or(ConfigError::MalformedWord { raw: 0xFFFF })?;
                for w in words {
                    soc.router_mut(msg.dst).apply_config_word(w)?;
                    applied += 1;
                    self.words_applied += 1;
                }
                self.delivered += 1;
            } else {
                i += 1;
            }
        }
        Ok(applied)
    }

    /// Decode and remove every message due by `now`, returning
    /// `(destination router, configuration words)` batches.
    ///
    /// [`BeNetwork::deliver_due`] applies due words to a borrowed
    /// [`Soc`]; this variant hands them back instead, for callers that
    /// *are* the SoC — the fabric's runtime-admission path
    /// (`Fabric::admit`) sends a new circuit's words over the BE network
    /// and applies them from inside `Soc::step` when they fall due, so
    /// reconfiguration latency (paper Section 5.1 budgets) is charged
    /// cycle-accurately to the admitted stream. Corrupt payloads are
    /// skipped (they cannot be applied), matching `deliver_due`'s refusal
    /// to crash on a bad BE packet.
    pub fn take_due(&mut self, now: Cycle) -> Vec<(NodeId, Vec<ConfigWord>)> {
        let mut due = Vec::new();
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].delivery <= now {
                let msg = self.pending.swap_remove(i);
                if let Some(words) = decode_words(msg.payload) {
                    self.delivered += 1;
                    self.words_applied += words.len() as u64;
                    due.push((msg.dst, words));
                }
            } else {
                i += 1;
            }
        }
        due
    }

    /// Messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// The latest delivery cycle among in-flight messages.
    pub fn last_delivery(&self) -> Option<Cycle> {
        self.pending.iter().map(|m| m.delivery).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::config::ConfigEntry;
    use noc_core::lane::Port;
    use noc_core::params::RouterParams;

    fn word() -> ConfigWord {
        let p = RouterParams::paper();
        let sel = p.foreign_select(Port::East, Port::Tile, 0).unwrap();
        ConfigWord::for_lane(Port::East, 0, ConfigEntry::active(sel), &p).unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let words = vec![word(), ConfigWord(0x155), ConfigWord(0x2AA)];
        let payload = encode_words(&words);
        assert_eq!(decode_words(payload), Some(words));
    }

    #[test]
    fn corrupt_payload_rejected() {
        assert_eq!(decode_words(Bytes::from_static(&[7])), None);
        // Length says 5 words but only 1 present.
        let mut buf = BytesMut::new();
        buf.put_u16_le(5);
        buf.put_u16_le(0x123);
        assert_eq!(decode_words(buf.freeze()), None);
    }

    #[test]
    fn delivery_latency_scales_with_distance() {
        let mesh = Mesh::new(4, 4);
        let mut be = BeNetwork::new(mesh, BeConfig::default());
        let near = be.send(Cycle::ZERO, mesh.node(0, 0), mesh.node(1, 0), &[word()]);
        let far = be.send(Cycle::ZERO, mesh.node(0, 0), mesh.node(3, 3), &[word()]);
        assert!(far > near, "more hops, later delivery");
    }

    #[test]
    fn contention_serialises_messages_on_a_link() {
        let mesh = Mesh::new(2, 1);
        let mut be = BeNetwork::new(mesh, BeConfig::default());
        let a = mesh.node(0, 0);
        let b = mesh.node(1, 0);
        let first = be.send(Cycle::ZERO, a, b, &[word()]);
        let second = be.send(Cycle::ZERO, a, b, &[word()]);
        assert!(second > first, "same link, second message waits");
    }

    #[test]
    fn due_messages_configure_routers() {
        let mesh = Mesh::new(2, 1);
        let mut soc = Soc::new(mesh, RouterParams::paper());
        let mut be = BeNetwork::new(mesh, BeConfig::default());
        let ccn_node = mesh.node(0, 0);
        let target = mesh.node(1, 0);
        let delivery = be.send(Cycle::ZERO, ccn_node, target, &[word()]);

        // Not yet due.
        let before = be.deliver_due(Cycle(delivery.0 - 1), &mut soc).unwrap();
        assert_eq!(before, 0);
        assert!(!soc.router(target).config().entry_of(Port::East, 0).active);

        let applied = be.deliver_due(delivery, &mut soc).unwrap();
        assert_eq!(applied, 1);
        assert!(soc.router(target).config().entry_of(Port::East, 0).active);
        assert_eq!(be.in_flight(), 0);
        assert_eq!(be.delivered, 1);
    }

    #[test]
    fn take_due_hands_back_exactly_the_due_batches() {
        let mesh = Mesh::new(2, 1);
        let mut be = BeNetwork::new(mesh, BeConfig::default());
        let a = mesh.node(0, 0);
        let b = mesh.node(1, 0);
        let first = be.send(Cycle::ZERO, a, b, &[word()]);
        let second = be.send(Cycle::ZERO, a, b, &[word(), word()]);
        assert!(second > first, "same link serialises");

        let early = be.take_due(Cycle(first.0 - 1));
        assert!(early.is_empty());
        let due = be.take_due(first);
        assert_eq!(due, vec![(b, vec![word()])]);
        assert_eq!(be.in_flight(), 1);
        let rest = be.take_due(second);
        assert_eq!(rest, vec![(b, vec![word(), word()])]);
        assert_eq!(be.in_flight(), 0);
        assert_eq!(be.delivered, 2);
        assert_eq!(be.words_applied, 3);
    }

    #[test]
    fn cancelled_message_is_never_applied() {
        let mesh = Mesh::new(2, 1);
        let mut soc = Soc::new(mesh, RouterParams::paper());
        let mut be = BeNetwork::new(mesh, BeConfig::default());
        let a = mesh.node(0, 0);
        let b = mesh.node(1, 0);
        let (delivery, id) = be.send_tracked(Cycle::ZERO, a, b, &[word()]);
        assert!(be.cancel(id), "pending messages cancel");
        assert!(!be.cancel(id), "double cancel is a no-op");
        assert_eq!(be.in_flight(), 0);
        let applied = be.deliver_due(delivery, &mut soc).unwrap();
        assert_eq!(applied, 0, "a cancelled configuration must never land");
        assert!(!soc.router(b).config().entry_of(Port::East, 0).active);
    }

    #[test]
    fn full_router_config_well_under_paper_budget() {
        // 20 words to the far corner of a 4x4 mesh at 25 MHz must land in
        // far less than the paper's 20 ms budget.
        let mesh = Mesh::new(4, 4);
        let mut be = BeNetwork::new(mesh, BeConfig::default());
        let words: Vec<ConfigWord> = (0..20).map(|_| word()).collect();
        let delivery = be.send(Cycle::ZERO, mesh.node(0, 0), mesh.node(3, 3), &words);
        let at_25mhz_ms = delivery.at(noc_sim::units::MegaHertz(25.0)).as_millis();
        assert!(
            at_25mhz_ms < 20.0,
            "full-router reconfig took {at_25mhz_ms} ms"
        );
    }

    #[test]
    fn local_delivery_is_fast_but_not_instant() {
        let mesh = Mesh::new(2, 2);
        let mut be = BeNetwork::new(mesh, BeConfig::default());
        let n = mesh.node(0, 0);
        let t = be.send(Cycle::ZERO, n, n, &[word()]);
        assert!(t > Cycle::ZERO);
        assert!(t.0 < 100);
    }
}
