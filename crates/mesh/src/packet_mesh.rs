//! A mesh of packet-switched routers — the best-effort data plane.
//!
//! The paper dedicates the circuit-switched fabric to guaranteed-throughput
//! traffic and "aims for a packet-switched solution" for the best-effort
//! remainder (Section 5). This module builds that plane out of
//! `noc-packet`'s routers: a 2-D mesh with credit-managed links and
//! uniform-random tile traffic — the "local area network approach where
//! the benchmarks use random traffic patterns" that Section 2 notes is the
//! customary way to evaluate NoC routers. The `be_random_traffic` binary
//! sweeps injection rate against delivery latency on it.

use crate::topology::{Mesh, NodeId};
use noc_packet::flit::{Flit, FlitKind};
use noc_packet::params::{PacketParams, PacketPort};
use noc_packet::router::RouterSlab;
use noc_packet::routing::Coords;
use noc_packet::vc::VcId;
use noc_sim::par::ParPolicy;
use noc_sim::rng::SplitMix64;
use noc_sim::stats::LatencyHistogram;
use noc_sim::time::{Cycle, CycleCount};

/// Map a mesh port to the packet router's port type.
fn pport(port: noc_core::lane::Port) -> PacketPort {
    match port {
        noc_core::lane::Port::Tile => PacketPort::Tile,
        noc_core::lane::Port::North => PacketPort::North,
        noc_core::lane::Port::East => PacketPort::East,
        noc_core::lane::Port::South => PacketPort::South,
        noc_core::lane::Port::West => PacketPort::West,
    }
}

/// Uniform-random best-effort traffic configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomTraffic {
    /// Offered load: probability per node per cycle of generating a packet.
    pub packet_rate: f64,
    /// Payload words per packet (wire flits = words + 1 head).
    pub packet_words: usize,
}

/// The packet-switched mesh under uniform-random traffic.
#[derive(Debug)]
pub struct PacketMesh {
    mesh: Mesh,
    routers: RouterSlab,
    policy: ParPolicy,
    /// Flits awaiting injection at each tile (unbounded source queue; its
    /// depth measures congestion).
    backlog: Vec<std::collections::VecDeque<Flit>>,
    traffic: RandomTraffic,
    rng: SplitMix64,
    now: Cycle,
    /// Packet delivery latency in cycles (head injection → tail delivery):
    /// min/mean/p50/p95/max plus arbitrary quantiles — the same
    /// [`LatencyHistogram`] unit the `Fabric` API's per-stream telemetry
    /// reports, so BE-plane numbers compare directly.
    pub latency: LatencyHistogram,
    /// Packets fully delivered.
    pub packets_delivered: u64,
    /// Packets generated.
    pub packets_generated: u64,
    /// Per-node, per-VC partial-packet timestamp being reassembled (from
    /// the body word carrying the injection cycle) — wormholes on
    /// different VCs interleave at the tile and must not mix.
    rx_inject_ts: Vec<[Option<u16>; 4]>,
}

impl PacketMesh {
    /// A mesh of `params`-configured routers with the given traffic.
    pub fn new(mesh: Mesh, params: PacketParams, traffic: RandomTraffic, seed: u64) -> PacketMesh {
        assert!(traffic.packet_words >= 1, "packets need payload");
        assert!(
            mesh.width <= 16 && mesh.height <= 16,
            "coords are 8-bit nibble pairs in the head flit"
        );
        let coords: Vec<Coords> = mesh
            .iter()
            .map(|n| {
                let (x, y) = mesh.coords(n);
                Coords::new(x as u8, y as u8)
            })
            .collect();
        let routers = RouterSlab::new(params, &coords);
        PacketMesh {
            routers,
            policy: ParPolicy::Auto,
            backlog: mesh.iter().map(|_| Default::default()).collect(),
            traffic,
            rng: SplitMix64::new(seed),
            now: Cycle::ZERO,
            latency: LatencyHistogram::new(),
            packets_delivered: 0,
            packets_generated: 0,
            rx_inject_ts: mesh.iter().map(|_| [None; 4]).collect(),
            mesh,
        }
    }

    /// The mesh topology.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Choose serial or pooled router evaluation (default
    /// [`ParPolicy::Auto`]); results are bit-identical either way.
    pub fn set_parallelism(&mut self, policy: ParPolicy) {
        self.policy = policy;
    }

    /// Sum of all source backlogs — grows without bound past saturation.
    pub fn total_backlog(&self) -> usize {
        self.backlog.iter().map(|q| q.len()).sum()
    }

    /// Generate one packet at `src` to a uniformly random other node. The
    /// first payload word carries the injection cycle for latency
    /// measurement; remaining words are random data.
    fn generate_packet(&mut self, src: NodeId) {
        let nodes = self.mesh.nodes() as u32;
        let mut dst = self.rng.below(nodes) as usize;
        if dst == src.0 {
            dst = (dst + 1) % nodes as usize;
        }
        let (dx, dy) = self.mesh.coords(NodeId(dst));
        let dest = Coords::new(dx as u8, dy as u8);
        let q = &mut self.backlog[src.0];
        q.push_back(Flit::head(dest));
        let ts = self.now.0 as u16;
        for i in 0..self.traffic.packet_words {
            let word = if i == 0 { ts } else { self.rng.next_u16() };
            q.push_back(if i + 1 == self.traffic.packet_words {
                Flit {
                    kind: FlitKind::Tail,
                    payload: word,
                }
            } else {
                Flit {
                    kind: FlitKind::Body,
                    payload: word,
                }
            });
        }
        self.packets_generated += 1;
    }

    /// Advance the whole BE plane one cycle.
    pub fn step(&mut self) {
        // 1. Wire the links: flits forward, credits backward. Outputs are
        //    latched, so sampling before eval is race-free. Neighbours
        //    whose `quiet_links` flag is set drive nothing on any port.
        let vcs = self.routers.params().vcs as u8;
        for node in self.mesh.iter() {
            for port in noc_core::lane::Port::NEIGHBOURS {
                if let Some(nb) = self.mesh.neighbour(node, port) {
                    if self.routers.quiet_links(nb.0) {
                        continue;
                    }
                    let opp = pport(port.opposite().expect("neighbour port"));
                    let p = pport(port);
                    // Data from neighbour's opposite output into our input.
                    if let Some((vc, flit)) = self.routers.link_output(nb.0, opp).flit {
                        self.routers.set_link_input(node.0, p, VcId(vc), flit);
                    }
                    // Credits from the neighbour's input FIFOs back to us.
                    for vc in 0..vcs {
                        if self.routers.credit_output(nb.0, opp, VcId(vc)) {
                            self.routers.set_credit_input(node.0, p, VcId(vc), true);
                        }
                    }
                }
            }
        }

        // 2. Traffic generation and injection.
        for node in self.mesh.iter() {
            if self.rng.chance(self.traffic.packet_rate) {
                self.generate_packet(node);
            }
            if let Some(&flit) = self.backlog[node.0].front() {
                // Pick any VC with room (head flits may start on any VC;
                // body/tail must continue the wormhole's VC — we inject a
                // whole packet on one VC by only switching at heads).
                let vc = VcId(0);
                if self.routers.tile_inject(node.0, vc, flit) {
                    self.backlog[node.0].pop_front();
                }
            }
        }

        // 3. Two-phase clocking of all routers, optionally on the
        //    persistent worker pool (inputs were sampled from latched
        //    outputs in phase 1, so evaluation is order-free).
        self.routers.par_eval(self.policy);
        self.routers.par_commit(self.policy);
        self.now += 1;

        // 4. Tile deliveries: reassemble per VC, record latency at the tail.
        for node in self.mesh.iter() {
            while let Some((vc, flit)) = self.routers.tile_recv(node.0) {
                let slot = &mut self.rx_inject_ts[node.0][vc.index()];
                match flit.kind {
                    FlitKind::Head => {
                        *slot = None;
                    }
                    FlitKind::Body | FlitKind::Tail => {
                        if slot.is_none() {
                            *slot = Some(flit.payload);
                        }
                        if flit.kind == FlitKind::Tail {
                            if let Some(ts) = slot.take() {
                                let lat = (self.now.0 as u16).wrapping_sub(ts);
                                self.latency.record(u64::from(lat));
                            }
                            self.packets_delivered += 1;
                        }
                    }
                }
            }
        }
    }

    /// Run `cycles` cycles.
    pub fn run(&mut self, cycles: CycleCount) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Delivered throughput in packets per node per cycle.
    pub fn throughput(&self) -> f64 {
        if self.now.0 == 0 {
            0.0
        } else {
            self.packets_delivered as f64 / (self.now.0 as f64 * self.mesh.nodes() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traffic(rate: f64) -> RandomTraffic {
        RandomTraffic {
            packet_rate: rate,
            packet_words: 4,
        }
    }

    #[test]
    fn light_load_delivers_everything_quickly() {
        let mut pm = PacketMesh::new(Mesh::new(3, 3), PacketParams::paper(), traffic(0.02), 1);
        pm.run(3000);
        assert!(pm.packets_generated > 100);
        let delivered_frac = pm.packets_delivered as f64 / pm.packets_generated as f64;
        assert!(
            delivered_frac > 0.95,
            "light load should deliver ~all: {delivered_frac:.2}"
        );
        // Latency near the zero-load floor: a few cycles per hop plus
        // serialisation.
        let mean = pm.latency.mean();
        assert!(
            mean < 40.0,
            "mean latency {mean:.1} too high for light load"
        );
    }

    #[test]
    fn latency_rises_with_load() {
        let mean_at = |rate: f64| {
            let mut pm = PacketMesh::new(Mesh::new(3, 3), PacketParams::paper(), traffic(rate), 7);
            pm.run(3000);
            pm.latency.mean()
        };
        let light = mean_at(0.01);
        let heavy = mean_at(0.12);
        assert!(
            heavy > light * 1.3,
            "congestion must show: light {light:.1}, heavy {heavy:.1}"
        );
    }

    #[test]
    fn saturation_grows_backlog() {
        let mut pm = PacketMesh::new(Mesh::new(3, 3), PacketParams::paper(), traffic(0.5), 3);
        pm.run(2000);
        assert!(
            pm.total_backlog() > 100,
            "past saturation the source queues must grow: {}",
            pm.total_backlog()
        );
    }

    #[test]
    fn no_packets_no_latency_samples() {
        let mut pm = PacketMesh::new(Mesh::new(2, 2), PacketParams::paper(), traffic(0.0), 9);
        pm.run(500);
        assert_eq!(pm.packets_generated, 0);
        assert_eq!(pm.latency.count(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| {
            let mut pm =
                PacketMesh::new(Mesh::new(3, 3), PacketParams::paper(), traffic(0.05), seed);
            pm.run(1500);
            (pm.packets_delivered, pm.latency.mean())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
