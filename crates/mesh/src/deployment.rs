//! Application deployment over any [`Fabric`]: task graph in, provisioned
//! and traffic-bound network out — circuit- or packet-switched, through
//! one builder.
//!
//! This replaces the old fixed five-positional-argument deployment entry
//! point (`AppRun::deploy`, now a deprecated shim in the facade crate).
//! The builder owns every knob with a sensible default:
//!
//! ```
//! use noc_apps::taskgraph::{TaskGraph, TrafficShape};
//! use noc_mesh::deployment::Deployment;
//! use noc_mesh::fabric::FabricKind;
//! use noc_sim::par::ParPolicy;
//! use noc_sim::units::{Bandwidth, MegaHertz};
//!
//! let mut graph = TaskGraph::new("demo");
//! let producer = graph.add_process("producer");
//! let consumer = graph.add_process("consumer");
//! graph.add_edge(producer, consumer, Bandwidth(60.0), TrafficShape::Streaming, "feed");
//!
//! let mut dep = Deployment::builder(&graph)
//!     .mesh(4, 4)
//!     .clock(MegaHertz(100.0))
//!     .seed(42)
//!     .fabric(FabricKind::Circuit)
//!     .parallelism(ParPolicy::Auto)  // pooled stepping past the crossover
//!     .build()?;                     // -> Deployment<Box<dyn Fabric>>
//! dep.run(2_000);
//! dep.settle(2_000);
//! let reports = dep.report(&graph);
//! assert!(reports.iter().all(|r| r.delivered_fraction > 0.9));
//! # Ok::<(), noc_mesh::deployment::DeployError>(())
//! ```
//!
//! `build_circuit()` / `build_hybrid()` / `build_deflection()` /
//! `build_packet()` return concretely-typed
//! deployments for code that is itself generic over `F: Fabric`; `build()`
//! erases the backend behind `Box<dyn Fabric>` for runtime selection.
//! Either way the scenario plumbing — CCN mapping, per-route offered-load
//! word streams, delivery accounting, energy readout — is written once,
//! here.

use crate::ccn::{Ccn, Mapping, MappingError};
use crate::chiplet::{ChipletConfig, ChipletFabric};
use crate::controller::{AdmissionPolicy, FabricController, FirstFit};
use crate::deflection::DeflectionFabric;
use crate::fabric::{
    EnergyModel, Fabric, FabricKind, FabricSnapshot, PacketFabric, ProvisionError, SnapshotError,
};
use crate::hybrid::HybridFabric;
use crate::soc::Soc;
use crate::stream::{ProvisionMode, StreamId};
use crate::tile::{default_tile_kinds, TileKind};
use crate::topology::{Mesh, NodeId};
use noc_apps::taskgraph::TaskGraph;
use noc_apps::traffic::{DataPattern, WordStream};
use noc_core::params::RouterParams;
use noc_packet::deflection::DeflectionParams;
use noc_packet::params::PacketParams;
use noc_power::estimator::PowerReport;
use noc_sim::par::ParPolicy;
use noc_sim::time::CycleCount;
use noc_sim::units::{Bandwidth, FemtoJoules, MegaHertz};
use std::fmt;

/// Why a deployment could not be built.
#[derive(Debug, Clone, PartialEq)]
pub enum DeployError {
    /// The CCN rejected the application.
    Mapping(MappingError),
    /// The chosen fabric rejected the mapping.
    Provision(ProvisionError),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::Mapping(e) => write!(f, "mapping failed: {e}"),
            DeployError::Provision(e) => write!(f, "provisioning failed: {e}"),
        }
    }
}

impl std::error::Error for DeployError {}

impl From<MappingError> for DeployError {
    fn from(e: MappingError) -> DeployError {
        DeployError::Mapping(e)
    }
}

impl From<ProvisionError> for DeployError {
    fn from(e: ProvisionError) -> DeployError {
        DeployError::Provision(e)
    }
}

/// Builder for [`Deployment`]s. Construct with [`Deployment::builder`].
#[derive(Debug)]
pub struct DeploymentBuilder<'g> {
    graph: &'g TaskGraph,
    mesh: Mesh,
    router_params: RouterParams,
    packet_params: PacketParams,
    deflection_params: DeflectionParams,
    clock: MegaHertz,
    seed: u64,
    kind: FabricKind,
    packet_words: usize,
    pattern: DataPattern,
    tile_kinds: Option<Vec<TileKind>>,
    spill: bool,
    deflection_spill: bool,
    chiplets: Option<(usize, usize)>,
    parallelism: ParPolicy,
    provisioning: ProvisionMode,
    policy: Option<Box<dyn AdmissionPolicy>>,
    tick_window: CycleCount,
}

impl<'g> DeploymentBuilder<'g> {
    fn new(graph: &'g TaskGraph) -> DeploymentBuilder<'g> {
        DeploymentBuilder {
            graph,
            mesh: Mesh::new(4, 4),
            router_params: RouterParams::paper(),
            packet_params: PacketParams::paper(),
            deflection_params: DeflectionParams::paper(),
            clock: MegaHertz(100.0),
            seed: 0,
            kind: FabricKind::Circuit,
            packet_words: PacketFabric::DEFAULT_PACKET_WORDS,
            pattern: DataPattern::Random,
            tile_kinds: None,
            spill: false,
            deflection_spill: false,
            chiplets: None,
            parallelism: ParPolicy::Auto,
            provisioning: ProvisionMode::Instant,
            policy: None,
            tick_window: FabricController::DEFAULT_WINDOW,
        }
    }

    /// Mesh dimensions (default 4×4).
    pub fn mesh(mut self, width: usize, height: usize) -> Self {
        self.mesh = Mesh::new(width, height);
        self
    }

    /// An explicit mesh topology.
    pub fn mesh_topology(mut self, mesh: Mesh) -> Self {
        self.mesh = mesh;
        self
    }

    /// Circuit-router parameters (default [`RouterParams::paper`]).
    pub fn router_params(mut self, params: RouterParams) -> Self {
        self.router_params = params;
        self
    }

    /// Packet-router parameters (default [`PacketParams::paper`]).
    pub fn packet_params(mut self, params: PacketParams) -> Self {
        self.packet_params = params;
        self
    }

    /// Deflection-router parameters (default [`DeflectionParams::paper`]:
    /// ungated, pure bufferless).
    pub fn deflection_params(mut self, params: DeflectionParams) -> Self {
        self.deflection_params = params;
        self
    }

    /// SoC clock (default 100 MHz).
    pub fn clock(mut self, clock: MegaHertz) -> Self {
        self.clock = clock;
        self
    }

    /// Traffic seed (default 0). The same seed produces bit-identical
    /// payload streams on every backend — the basis of parity testing.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Which backend [`DeploymentBuilder::build`] instantiates (default
    /// circuit-switched). `build_circuit`/`build_packet` ignore this.
    pub fn fabric(mut self, kind: FabricKind) -> Self {
        self.kind = kind;
        self
    }

    /// Payload words per wormhole packet on the packet backend.
    pub fn packet_words(mut self, words: usize) -> Self {
        self.packet_words = words;
        self
    }

    /// Payload data pattern (default random; drives bit-flip energy).
    pub fn pattern(mut self, pattern: DataPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Override the tile inventory (default: the Fig. 1 palette rotation).
    pub fn tile_kinds(mut self, kinds: Vec<TileKind>) -> Self {
        self.tile_kinds = kinds.into();
        self
    }

    /// Spill-tolerant admission (default: strict). Under strict admission
    /// an application the CCN cannot fully put on circuit lanes is a
    /// [`DeployError::Mapping`]; with `spill` the overflow demands land in
    /// [`Mapping::spilled`] instead. Packet and hybrid backends then carry
    /// them; the circuit backend ignores them (no best-effort plane) and
    /// binds no traffic to them — which makes a spill-admitted circuit
    /// deployment the "GT subset only" endpoint of the three-way
    /// comparison. The hybrid backend always uses spill admission.
    pub fn spill(mut self, spill: bool) -> Self {
        self.spill = spill;
        self
    }

    /// Put the hybrid backend's spillover on a **bufferless deflection
    /// plane** ([`HybridFabric::with_deflection_spill`]) instead of the
    /// default buffered packet plane. Uses the builder's
    /// [`DeploymentBuilder::deflection_params`] with clock gating forced
    /// on. Only the hybrid backend reads this knob.
    pub fn deflection_spill(mut self, on: bool) -> Self {
        self.deflection_spill = on;
        self
    }

    /// Split the mesh into a `cw × ch` **chiplet grid**
    /// ([`crate::chiplet::ChipletFabric`]): each chiplet runs its own
    /// backend fabric of the builder's [`DeploymentBuilder::fabric`] kind
    /// over the sub-mesh, stitched through network-on-interposer entry
    /// routers with finite entry lanes. Cross-chiplet streams are split
    /// into boundary segments and queue at the NoI (the wait lands in
    /// their latency histograms); each chiplet is one parallel dispatch
    /// shard under [`DeploymentBuilder::parallelism`]. Only
    /// [`DeploymentBuilder::build`] and
    /// [`DeploymentBuilder::build_controlled`] honour this knob. The mesh
    /// must divide evenly into the grid (checked at build time with a
    /// panic, like `Mesh` bounds).
    ///
    /// ```
    /// use noc_apps::taskgraph::{TaskGraph, TrafficShape};
    /// use noc_mesh::deployment::Deployment;
    /// use noc_mesh::fabric::FabricKind;
    /// use noc_sim::units::Bandwidth;
    ///
    /// let mut graph = TaskGraph::new("sharded");
    /// let a = graph.add_process("a");
    /// let b = graph.add_process("b");
    /// graph.add_edge(a, b, Bandwidth(60.0), TrafficShape::Streaming, "a->b");
    ///
    /// let mut dep = Deployment::builder(&graph)
    ///     .mesh(4, 4)
    ///     .fabric(FabricKind::Hybrid)
    ///     .chiplets(2, 2) // four 2x2 chiplet shards, NoI-stitched
    ///     .build()?;
    /// dep.run(2_000);
    /// dep.settle(2_000);
    /// let reports = dep.report(&graph);
    /// assert!(reports.iter().all(|r| r.delivered_fraction > 0.9));
    /// # Ok::<(), noc_mesh::deployment::DeployError>(())
    /// ```
    pub fn chiplets(mut self, cw: usize, ch: usize) -> Self {
        self.chiplets = Some((cw, ch));
        self
    }

    /// The chiplet fabric this builder's knobs describe.
    fn chiplet_fabric(&self, cw: usize, ch: usize) -> ChipletFabric {
        let config = ChipletConfig {
            router_params: self.router_params,
            packet_params: self.packet_params,
            deflection_params: self.deflection_params,
            packet_words: self.packet_words,
            entry_lanes: ChipletFabric::DEFAULT_ENTRY_LANES,
        };
        ChipletFabric::new(self.mesh, cw, ch, self.kind, config)
    }

    /// The hybrid fabric this builder's knobs describe.
    fn hybrid_fabric(&self) -> HybridFabric {
        if self.deflection_spill {
            HybridFabric::with_deflection_spill(
                self.mesh,
                self.router_params,
                self.deflection_params,
            )
        } else {
            HybridFabric::new(
                self.mesh,
                self.router_params,
                self.packet_params,
                self.packet_words,
            )
        }
    }

    /// Per-cycle evaluation policy for the built fabric (default
    /// [`ParPolicy::Auto`]: serial below the pool crossover, one lane per
    /// CPU past it). Every policy produces bit-identical results — payload,
    /// activity, energy — the knob only trades worker-pool dispatch
    /// overhead against multi-core fan-out ([`noc_sim::par`]). Applies to
    /// every backend: the circuit `Soc` and `PacketFabric` fan their
    /// routers out; the hybrid additionally steps its two planes
    /// concurrently.
    pub fn parallelism(mut self, policy: ParPolicy) -> Self {
        self.parallelism = policy;
        self
    }

    /// How the initial configuration reaches the routers (default
    /// [`ProvisionMode::Instant`]). With [`ProvisionMode::BeDelivered`]
    /// the cold-start configuration rides the BE network exactly like a
    /// runtime `admit` — each circuit stream's §5.1 delivery wait is
    /// charged to its `reconfig_cycles` and to the measured latency of
    /// words offered before the circuit is ready. Backends without router
    /// configuration (the pure packet fabric) are ready immediately in
    /// both modes.
    pub fn provisioning(mut self, mode: ProvisionMode) -> Self {
        self.provisioning = mode;
        self
    }

    /// Wrap the built fabric in a [`FabricController`] running `policy`
    /// (see [`crate::controller`]): the policy loop ticks every
    /// [`DeploymentBuilder::tick_window`] cycles of stepping, promoting
    /// spilled streams onto freed circuits and demoting idle ones through
    /// the ordinary `release`/`admit` verbs. Only
    /// [`DeploymentBuilder::build`] honours this knob — the control plane
    /// is backend-erased by construction; the concretely-typed
    /// `build_circuit`/`build_hybrid`/`build_packet` ignore it.
    pub fn policy(mut self, policy: Box<dyn AdmissionPolicy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Cycles between control-plane ticks when a
    /// [`DeploymentBuilder::policy`] is set (default
    /// [`FabricController::DEFAULT_WINDOW`]).
    pub fn tick_window(mut self, cycles: CycleCount) -> Self {
        self.tick_window = cycles;
        self
    }

    /// Map the application (shared by every backend).
    fn map(&self) -> Result<Mapping, MappingError> {
        self.map_admission(self.spill)
    }

    fn map_admission(&self, spill: bool) -> Result<Mapping, MappingError> {
        let kinds = match &self.tile_kinds {
            Some(k) => k.clone(),
            None => default_tile_kinds(&self.mesh),
        };
        let ccn = Ccn::new(self.mesh, self.router_params, self.clock);
        if spill {
            ccn.map_with_spill(self.graph, &kinds)
        } else {
            ccn.map(self.graph, &kinds)
        }
    }

    /// Pre-check the packet header's coordinate space so the size limit
    /// surfaces as an error, not as `PacketFabric::new`'s panic.
    fn check_packet_mesh(&self) -> Result<(), DeployError> {
        if self.mesh.width > 16 || self.mesh.height > 16 {
            return Err(ProvisionError::MeshTooLarge {
                width: self.mesh.width,
                height: self.mesh.height,
            }
            .into());
        }
        Ok(())
    }

    /// The chiplet variant of [`DeploymentBuilder::check_packet_mesh`]:
    /// packet coordinates only have to cover one chiplet's sub-mesh, which
    /// is exactly how the hierarchy scales packet-coordinate backends past
    /// the 16×16 header limit.
    fn check_chiplet_mesh(&self, cw: usize, ch: usize) -> Result<(), DeployError> {
        if matches!(self.kind, FabricKind::Circuit) {
            return Ok(());
        }
        let inner_w = self.mesh.width / cw.max(1);
        let inner_h = self.mesh.height / ch.max(1);
        if inner_w > 16 || inner_h > 16 {
            return Err(ProvisionError::MeshTooLarge {
                width: inner_w,
                height: inner_h,
            }
            .into());
        }
        Ok(())
    }

    /// Fabric + mapping for a chiplet build ([`DeploymentBuilder::chiplets`]).
    fn build_chiplet_parts(
        &self,
        cw: usize,
        ch: usize,
    ) -> Result<(Box<dyn Fabric>, Mapping), DeployError> {
        self.check_chiplet_mesh(cw, ch)?;
        let mapping = match self.kind {
            FabricKind::Hybrid => self.map_admission(true)?,
            _ => self.map()?,
        };
        Ok((Box::new(self.chiplet_fabric(cw, ch)), mapping))
    }

    /// Deploy onto the backend chosen with [`DeploymentBuilder::fabric`].
    /// This backend-erased path is also where the control plane plugs in:
    /// with a [`DeploymentBuilder::policy`], the fabric is wrapped in a
    /// [`FabricController`] *before* provisioning, so the controller
    /// learns every stream's declared demand and its policy loop runs
    /// inside ordinary [`Fabric::step`]s.
    pub fn build(mut self) -> Result<Deployment<Box<dyn Fabric>>, DeployError> {
        let policy = self.policy.take();
        let (fabric, mapping): (Box<dyn Fabric>, Mapping) = if let Some((cw, ch)) = self.chiplets {
            self.build_chiplet_parts(cw, ch)?
        } else {
            match self.kind {
                FabricKind::Circuit => (
                    Box::new(Soc::new(self.mesh, self.router_params)),
                    self.map()?,
                ),
                FabricKind::Hybrid => {
                    self.check_packet_mesh()?;
                    (Box::new(self.hybrid_fabric()), self.map_admission(true)?)
                }
                FabricKind::Deflection => {
                    self.check_packet_mesh()?;
                    (
                        Box::new(DeflectionFabric::new(self.mesh, self.deflection_params)),
                        self.map()?,
                    )
                }
                FabricKind::Packet => {
                    self.check_packet_mesh()?;
                    (
                        Box::new(PacketFabric::new(
                            self.mesh,
                            self.packet_params,
                            self.packet_words,
                        )),
                        self.map()?,
                    )
                }
            }
        };
        let mut fabric: Box<dyn Fabric> = match policy {
            Some(p) => Box::new(FabricController::new(fabric, p).with_window(self.tick_window)),
            None => fabric,
        };
        fabric.provision_with(&mapping, self.provisioning)?;
        Ok(Deployment::assemble(fabric, mapping, &self))
    }

    /// Deploy like [`DeploymentBuilder::build`], but always wrapped in a
    /// concretely-typed [`FabricController`] — running the configured
    /// [`DeploymentBuilder::policy`], or [`FirstFit`] when none was set.
    /// This is the fleet engine's entry point: a
    /// `Deployment<FabricController>` exposes
    /// [`FabricController::controller_stats`] directly, so per-tenant SLO
    /// reporting needs no downcasting through `Box<dyn Fabric>`.
    pub fn build_controlled(mut self) -> Result<Deployment<FabricController>, DeployError> {
        let policy = self.policy.take().unwrap_or_else(|| Box::new(FirstFit));
        let window = self.tick_window;
        let (fabric, mapping): (Box<dyn Fabric>, Mapping) = if let Some((cw, ch)) = self.chiplets {
            self.build_chiplet_parts(cw, ch)?
        } else {
            match self.kind {
                FabricKind::Circuit => (
                    Box::new(Soc::new(self.mesh, self.router_params)),
                    self.map()?,
                ),
                FabricKind::Hybrid => {
                    self.check_packet_mesh()?;
                    (Box::new(self.hybrid_fabric()), self.map_admission(true)?)
                }
                FabricKind::Deflection => {
                    self.check_packet_mesh()?;
                    (
                        Box::new(DeflectionFabric::new(self.mesh, self.deflection_params)),
                        self.map()?,
                    )
                }
                FabricKind::Packet => {
                    self.check_packet_mesh()?;
                    (
                        Box::new(PacketFabric::new(
                            self.mesh,
                            self.packet_params,
                            self.packet_words,
                        )),
                        self.map()?,
                    )
                }
            }
        };
        let mut controller = FabricController::new(fabric, policy).with_window(window);
        controller.provision_with(&mapping, self.provisioning)?;
        Ok(Deployment::assemble(controller, mapping, &self))
    }

    /// Deploy onto the circuit-switched mesh.
    pub fn build_circuit(self) -> Result<Deployment<Soc>, DeployError> {
        let mapping = self.map()?;
        let mut fabric = Soc::new(self.mesh, self.router_params);
        fabric
            .provision_with(&mapping, self.provisioning)
            .map_err(ProvisionError::from)?;
        Ok(Deployment::assemble(fabric, mapping, &self))
    }

    /// Deploy onto the packet-switched mesh.
    pub fn build_packet(self) -> Result<Deployment<PacketFabric>, DeployError> {
        self.check_packet_mesh()?;
        let mapping = self.map()?;
        let mut fabric = PacketFabric::new(self.mesh, self.packet_params, self.packet_words);
        fabric.provision_with(&mapping, self.provisioning)?;
        Ok(Deployment::assemble(fabric, mapping, &self))
    }

    /// Deploy onto the bufferless deflection mesh.
    pub fn build_deflection(self) -> Result<Deployment<DeflectionFabric>, DeployError> {
        self.check_packet_mesh()?;
        let mapping = self.map()?;
        let mut fabric = DeflectionFabric::new(self.mesh, self.deflection_params);
        fabric.provision_with(&mapping, self.provisioning)?;
        Ok(Deployment::assemble(fabric, mapping, &self))
    }

    /// Deploy onto the hybrid fabric: circuits for the admitted streams, a
    /// clock-gated packet plane for the spillover. Admission is always
    /// spill-tolerant — routing heavy flows onto circuits and the rest
    /// onto the packet plane *is* the hybrid discipline — so applications
    /// the pure circuit backend rejects deploy here.
    pub fn build_hybrid(self) -> Result<Deployment<HybridFabric>, DeployError> {
        self.check_packet_mesh()?;
        let mapping = self.map_admission(true)?;
        let mut fabric = self.hybrid_fabric();
        fabric.provision_with(&mapping, self.provisioning)?;
        Ok(Deployment::assemble(fabric, mapping, &self))
    }
}

/// One stream's offered-load traffic generator — a provisioned circuit or
/// a spilled best-effort demand, addressed by its session handle.
#[derive(Debug, Clone)]
struct RouteTraffic {
    /// The fabric session this traffic drives.
    stream_id: StreamId,
    /// Index into `mapping.routes`, or `mapping.routes.len() + i` for the
    /// `i`-th entry of `mapping.spilled`.
    route: usize,
    dst: NodeId,
    /// Offered payload words per cycle.
    rate: f64,
    /// Workload phase multiplier on `rate` (1.0 = the declared demand).
    /// Fleet workload generators modulate this over time
    /// ([`Deployment::set_load_scale`]) — bursty on/off phases, diurnal
    /// ramps, hotspot flips.
    scale: f64,
    acc: f64,
    stream: WordStream,
    injected: u64,
    /// Words this stream delivered (exact — drained per session).
    delivered: u64,
    /// Rides the best-effort spillover plane instead of a circuit.
    spilled: bool,
    /// Offered load switched off ([`Deployment::stop_traffic`]); the
    /// generator stays registered so deliveries keep being collected.
    stopped: bool,
    /// Offered load suspended by the control plane: the fabric reported
    /// (via [`Fabric::take_handle_moves`]) that this session is being
    /// retired with no replacement named yet; a later move resumes it.
    paused: bool,
    /// Earlier session handles of this generator (retired by control-
    /// plane hand-overs); their residual deliveries are still collected
    /// and credited here.
    retired: Vec<StreamId>,
}

/// Per-stream delivery statistics, the fabric-generic analogue of the old
/// `RouteReport`.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricRouteReport {
    /// The stream's session handle on the deployed fabric.
    pub stream: StreamId,
    /// Stream index: `mapping.routes[route]` when `!spilled`, else
    /// `mapping.spilled[route - mapping.routes.len()]`.
    pub route: usize,
    /// Labels of the task-graph edges sharing the circuit.
    pub labels: Vec<String>,
    /// Required bandwidth (sum over the edges).
    pub required: Bandwidth,
    /// Measured delivered bandwidth over the run — exact per stream,
    /// counted by `drain_stream` (shared destinations no longer blur the
    /// account).
    pub measured: Bandwidth,
    /// `measured` relative to `required`.
    pub delivered_fraction: f64,
    /// Carried on the best-effort spillover plane rather than a circuit.
    pub spilled: bool,
}

/// A checkpoint of a whole [`Deployment`]: the fabric's
/// [`FabricSnapshot`] plus the offered-load generators (word-stream
/// positions, accumulators, phase scales, pause flags) and the delivery
/// ledgers. Produced by [`Deployment::snapshot`]; consumed by
/// [`Deployment::restore`]. The CCN mapping is *not* captured — a
/// snapshot restores into a deployment built from the same spec, which
/// already owns an identical mapping.
#[derive(Debug)]
pub struct DeploymentSnapshot {
    fabric: FabricSnapshot,
    traffic: Vec<RouteTraffic>,
    delivered_at: Vec<u64>,
    payload_at: Vec<Vec<u16>>,
    keep_payload: bool,
    cycles_run: CycleCount,
    offered_cycles: CycleCount,
}

impl DeploymentSnapshot {
    /// The backend label of the captured fabric state.
    pub fn backend(&self) -> &'static str {
        self.fabric.backend()
    }

    /// Cycles of traffic the captured deployment had simulated.
    pub fn cycles_run(&self) -> CycleCount {
        self.cycles_run
    }
}

/// A deployed application: fabric, mapping, and offered-load bindings —
/// generic over the switching discipline.
///
/// The type parameter is unconstrained on the struct itself only so that
/// `Deployment::builder` resolves without naming a backend; every
/// operational method requires `F: Fabric`.
#[derive(Debug)]
pub struct Deployment<F> {
    fabric: F,
    mapping: Mapping,
    clock: MegaHertz,
    traffic: Vec<RouteTraffic>,
    /// Words drained at each node over the deployment's lifetime.
    delivered_at: Vec<u64>,
    /// Delivered payload words per node (kept for parity checks).
    payload_at: Vec<Vec<u16>>,
    keep_payload: bool,
    cycles_run: CycleCount,
    /// Cycles during which traffic was offered (excludes settling), the
    /// window delivery fractions are measured against.
    offered_cycles: CycleCount,
}

impl Deployment<()> {
    /// Start building a deployment of `graph`. (`()` here is only the
    /// resolution anchor; the built deployment carries a real backend.)
    pub fn builder(graph: &TaskGraph) -> DeploymentBuilder<'_> {
        DeploymentBuilder::new(graph)
    }
}

impl<F: Fabric> Deployment<F> {
    fn assemble(mut fabric: F, mapping: Mapping, b: &DeploymentBuilder<'_>) -> Deployment<F> {
        fabric.set_parallelism(b.parallelism);
        let nodes = b.mesh.nodes();
        let mut traffic = Vec::new();
        // One traffic generator per stream session, addressed by the
        // mapping's StreamId numbering (what `provision` handed out).
        // Spilled demands get offered load too — on backends that can
        // carry them. The circuit fabric has no best-effort plane, so a
        // spill-admitted circuit deployment runs the GT subset only
        // (injecting on an unserved session would be a contract
        // violation, not silent loss).
        for ms in mapping.streams() {
            if ms.spilled && fabric.kind() == FabricKind::Circuit {
                continue;
            }
            let idx = match (ms.route, ms.spill) {
                (Some(r), _) => r,
                (None, Some(s)) => mapping.routes.len() + s,
                (None, None) => unreachable!("a stream is a route or a spill"),
            };
            traffic.push(RouteTraffic {
                stream_id: ms.id,
                route: idx,
                dst: ms.dst,
                // Mbit/s over (MHz × 16 bit/word) = words/cycle.
                rate: ms.demand.value() / (b.clock.value() * 16.0),
                scale: 1.0,
                acc: 0.0,
                stream: WordStream::new(b.pattern, b.seed ^ ((idx as u64) << 32)),
                injected: 0,
                delivered: 0,
                spilled: ms.spilled,
                stopped: false,
                paused: false,
                retired: Vec::new(),
            });
        }
        Deployment {
            fabric,
            mapping,
            clock: b.clock,
            traffic,
            delivered_at: vec![0; nodes],
            payload_at: vec![Vec::new(); nodes],
            keep_payload: false,
            cycles_run: 0,
            offered_cycles: 0,
        }
    }

    /// Erase the backend type for runtime-selected deployments.
    pub fn boxed(self) -> Deployment<Box<dyn Fabric>>
    where
        F: 'static,
    {
        Deployment {
            fabric: Box::new(self.fabric) as Box<dyn Fabric>,
            mapping: self.mapping,
            clock: self.clock,
            traffic: self.traffic,
            delivered_at: self.delivered_at,
            payload_at: self.payload_at,
            keep_payload: self.keep_payload,
            cycles_run: self.cycles_run,
            offered_cycles: self.offered_cycles,
        }
    }

    /// Take the fabric and mapping apart (the legacy `AppRun` shim builds
    /// its load-driven bindings on top of a freshly provisioned fabric).
    pub fn into_parts(self) -> (F, Mapping) {
        (self.fabric, self.mapping)
    }

    /// The deployed fabric.
    pub fn fabric(&self) -> &F {
        &self.fabric
    }

    /// Mutable access to the fabric (testbench drives, activity windows).
    pub fn fabric_mut(&mut self) -> &mut F {
        &mut self.fabric
    }

    /// The CCN's mapping.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// The deployment clock.
    pub fn clock(&self) -> MegaHertz {
        self.clock
    }

    /// Cycles of traffic simulated so far.
    pub fn cycles_run(&self) -> CycleCount {
        self.cycles_run
    }

    /// Keep the delivered payload words per node (off by default; needed
    /// for cross-fabric parity assertions).
    pub fn keep_payload(&mut self, on: bool) {
        self.keep_payload = on;
    }

    /// Stop offering load on `stream`. The generator stays registered, so
    /// words already accepted keep being collected and reported — this is
    /// the traffic-side half of a phased retirement: stop the offered
    /// load, then `fabric_mut().release(stream, ReleaseMode::Drain)` for
    /// a loss-free teardown. Unknown handles are ignored.
    pub fn stop_traffic(&mut self, stream: StreamId) {
        if let Some(t) = self.traffic.iter_mut().find(|t| t.stream_id == stream) {
            t.stopped = true;
        }
    }

    /// The [`EnergyModel`] matching this deployment's clock.
    pub fn energy_model(&self) -> EnergyModel {
        EnergyModel::calibrated(self.clock)
    }

    /// Number of offered-load traffic generators (one per stream this
    /// backend serves).
    pub fn traffic_streams(&self) -> usize {
        self.traffic.len()
    }

    /// Scale generator `index`'s offered load: `scale` multiplies the
    /// declared per-cycle rate (1.0 = the demand as mapped, 0.0 = an
    /// off-phase). This is the knob fleet workload profiles turn between
    /// batches — the generator's word stream and delivery accounting are
    /// untouched, so phase changes never disturb payload determinism.
    ///
    /// # Panics
    /// Panics when `index` is out of range or `scale` is negative/NaN.
    pub fn set_load_scale(&mut self, index: usize, scale: f64) {
        assert!(scale >= 0.0, "offered-load scale must be non-negative");
        self.traffic[index].scale = scale;
    }

    /// Checkpoint the whole deployment — the fabric (via
    /// [`Fabric::snapshot`]) plus every traffic generator's position and
    /// the delivery ledgers. Restoring into a deployment built from the
    /// same spec and continuing is bit-identical to never pausing.
    pub fn snapshot(&self) -> DeploymentSnapshot {
        DeploymentSnapshot {
            fabric: self.fabric.snapshot(),
            traffic: self.traffic.clone(),
            delivered_at: self.delivered_at.clone(),
            payload_at: self.payload_at.clone(),
            keep_payload: self.keep_payload,
            cycles_run: self.cycles_run,
            offered_cycles: self.offered_cycles,
        }
    }

    /// Replace this deployment's state with `snapshot`'s. The target must
    /// use the same fabric backend (normally: it was built from the same
    /// spec as the snapshotted deployment); on a backend mismatch the
    /// deployment is left untouched.
    pub fn restore(&mut self, snapshot: &DeploymentSnapshot) -> Result<(), SnapshotError> {
        self.fabric.restore(&snapshot.fabric)?;
        self.traffic = snapshot.traffic.clone();
        self.delivered_at = snapshot.delivered_at.clone();
        self.payload_at = snapshot.payload_at.clone();
        self.keep_payload = snapshot.keep_payload;
        self.cycles_run = snapshot.cycles_run;
        self.offered_cycles = snapshot.offered_cycles;
        Ok(())
    }

    fn collect(&mut self) {
        // Stream-exact collection: each session is drained by handle, so
        // shared destinations attribute every word to the stream that
        // carried it (the per-stream drain accounting the node-level API
        // could only approximate). Handles retired by control-plane
        // hand-overs are still drained — their last words may land after
        // the hand-over and belong to this generator's account.
        for t in &mut self.traffic {
            for id in t.retired.iter().copied().chain([t.stream_id]) {
                let words = self.fabric.drain_stream(id);
                t.delivered += words.len() as u64;
                self.delivered_at[t.dst.0] += words.len() as u64;
                if self.keep_payload {
                    self.payload_at[t.dst.0].extend(words);
                }
            }
        }
    }

    /// Follow the control plane's session hand-overs
    /// ([`Fabric::take_handle_moves`]): a retired handle's generator is
    /// paused, and resumed on its replacement the moment one is named —
    /// so offered-load traffic survives promotions and demotions without
    /// ever injecting on a draining session.
    fn follow_handle_moves(&mut self) {
        for (from, to) in self.fabric.take_handle_moves() {
            let Some(t) = self.traffic.iter_mut().find(|t| t.stream_id == from) else {
                continue;
            };
            match to {
                Some(new) => {
                    t.retired.push(t.stream_id);
                    t.stream_id = new;
                    t.paused = false;
                }
                None => t.paused = true,
            }
        }
    }

    /// Advance `cycles` cycles of offered-load traffic: each route's
    /// word stream is injected at its demanded rate, the fabric steps
    /// once per cycle, and deliveries are collected.
    pub fn run(&mut self, cycles: CycleCount) {
        for _ in 0..cycles {
            for t in &mut self.traffic {
                if t.stopped || t.paused {
                    continue;
                }
                t.acc += t.rate * t.scale;
                while t.acc + 1e-9 >= 1.0 {
                    t.acc -= 1.0;
                    let word = t.stream.next_word();
                    self.fabric.inject_stream(t.stream_id, &[word]);
                    t.injected += 1;
                }
            }
            self.fabric.step();
            self.follow_handle_moves();
        }
        self.cycles_run += cycles;
        self.offered_cycles += cycles;
        self.collect();
    }

    /// Stop injecting and run until deliveries stop arriving (or
    /// `max_cycles` elapse): flushes wormhole staging, then steps in small
    /// chunks until no new words appear for a settle window. Returns the
    /// cycles spent settling.
    pub fn settle(&mut self, max_cycles: CycleCount) -> CycleCount {
        self.fabric.finish_injection();
        const CHUNK: CycleCount = 32;
        const IDLE_CHUNKS: u32 = 8;
        let mut spent = 0;
        let mut idle = 0;
        while spent < max_cycles && idle < IDLE_CHUNKS {
            let before: u64 = self.delivered_at.iter().sum();
            self.fabric.run(CHUNK);
            spent += CHUNK;
            self.follow_handle_moves();
            self.collect();
            let after: u64 = self.delivered_at.iter().sum();
            idle = if after > before { 0 } else { idle + 1 };
        }
        self.cycles_run += spent;
        spent
    }

    /// Total payload words injected across all routes.
    pub fn total_injected(&self) -> u64 {
        self.traffic.iter().map(|t| t.injected).sum()
    }

    /// Total payload words delivered across all nodes.
    pub fn total_delivered(&self) -> u64 {
        self.delivered_at.iter().sum()
    }

    /// Payload lost anywhere in the fabric (0 under correct flow control).
    pub fn total_overflows(&self) -> u64 {
        self.fabric.total_overflows()
    }

    /// The delivered payload at `node`, in arrival order. Empty unless
    /// [`Deployment::keep_payload`] was enabled before running.
    pub fn payload_at(&self, node: NodeId) -> &[u16] {
        &self.payload_at[node.0]
    }

    /// Per-circuit delivery statistics against the task graph's demands.
    pub fn report(&self, graph: &TaskGraph) -> Vec<FabricRouteReport> {
        // Measure against the offered-load window: settling cycles carry
        // no new demand, so counting them would understate delivery.
        let window = self.clock.period() * self.offered_cycles.max(1) as f64;
        self.traffic
            .iter()
            .map(|t| {
                let edges = if t.spilled {
                    &self.mapping.spilled[t.route - self.mapping.routes.len()].edges
                } else {
                    &self.mapping.routes[t.route].edges
                };
                let required = Bandwidth(
                    edges
                        .iter()
                        .map(|&id| graph.edge(id).bandwidth.value())
                        .sum(),
                );
                // Exact per-stream accounting: collect() drains by
                // session handle, so this stream's deliveries are its
                // own even at a shared destination.
                let measured = Bandwidth::from_bits_over(t.delivered * 16, window);
                FabricRouteReport {
                    stream: t.stream_id,
                    route: t.route,
                    labels: edges
                        .iter()
                        .map(|&id| graph.edge(id).label.clone())
                        .collect(),
                    required,
                    measured,
                    delivered_fraction: if required.value() > 0.0 {
                        measured.value() / required.value()
                    } else {
                        1.0
                    },
                    spilled: t.spilled,
                }
            })
            .collect()
    }

    /// Power over the deployment's lifetime at its clock.
    pub fn power(&self, model: &EnergyModel) -> PowerReport {
        self.fabric.power(model, self.cycles_run.max(1))
    }

    /// Total energy dissipated over the deployment's lifetime.
    pub fn total_energy(&self, model: &EnergyModel) -> FemtoJoules {
        self.fabric.total_energy(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_apps::taskgraph::TrafficShape;

    fn pipeline(stages: usize, bw: f64) -> TaskGraph {
        let mut g = TaskGraph::new("pipe");
        let ids: Vec<_> = (0..stages)
            .map(|i| g.add_process(format!("s{i}")))
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], Bandwidth(bw), TrafficShape::Streaming, "e");
        }
        g
    }

    /// The whole point of the redesign: this helper is written once over
    /// `F: Fabric` and the tests below pass both backends through it.
    fn run_generic<F: Fabric>(mut dep: Deployment<F>, graph: &TaskGraph) -> Deployment<F> {
        dep.run(6000);
        dep.settle(4000);
        for r in dep.report(graph) {
            assert!(
                r.delivered_fraction > 0.9,
                "{} under-delivered: {:?}",
                dep.fabric().kind(),
                r
            );
        }
        dep
    }

    #[test]
    fn builder_deploys_pipeline_on_both_backends() {
        let g = pipeline(3, 60.0);
        let circuit = run_generic(
            Deployment::builder(&g)
                .mesh(3, 3)
                .seed(7)
                .build_circuit()
                .unwrap(),
            &g,
        );
        let packet = run_generic(
            Deployment::builder(&g)
                .mesh(3, 3)
                .seed(7)
                .build_packet()
                .unwrap(),
            &g,
        );
        assert!(circuit.total_delivered() > 0);
        // Same seed, same offered words on both backends.
        assert_eq!(circuit.total_injected(), packet.total_injected());
    }

    /// The canonical oversubscribed workload on a 3x1 line at 25 MHz: the
    /// lighter of two converging demands must spill.
    fn oversubscribed() -> TaskGraph {
        let ccn = Ccn::new(Mesh::new(3, 1), RouterParams::paper(), MegaHertz(25.0));
        noc_apps::synthetic::oversubscribed_line(ccn.lane_capacity())
    }

    #[test]
    fn hybrid_backend_builds_and_delivers() {
        let g = pipeline(3, 60.0);
        let dep = run_generic(
            Deployment::builder(&g)
                .mesh(3, 3)
                .seed(7)
                .build_hybrid()
                .unwrap(),
            &g,
        );
        assert!(dep.total_delivered() > 0);
        assert_eq!(dep.fabric().kind(), FabricKind::Hybrid);
        // A feasible pipeline spills nothing.
        assert_eq!(dep.fabric().spilled_streams(), 0);
        assert_eq!(dep.fabric().spilled_words(), 0);
    }

    #[test]
    fn oversubscribed_app_rejected_strictly_but_deploys_on_hybrid() {
        let g = oversubscribed();
        let base = || {
            Deployment::builder(&g)
                .mesh(3, 1)
                .clock(MegaHertz(25.0))
                .seed(5)
        };
        // Strict circuit admission rejects it…
        assert!(matches!(
            base().build_circuit().unwrap_err(),
            DeployError::Mapping(MappingError::NoPath { .. })
        ));
        // …the hybrid carries everything, spilling the light stream…
        let mut hybrid = base().build_hybrid().unwrap();
        hybrid.run(4000);
        hybrid.settle(4000);
        assert_eq!(hybrid.fabric().spilled_streams(), 1);
        assert!(hybrid.fabric().spilled_words() > 0);
        for r in hybrid.report(&g) {
            assert!(r.delivered_fraction > 0.9, "hybrid under-delivered {r:?}");
        }
        // …and the spill-admitted circuit endpoint runs the GT subset only.
        let mut circuit = base().spill(true).build_circuit().unwrap();
        circuit.run(4000);
        circuit.settle(4000);
        let reports = circuit.report(&g);
        assert_eq!(reports.len(), 1, "only the admitted stream is driven");
        assert!(!reports[0].spilled);
        assert!(circuit.total_injected() < hybrid.total_injected());
    }

    #[test]
    fn spilled_streams_get_identical_offered_words_on_packet_and_hybrid() {
        let g = oversubscribed();
        let run = |kind| {
            let mut dep = Deployment::builder(&g)
                .mesh(3, 1)
                .clock(MegaHertz(25.0))
                .seed(42)
                .spill(true)
                .fabric(kind)
                .build()
                .unwrap();
            dep.keep_payload(true);
            dep.run(3000);
            dep.settle(4000);
            dep
        };
        let hybrid = run(FabricKind::Hybrid);
        let packet = run(FabricKind::Packet);
        assert_eq!(hybrid.total_injected(), packet.total_injected());
        // Same words at the shared sink, order modulo plane interleaving.
        let dst = hybrid.mapping().spilled[0].dst;
        let mut h = hybrid.payload_at(dst).to_vec();
        let mut p = packet.payload_at(dst).to_vec();
        h.sort_unstable();
        p.sort_unstable();
        assert!(!h.is_empty());
        assert_eq!(h, p, "same multiset through hybrid and pure packet");
    }

    #[test]
    fn boxed_build_selects_backend_at_runtime() {
        let g = pipeline(2, 40.0);
        for kind in FabricKind::ALL {
            let dep = Deployment::builder(&g)
                .mesh(2, 2)
                .fabric(kind)
                .seed(3)
                .build()
                .unwrap();
            assert_eq!(dep.fabric().kind(), kind);
            let dep = run_generic(dep, &g);
            assert!(dep.total_delivered() > 0, "{kind} delivered nothing");
        }
    }

    #[test]
    fn infeasible_graph_is_reported() {
        // 400 Mbit/s on a 25 MHz SoC (80 Mbit/s lanes): needs 5 lanes.
        let g = pipeline(2, 400.0);
        let err = Deployment::builder(&g)
            .mesh(2, 2)
            .clock(MegaHertz(25.0))
            .build_circuit()
            .unwrap_err();
        assert!(matches!(
            err,
            DeployError::Mapping(MappingError::EdgeTooWide { .. })
        ));
    }

    #[test]
    fn oversized_mesh_is_an_error_not_a_panic() {
        // 17 columns exceed the packet header's 4-bit coordinate space;
        // the builder must report it, not panic in PacketFabric::new.
        let g = pipeline(2, 10.0);
        let err = Deployment::builder(&g)
            .mesh(17, 1)
            .build_packet()
            .unwrap_err();
        assert!(matches!(
            err,
            DeployError::Provision(ProvisionError::MeshTooLarge {
                width: 17,
                height: 1
            })
        ));
    }

    #[test]
    fn parity_of_payload_between_backends() {
        let g = pipeline(2, 80.0);
        let run = |kind| {
            let mut dep = Deployment::builder(&g)
                .mesh(2, 1)
                .seed(11)
                .fabric(kind)
                .build()
                .unwrap();
            dep.keep_payload(true);
            dep.run(3000);
            dep.settle(3000);
            let dst = dep.mapping().routes[0].paths[0].last().unwrap().node;
            dep.payload_at(dst).to_vec()
        };
        let circuit = run(FabricKind::Circuit);
        let packet = run(FabricKind::Packet);
        assert!(!circuit.is_empty());
        assert_eq!(circuit, packet, "identical payload through both fabrics");
    }

    #[test]
    fn deployment_traffic_follows_a_controller_promotion() {
        // The advertised integration: a policy-driven deployment keeps
        // its offered-load traffic alive through a promotion. Retire the
        // GT circuit with the documented phased pattern (stop_traffic +
        // drain release); the controller promotes the spilled stream and
        // the deployment's generator follows the hand-over instead of
        // panicking on the drained handle.
        use crate::controller::ProfiledPromotion;
        use crate::stream::{ReleaseMode, StreamPlane};
        let g = oversubscribed();
        let mut dep = Deployment::builder(&g)
            .mesh(3, 1)
            .clock(MegaHertz(25.0))
            .seed(9)
            .spill(true)
            .fabric(FabricKind::Hybrid)
            .policy(Box::new(ProfiledPromotion))
            .tick_window(64)
            .build()
            .unwrap();
        dep.run(1500);
        let gt = dep.fabric().stream_stats()[0].id;
        dep.stop_traffic(gt);
        dep.fabric_mut()
            .release(gt, ReleaseMode::Drain)
            .expect("live streams drain");
        dep.run(1500); // the tick promotes; traffic must survive it
        dep.settle(3000);
        let stats = dep.fabric().stream_stats();
        let promoted = stats
            .iter()
            .find(|s| s.active && s.plane == StreamPlane::Circuit)
            .expect("the spilled stream was promoted onto the freed lanes");
        assert!(promoted.reconfig_cycles > 0, "§5.1 wait charged");
        assert!(
            promoted.injected_words > 0,
            "the deployment kept offering load on the promoted session"
        );
        // Nothing was lost anywhere: the drained GT stream and both
        // phases of the promoted stream delivered everything accepted.
        for s in &stats {
            assert_eq!(
                s.delivered_words, s.injected_words,
                "{}: words lost across the hand-over",
                s.id
            );
        }
        // And the deployment's ledger agrees (collected across retired
        // and replacement handles alike).
        assert_eq!(dep.total_delivered(), dep.total_injected());
    }

    #[test]
    fn drained_release_blocks_quiescence_until_teardown() {
        // is_quiescent must count a pending drain as outstanding work:
        // stepping "until quiescent" has to carry the deferred teardown
        // over the ack-flush hold, leaving the lanes actually free.
        let g = pipeline(2, 80.0);
        let mut dep = Deployment::builder(&g).mesh(2, 1).seed(3).build().unwrap();
        dep.run(200);
        let id = dep.fabric().stream_stats()[0].id;
        dep.stop_traffic(id);
        dep.fabric_mut()
            .release(id, crate::stream::ReleaseMode::Drain)
            .unwrap();
        let mut guard = 0;
        while !dep.fabric().is_quiescent() {
            dep.fabric_mut().step();
            guard += 1;
            assert!(guard < 5000, "drain never quiesced");
        }
        let stats = &dep.fabric().stream_stats()[0];
        assert!(
            !stats.active,
            "quiescence implies the deferred teardown ran"
        );
        assert_eq!(stats.delivered_words, stats.injected_words);
        let demand = dep.mapping().stream_demand(id).unwrap();
        assert!(
            dep.fabric().can_admit_circuit(&demand),
            "the drained stream's lanes must be free again"
        );
    }

    #[test]
    fn energy_model_matches_clock() {
        let g = pipeline(2, 10.0);
        let dep = Deployment::builder(&g)
            .mesh(2, 2)
            .clock(MegaHertz(50.0))
            .build_circuit()
            .unwrap();
        assert_eq!(dep.energy_model().clock(), MegaHertz(50.0));
    }
}
