//! The bufferless deflection-routed mesh as a fourth [`Fabric`] backend.
//!
//! Where the packet baseline buffers contention in VC FIFOs and the
//! circuit fabric avoids it by construction, [`DeflectionFabric`] absorbs
//! it *spatially*: every router is a mesh of single-flit output registers
//! ([`noc_packet::deflection::DeflectionSlab`]), and a flit that loses
//! oldest-first arbitration for its productive port is misrouted — still
//! moving, never stored. The energy consequence is the point: no FIFO
//! read/write terms anywhere, at the price of per-deflection link and
//! crossbar re-traversals that only appear under contention. The
//! comparison binaries place this backend between the hybrid and the
//! FIFO-buffered packet mesh on the energy frontier.
//!
//! ## Word transport
//!
//! Streams map one payload word to one [`DeflectFlit`]. The stream tag
//! rides the spare coordinate nibbles of the header halfword (the same
//! [`noc_packet::flit::Flit::head_tagged`] encoding the wormhole fabric
//! uses), so the receiving tile attributes every delivered word — and its
//! latency and deflection count — to its session with no side channel.
//! Deflection may reorder flits of one stream (an older flit can be
//! thrown outward while a younger one slips through), so each flit also
//! carries a per-stream sequence number and the receiving side holds a
//! reorder window: words enter the session's egress strictly in injection
//! order, making delivery observably FIFO like every other backend.
//!
//! ## Liveness
//!
//! Arbitration is age-ordered (injection cycle, then tie-broken
//! deterministically), and a router always grants the globally oldest
//! arrival its productive port — so the oldest flit in the network makes
//! strict progress and delivery latency is bounded (the
//! `deflection_livelock` property suite measures the bound). The
//! [`StreamStats::max_deflections`] column reports the worst misroute
//! count any delivered word of the session suffered: exactly 0 on an
//! uncontended stream, positive under hotspot pressure.

use crate::ccn::Mapping;
use crate::fabric::{
    pport, EnergyModel, Fabric, FabricKind, FabricSnapshot, ProvisionError, SnapshotError,
};
use crate::stream::{AdmitError, ReleaseMode, StreamDemand, StreamId, StreamPlane, StreamStats};
use crate::topology::{Mesh, NodeId};
use noc_packet::deflection::{DeflectFlit, DeflectionParams, DeflectionSlab};
use noc_packet::routing::Coords;
use noc_power::area::deflection_router_area;
use noc_sim::activity::ComponentActivity;
use noc_sim::kernel::Clocked;
use noc_sim::par::ParPolicy;
use noc_sim::stats::LatencyHistogram;
use noc_sim::time::Cycle;
use noc_sim::units::SquareMicroMeters;
use std::collections::{BTreeMap, VecDeque};

/// One deflection stream session: destination registration, sequence
/// bookkeeping for the reorder window, and telemetry.
#[derive(Debug, Clone)]
struct DeflectStream {
    id: StreamId,
    src: NodeId,
    dst: NodeId,
    dest: Coords,
    plane: StreamPlane,
    /// Words accepted but not yet released to `egress` (staged, in
    /// flight, or parked out-of-order in the reorder window).
    pending: u64,
    /// Next sequence number to stamp on an injected word.
    next_seq: u64,
    /// Next sequence number `egress` is waiting for.
    expected_seq: u64,
    /// Arrived-out-of-order flits parked until the gap closes.
    reorder: BTreeMap<u64, DeflectFlit>,
    /// In-order delivered words awaiting `drain_stream`.
    egress: Vec<u16>,
    injected: u64,
    delivered: u64,
    latency: LatencyHistogram,
    /// Worst per-word deflection count among delivered words.
    max_deflections: u64,
    active: bool,
    /// Released with [`ReleaseMode::Drain`]: no further injection, slot
    /// retired once every accepted word has been delivered.
    draining: bool,
}

/// The bufferless deflection mesh: one
/// [`noc_packet::deflection::DeflectionSlab`] router per node, age-ordered
/// arbitration instead of buffering, and the same stream-addressed
/// word-level interface as every other backend.
#[derive(Debug, Clone)]
pub struct DeflectionFabric {
    mesh: Mesh,
    params: DeflectionParams,
    policy: ParPolicy,
    routers: DeflectionSlab,
    /// Stream sessions, provision-time then runtime-admitted.
    streams: Vec<DeflectStream>,
    /// StreamId -> index into `streams`.
    by_id: BTreeMap<u32, usize>,
    /// Stream indices mid-drain, polled each cycle for completion.
    draining: Vec<usize>,
    /// Per node: flits awaiting injection at the tile port.
    ingress: Vec<VecDeque<DeflectFlit>>,
    now: Cycle,
    next_id: u32,
    /// Has `provision` run? (`admit` needs a plan to extend.)
    provisioned: bool,
    /// Payload words injected (one flit per word).
    pub words_injected: u64,
    /// Payload words delivered to tiles.
    pub words_delivered: u64,
}

impl DeflectionFabric {
    /// A fabric of `params`-configured deflection routers over `mesh`.
    ///
    /// # Panics
    /// Panics when the mesh exceeds the 16×16 packet coordinate space.
    pub fn new(mesh: Mesh, params: DeflectionParams) -> DeflectionFabric {
        assert!(
            mesh.width <= 16 && mesh.height <= 16,
            "coords are 8-bit nibble pairs in the header halfword"
        );
        let coords: Vec<Coords> = mesh
            .iter()
            .map(|n| {
                let (x, y) = mesh.coords(n);
                Coords::new(x as u8, y as u8)
            })
            .collect();
        let routers = DeflectionSlab::new(params, &coords, (mesh.width, mesh.height));
        DeflectionFabric {
            params,
            policy: ParPolicy::Auto,
            routers,
            streams: Vec::new(),
            by_id: BTreeMap::new(),
            draining: Vec::new(),
            ingress: mesh.iter().map(|_| Default::default()).collect(),
            now: Cycle::ZERO,
            next_id: 0,
            provisioned: false,
            words_injected: 0,
            words_delivered: 0,
            mesh,
        }
    }

    /// The paper-geometry fabric (ungated, pure bufferless) over `mesh`.
    pub fn paper(mesh: Mesh) -> DeflectionFabric {
        DeflectionFabric::new(mesh, DeflectionParams::paper())
    }

    /// The router parameters.
    pub fn params(&self) -> &DeflectionParams {
        &self.params
    }

    /// Choose serial or pooled router evaluation (default
    /// [`ParPolicy::Auto`]). Bit-identical results under every policy.
    pub fn set_parallelism(&mut self, policy: ParPolicy) {
        self.policy = policy;
    }

    /// Total flits staged at tile inputs but not yet injected.
    pub fn ingress_backlog(&self) -> usize {
        self.ingress.iter().map(|q| q.len()).sum()
    }

    /// Total misroutes suffered network-wide since construction — the
    /// contention signal the energy model charges re-traversal for.
    pub fn total_deflections(&self) -> u64 {
        (0..self.routers.len())
            .map(|r| self.routers.deflections(r))
            .sum()
    }

    /// Register one stream session.
    fn register(&mut self, id: StreamId, src: NodeId, dst: NodeId, plane: StreamPlane) {
        let (x, y) = self.mesh.coords(dst);
        let idx = self.streams.len();
        self.by_id.insert(id.0, idx);
        self.streams.push(DeflectStream {
            id,
            src,
            dst,
            dest: Coords::new(x as u8, y as u8),
            plane,
            pending: 0,
            next_seq: 0,
            expected_seq: 0,
            reorder: BTreeMap::new(),
            egress: Vec::new(),
            injected: 0,
            delivered: 0,
            latency: LatencyHistogram::new(),
            max_deflections: 0,
            active: true,
            draining: false,
        });
    }

    /// Is stream `id` still an open session (`true` until a release —
    /// including a [`ReleaseMode::Drain`]'s deferred retirement — has
    /// completed)? `None` for handles this fabric does not serve.
    pub fn stream_is_active(&self, id: StreamId) -> Option<bool> {
        self.by_id.get(&id.0).map(|&si| self.streams[si].active)
    }

    /// One full fabric cycle: wire the links, inject from the ingress
    /// queues, clock every router two-phase, collect and reorder
    /// deliveries.
    fn step_fabric(&mut self) {
        // 1. Wire the links: each node samples its neighbours' latched
        //    output registers. A neighbour whose `quiet_links` flag is set
        //    drives nothing on any port, so sampling it is provably a
        //    no-op — the idle fast path the fleet engine relies on.
        for node in self.mesh.iter() {
            for port in noc_core::lane::Port::NEIGHBOURS {
                if let Some(nb) = self.mesh.neighbour(node, port) {
                    if self.routers.quiet_links(nb.0) {
                        continue;
                    }
                    let opp = pport(port.opposite().expect("neighbour port"));
                    if let Some(flit) = self.routers.link_output(nb.0, opp) {
                        self.routers.set_link_input(node.0, pport(port), flit);
                    }
                }
            }
        }

        // 2. Tile injection: one flit per node per cycle, and only when
        //    the router guarantees a free output for every arrival plus
        //    the injected flit (bufferless admission control — the only
        //    backpressure deflection has).
        for node in self.mesh.iter() {
            if let Some(&flit) = self.ingress[node.0].front() {
                if self.routers.tile_can_inject(node.0) {
                    let accepted = self.routers.tile_inject(node.0, flit);
                    debug_assert!(accepted, "tile_can_inject admitted this flit");
                    self.ingress[node.0].pop_front();
                }
            }
        }

        // 3. Two-phase clocking of all routers, optionally fanned out
        //    over the persistent worker pool.
        self.routers.par_eval(self.policy);
        self.routers.par_commit(self.policy);
        self.now += 1;

        // 4. Tile deliveries. Deflection may reorder a stream's flits, so
        //    an arrived word parks in the session's reorder window and
        //    egress advances only over contiguous sequence numbers —
        //    delivery order observed by `drain_stream` matches injection
        //    order, like every other backend. Latency is recorded at
        //    release (transit plus any reorder wait: the word is not
        //    usable earlier).
        for node in self.mesh.iter() {
            while let Some(flit) = self.routers.tile_recv(node.0) {
                self.words_delivered += 1;
                let si = self
                    .by_id
                    .get(&u32::from(flit.tag))
                    .copied()
                    // Tag numbering restarts at re-provision, so an
                    // in-flight flit could alias a new stream's tag; only
                    // accept words whose destination matches the claimed
                    // session. Unattributable words are dropped (the
                    // conformance contract settles before
                    // re-provisioning).
                    .filter(|&si| self.streams[si].dst == node);
                if let Some(si) = si {
                    let s = &mut self.streams[si];
                    s.reorder.insert(flit.seq, flit);
                    while let Some(f) = s.reorder.remove(&s.expected_seq) {
                        s.expected_seq += 1;
                        s.egress.push(f.payload);
                        s.delivered += 1;
                        s.pending = s.pending.saturating_sub(1);
                        s.latency.record(self.now.0.saturating_sub(f.born));
                        s.max_deflections = s.max_deflections.max(u64::from(f.deflections));
                    }
                }
            }
        }

        // 5. Finalise draining releases: a session retired with
        //    `ReleaseMode::Drain` stays registered until its last
        //    accepted word was released above, then closes loss-free.
        if !self.draining.is_empty() {
            self.draining.retain(|&si| {
                let s = &mut self.streams[si];
                if s.pending == 0 {
                    s.active = false;
                    s.draining = false;
                    false
                } else {
                    true
                }
            });
        }
    }
}

impl Clocked for DeflectionFabric {
    fn eval(&mut self) {
        // Like the other whole-mesh fabrics: the full cycle interleaves
        // wiring and clocking, so the whole step lives in commit().
    }

    fn commit(&mut self) {
        self.step_fabric();
    }
}

/// Backend label of [`DeflectionFabric`] in [`FabricSnapshot`]s.
pub(crate) const DEFLECTION_BACKEND: &str = "deflection-mesh";

impl Fabric for DeflectionFabric {
    fn kind(&self) -> FabricKind {
        FabricKind::Deflection
    }

    fn snapshot(&self) -> FabricSnapshot {
        FabricSnapshot::new(DEFLECTION_BACKEND, self.clone())
    }

    fn restore(&mut self, snapshot: &FabricSnapshot) -> Result<(), SnapshotError> {
        *self = snapshot
            .downcast::<DeflectionFabric>(DEFLECTION_BACKEND)?
            .clone();
        Ok(())
    }

    fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    fn now(&self) -> Cycle {
        self.now
    }

    /// Install the mapping's streams as deflection sessions. Like the
    /// packet fabric, spilled demands are served like any other stream
    /// (keeping their [`StreamPlane::Spilled`] label for telemetry):
    /// deflection needs no lane allocation, only a destination.
    fn provision(&mut self, mapping: &Mapping) -> Result<Vec<StreamId>, ProvisionError> {
        if self.mesh.width > 16 || self.mesh.height > 16 {
            return Err(ProvisionError::MeshTooLarge {
                width: self.mesh.width,
                height: self.mesh.height,
            });
        }
        let streams = mapping.streams();
        if streams.len() > 256 {
            return Err(ProvisionError::TooManyStreams {
                streams: streams.len(),
            });
        }
        self.streams.clear();
        self.by_id.clear();
        self.draining.clear();
        self.next_id = streams.len() as u32;
        self.provisioned = true;
        let mut served = Vec::with_capacity(streams.len());
        for ms in streams {
            let plane = if ms.spilled {
                StreamPlane::Spilled
            } else {
                StreamPlane::Packet
            };
            self.register(ms.id, ms.src, ms.dst, plane);
            served.push(ms.id);
        }
        Ok(served)
    }

    fn inject_stream(&mut self, stream: StreamId, words: &[u16]) -> usize {
        let &si = self
            .by_id
            .get(&stream.0)
            .unwrap_or_else(|| panic!("{stream} is not served by this deflection fabric"));
        assert!(self.streams[si].active, "{stream} was released");
        assert!(
            !self.streams[si].draining,
            "{stream} is draining — admission is stopped"
        );
        let now = self.now.0;
        let s = &mut self.streams[si];
        let (src, dest, tag) = (s.src, s.dest, s.id.0 as u8);
        for &word in words {
            let flit = DeflectFlit::new(dest, tag, word, now, s.next_seq);
            s.next_seq += 1;
            s.pending += 1;
            s.injected += 1;
            self.ingress[src.0].push_back(flit);
        }
        self.words_injected += words.len() as u64;
        words.len()
    }

    fn drain_stream(&mut self, stream: StreamId) -> Vec<u16> {
        let &si = self
            .by_id
            .get(&stream.0)
            .unwrap_or_else(|| panic!("{stream} is not served by this deflection fabric"));
        std::mem::take(&mut self.streams[si].egress)
    }

    fn stream_stats(&self) -> Vec<StreamStats> {
        self.streams
            .iter()
            .map(|s| StreamStats {
                id: s.id,
                src: s.src,
                dst: s.dst,
                plane: s.plane,
                active: s.active,
                injected_words: s.injected,
                delivered_words: s.delivered,
                reconfig_cycles: 0,
                latency: s.latency.clone(),
                max_deflections: s.max_deflections,
            })
            .collect()
    }

    fn release(&mut self, stream: StreamId, mode: ReleaseMode) -> Result<(), AdmitError> {
        let Some(&si) = self.by_id.get(&stream.0) else {
            return Err(AdmitError::UnknownStream(stream));
        };
        if !self.streams[si].active {
            return Err(AdmitError::UnknownStream(stream));
        }
        if self.streams[si].draining {
            return Err(AdmitError::Draining(stream));
        }
        match mode {
            ReleaseMode::Drop => {
                // Discard the staged (never-injected) words: they are the
                // tail of the sequence space, so the reorder window stays
                // contiguous for flits already on the wire — those may
                // still land after the release and are delivered normally.
                let src = self.streams[si].src;
                let tag = stream.0 as u8;
                let before = self.ingress[src.0].len();
                self.ingress[src.0].retain(|f| f.tag != tag);
                let dropped = (before - self.ingress[src.0].len()) as u64;
                let s = &mut self.streams[si];
                s.active = false;
                s.pending = s.pending.saturating_sub(dropped);
            }
            ReleaseMode::Drain => {
                // Every accepted word is already committed to the ingress
                // queue or the network; `step_fabric` retires the session
                // once the last one is released to egress.
                if self.streams[si].pending == 0 {
                    self.streams[si].active = false;
                } else {
                    self.streams[si].draining = true;
                    self.draining.push(si);
                }
            }
        }
        Ok(())
    }

    /// Deflection admits anything the coordinate space can address: a
    /// destination registration, no lanes, no reconfiguration charge.
    fn admit(&mut self, demand: &StreamDemand) -> Result<StreamId, AdmitError> {
        if !self.provisioned {
            return Err(AdmitError::Unsupported("admit needs a provisioned fabric"));
        }
        if self.next_id > 255 {
            return Err(AdmitError::Unsupported(
                "the header halfword's 256-stream tag space is exhausted",
            ));
        }
        let id = StreamId(self.next_id);
        self.next_id += 1;
        self.register(id, demand.src, demand.dst, StreamPlane::Packet);
        Ok(id)
    }

    fn set_parallelism(&mut self, policy: ParPolicy) {
        DeflectionFabric::set_parallelism(self, policy)
    }

    fn step(&mut self) {
        self.step_fabric();
    }

    fn activity(&self) -> Vec<ComponentActivity> {
        let mut merged: Vec<ComponentActivity> = Vec::new();
        for r in 0..self.routers.len() {
            for comp in self.routers.activity(r) {
                match merged.iter_mut().find(|c| c.kind == comp.kind) {
                    Some(existing) => existing.ledger.merge(&comp.ledger),
                    None => merged.push(comp),
                }
            }
        }
        merged
    }

    fn clear_activity(&mut self) {
        self.routers.clear_activity();
    }

    fn is_quiescent(&self) -> bool {
        self.draining.is_empty()
            && self.ingress.iter().all(|q| q.is_empty())
            && (0..self.routers.len())
                .all(|r| self.routers.is_quiescent(r) && self.routers.tile_rx_pending(r) == 0)
    }

    fn area(&self, model: &EnergyModel) -> SquareMicroMeters {
        deflection_router_area(&self.params, model.estimator().tech()).total()
            * self.mesh.nodes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ccn::Ccn;
    use crate::fabric::PacketFabric;
    use crate::tile::default_tile_kinds;
    use noc_apps::taskgraph::{TaskGraph, TrafficShape};
    use noc_core::params::RouterParams;
    use noc_packet::params::PacketParams;
    use noc_sim::units::{Bandwidth, MegaHertz};

    fn two_stage() -> TaskGraph {
        let mut g = TaskGraph::new("pair");
        let a = g.add_process("a");
        let b = g.add_process("b");
        g.add_edge(a, b, Bandwidth(60.0), TrafficShape::Streaming, "a->b");
        g
    }

    fn mapped(mesh: Mesh) -> Mapping {
        let ccn = Ccn::new(mesh, RouterParams::paper(), MegaHertz(100.0));
        ccn.map(&two_stage(), &default_tile_kinds(&mesh))
            .expect("feasible")
    }

    fn fan_in(mesh: Mesh, sources: usize) -> Mapping {
        let mut g = TaskGraph::new("fan-in");
        let sink = g.add_process("sink");
        for i in 0..sources {
            let p = g.add_process(format!("src{i}"));
            g.add_edge(
                p,
                sink,
                Bandwidth(20.0),
                TrafficShape::Streaming,
                format!("s{i}"),
            );
        }
        let ccn = Ccn::new(mesh, RouterParams::paper(), MegaHertz(100.0));
        ccn.map(&g, &default_tile_kinds(&mesh)).expect("feasible")
    }

    fn pump(fabric: &mut DeflectionFabric, mapping: &Mapping, words: &[u16]) -> Vec<u16> {
        let ids = fabric.provision(mapping).expect("provision");
        let id = ids[0];
        fabric.inject_stream(id, words);
        fabric.finish_injection();
        let mut delivered = Vec::new();
        let mut idle = 0;
        let mut guard = 0;
        while idle < 64 {
            fabric.run(16);
            let fresh = fabric.drain_stream(id);
            if fresh.is_empty() {
                idle += 16;
            } else {
                idle = 0;
                delivered.extend(fresh);
            }
            guard += 1;
            assert!(guard < 1000, "stream never settled");
        }
        delivered
    }

    #[test]
    fn delivers_payload_in_order() {
        let mesh = Mesh::new(3, 3);
        let mapping = mapped(mesh);
        let words: Vec<u16> = (0..200).collect();
        let mut fabric = DeflectionFabric::paper(mesh);
        assert_eq!(pump(&mut fabric, &mapping, &words), words);
        assert_eq!(fabric.words_injected, 200);
        assert_eq!(fabric.words_delivered, 200);
    }

    #[test]
    fn uncontended_stream_never_deflects() {
        let mesh = Mesh::new(3, 3);
        let mapping = mapped(mesh);
        let words: Vec<u16> = (100..180).collect();
        let mut fabric = DeflectionFabric::paper(mesh);
        assert_eq!(pump(&mut fabric, &mapping, &words), words);
        assert_eq!(fabric.total_deflections(), 0);
        let stats = &fabric.stream_stats()[0];
        assert_eq!(stats.max_deflections, 0);
        assert_eq!(stats.delivered_words, 80);
        assert_eq!(stats.latency.count(), 80);
    }

    #[test]
    fn contended_fan_in_deflects_but_delivers_everything() {
        let mesh = Mesh::new(3, 3);
        let mapping = fan_in(mesh, 4);
        let mut fabric = DeflectionFabric::paper(mesh);
        let ids = fabric.provision(&mapping).expect("provision");
        assert_eq!(ids.len(), 4);
        for (k, &id) in ids.iter().enumerate() {
            let words: Vec<u16> = (0..64).map(|w| (k as u16) << 8 | w).collect();
            fabric.inject_stream(id, &words);
        }
        fabric.run(4000);
        assert!(fabric.is_quiescent(), "hotspot must drain");
        for (k, &id) in ids.iter().enumerate() {
            let words: Vec<u16> = (0..64).map(|w| (k as u16) << 8 | w).collect();
            assert_eq!(fabric.drain_stream(id), words, "stream {k} in order");
        }
        assert!(
            fabric.total_deflections() > 0,
            "4-into-1 fan-in must contend"
        );
        assert!(fabric.stream_stats().iter().any(|s| s.max_deflections > 0));
    }

    #[test]
    fn matches_packet_fabric_payload() {
        // Same mapping, same words: both best-effort meshes must deliver
        // the identical in-order payload, whatever their internals do.
        let mesh = Mesh::new(4, 4);
        let mapping = mapped(mesh);
        let words: Vec<u16> = (0..300).map(|i| (i * 37) as u16).collect();
        let mut d = DeflectionFabric::paper(mesh);
        let got_d = pump(&mut d, &mapping, &words);
        let mut p = PacketFabric::new(mesh, PacketParams::paper(), 16);
        let ids = p.provision(&mapping).expect("provision");
        p.inject_stream(ids[0], &words);
        p.finish_injection();
        p.run(4000);
        assert_eq!(got_d, p.drain_stream(ids[0]));
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let mesh = Mesh::new(3, 3);
        let mapping = fan_in(mesh, 3);
        let mut fabric = DeflectionFabric::paper(mesh);
        let ids = fabric.provision(&mapping).expect("provision");
        for &id in &ids {
            fabric.inject_stream(id, &(0..48).collect::<Vec<u16>>());
        }
        fabric.run(20); // mid-flight: flits on the wire, ingress nonempty
        let snap = fabric.snapshot();
        let mut reference = fabric.clone();
        reference.run(500);

        let mut restored = DeflectionFabric::paper(mesh);
        restored.restore(&snap).expect("same backend");
        restored.run(500);
        assert_eq!(restored.now(), reference.now());
        assert_eq!(restored.activity(), reference.activity());
        for &id in &ids {
            assert_eq!(restored.drain_stream(id), reference.drain_stream(id));
        }
        assert_eq!(restored.total_deflections(), reference.total_deflections());

        let mut wrong = PacketFabric::new(mesh, PacketParams::paper(), 16);
        assert!(wrong.restore(&snap).is_err(), "backend mismatch refused");
    }

    #[test]
    fn release_drop_discards_staged_words_only() {
        let mesh = Mesh::new(3, 3);
        let mapping = mapped(mesh);
        let mut fabric = DeflectionFabric::paper(mesh);
        let ids = fabric.provision(&mapping).expect("provision");
        fabric.inject_stream(ids[0], &(0..100).collect::<Vec<u16>>());
        fabric.run(10); // some words in flight, many still staged
        fabric.release(ids[0], ReleaseMode::Drop).expect("release");
        assert_eq!(fabric.stream_is_active(ids[0]), Some(false));
        fabric.run(400);
        assert!(fabric.is_quiescent());
        let got = fabric.drain_stream(ids[0]);
        assert!(!got.is_empty(), "in-flight words still land");
        assert!(got.len() < 100, "staged tail was dropped");
        // In-order prefix: exactly words 0..got.len().
        assert_eq!(got, (0..got.len() as u16).collect::<Vec<u16>>());
        assert!(fabric.inject_stream_panics(ids[0]));
    }

    #[test]
    fn release_drain_is_loss_free_and_defers_retirement() {
        let mesh = Mesh::new(3, 3);
        let mapping = mapped(mesh);
        let mut fabric = DeflectionFabric::paper(mesh);
        let ids = fabric.provision(&mapping).expect("provision");
        fabric.inject_stream(ids[0], &(0..100).collect::<Vec<u16>>());
        fabric.run(5);
        fabric.release(ids[0], ReleaseMode::Drain).expect("release");
        assert_eq!(
            fabric.release(ids[0], ReleaseMode::Drain),
            Err(AdmitError::Draining(ids[0]))
        );
        assert_eq!(
            fabric.stream_is_active(ids[0]),
            Some(true),
            "still draining"
        );
        fabric.run(1000);
        assert_eq!(fabric.stream_is_active(ids[0]), Some(false));
        assert_eq!(
            fabric.drain_stream(ids[0]),
            (0..100).collect::<Vec<u16>>(),
            "drain delivers everything accepted"
        );
    }

    #[test]
    fn admit_extends_a_provisioned_plan() {
        let mesh = Mesh::new(3, 3);
        let mapping = mapped(mesh);
        let mut fabric = DeflectionFabric::paper(mesh);
        let demand = StreamDemand {
            src: NodeId(2),
            dst: NodeId(7),
            demand: Bandwidth(10.0),
        };
        assert!(matches!(
            fabric.admit(&demand),
            Err(AdmitError::Unsupported(_))
        ));
        let ids = fabric.provision(&mapping).expect("provision");
        let id = fabric.admit(&demand).expect("admit");
        assert!(!ids.contains(&id));
        fabric.inject_stream(id, &[7, 8, 9]);
        fabric.run(300);
        assert_eq!(fabric.drain_stream(id), vec![7, 8, 9]);
    }

    #[test]
    fn energy_below_ungated_packet_when_uncontended() {
        // The frontier claim at fabric level: with no FIFOs to clock, the
        // deflection mesh undercuts the ungated packet mesh on the same
        // single-stream workload.
        let mesh = Mesh::new(3, 3);
        let mapping = mapped(mesh);
        let words: Vec<u16> = (0..200).collect();
        let mut d = DeflectionFabric::paper(mesh);
        pump(&mut d, &mapping, &words);
        let mut p = PacketFabric::new(mesh, PacketParams::paper(), 16);
        let ids = p.provision(&mapping).expect("provision");
        p.inject_stream(ids[0], &words);
        p.finish_injection();
        p.run(d.now().0);
        let model = EnergyModel::calibrated(MegaHertz(100.0));
        let de = d.total_energy(&model);
        let pe = p.total_energy(&model);
        assert!(de < pe, "deflection {de:?} must undercut packet {pe:?}");
    }

    impl DeflectionFabric {
        /// Test helper: does injecting on `id` panic (released handle)?
        fn inject_stream_panics(&mut self, id: StreamId) -> bool {
            let mut probe = self.clone();
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                probe.inject_stream(id, &[0]);
            }))
            .is_err()
        }
    }
}
