//! # noc-mesh — the multi-tile SoC substrate
//!
//! The paper's router lives inside a heterogeneous multi-tile
//! System-on-Chip (Fig. 1): a regular 2-D mesh of circuit-switched routers,
//! each attached to one processing tile, coordinated by a Central
//! Coordination Node (CCN) that "performs run-time mapping of the newly
//! arrived applications to suitable processing tiles and inter-processing
//! communications to a concatenation of network links" (Section 1.1). This
//! crate builds that whole substrate:
//!
//! * [`topology`] — the mesh: node coordinates, neighbour relations, links.
//! * [`tile`] — processing tiles (GPP/DSP/ASIC/FPGA/DSRH kinds of Fig. 1)
//!   acting as stream sources/sinks through the 16-bit tile interface.
//! * [`soc`] — the assembled SoC: routers + tiles + link wiring, stepped
//!   cycle-by-cycle, serially or in parallel across cores
//!   ([`noc_sim::par`]) — evaluation order cannot matter thanks to the
//!   two-phase clocking contract.
//! * [`ccn`] — the CCN: spatial mapping of Kahn process graphs onto tiles,
//!   lane-path allocation over the mesh (one or more physical lanes per
//!   edge), admission control against guaranteed-throughput budgets, and
//!   configuration-word generation.
//! * [`be`] — the best-effort network that carries configuration data to
//!   the routers' 10-bit configuration interfaces (paper Section 5.1: the
//!   GT crossbar cannot route packets, so configuration rides a separate
//!   BE network).
//! * [`reconfig`] — run-time reconfiguration: stream teardown/setup diffs
//!   delivered over the BE network, with the paper's <20 ms full-router
//!   budget checked.
//! * [`stream`] — **stream sessions**: [`stream::StreamId`] handles,
//!   per-stream telemetry ([`stream::StreamStats`] with a full latency
//!   histogram), and the runtime lifecycle vocabulary
//!   ([`stream::StreamDemand`], [`stream::AdmitError`]) — the paper's
//!   per-connection guarantees as API objects.
//! * [`fabric`] — **the unified backend API**: the [`fabric::Fabric`]
//!   trait over whole networks-on-chip, implemented by the
//!   circuit-switched [`Soc`] and by [`fabric::PacketFabric`], a full mesh
//!   of `noc_packet` wormhole routers. Streams are provisioned, injected,
//!   drained, costed and re-admitted per session; every workload written
//!   against it is automatically a circuit-vs-packet comparison.
//! * [`hybrid`] — **profiled hybrid switching** (arXiv:2005.08478): the
//!   third [`fabric::Fabric`] backend. [`hybrid::HybridFabric`] owns a
//!   circuit-switched [`Soc`] *and* a clock-gated [`fabric::PacketFabric`]
//!   over the same mesh; the CCN's spill-tolerant admission
//!   ([`ccn::Ccn::map_with_spill`]) puts admitted GT streams on circuits
//!   and the overflow on the packet plane, with per-plane spill accounting.
//! * [`deflection`] — **bufferless deflection routing**: the fourth
//!   [`fabric::Fabric`] backend. [`deflection::DeflectionFabric`] is a
//!   mesh of single-flit-register routers
//!   ([`noc_packet::deflection::DeflectionSlab`]) with age-ordered
//!   arbitration — no FIFOs anywhere, contention absorbed as misroutes —
//!   sitting between the hybrid and the buffered packet baseline on the
//!   energy frontier.
//! * [`controller`] — **the control plane**: a policy-driven
//!   [`controller::FabricController`] (itself a [`fabric::Fabric`]) that
//!   runs a pluggable [`controller::AdmissionPolicy`] every window —
//!   profiled promotion of spilled streams onto freed circuits, load-based
//!   demotion of under-used circuits, loss-free draining releases and
//!   BE-delivered cold-start provisioning as one phased lifecycle.
//! * [`chiplet`] — **the chiplet mesh-of-meshes**: a
//!   [`chiplet::ChipletFabric`] splits the aggregate mesh into a `cw × ch`
//!   grid of per-chiplet backend fabrics (any [`fabric::FabricKind`])
//!   stitched through network-on-interposer entry routers with finite entry
//!   lanes; cross-chiplet streams queue at the boundary (wait charged to
//!   their latency histogram) and each chiplet is one parallel dispatch
//!   shard on the shared worker pool.
//! * [`deployment`] — the [`deployment::Deployment`] builder: task graph
//!   in, provisioned and traffic-bound fabric out, generic over the
//!   backend (`build_circuit`/`build_hybrid`/`build_packet`, spill or
//!   strict admission, `.provisioning(ProvisionMode)` cold-start,
//!   `.policy(...)` control plane).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod be;
pub mod ccn;
pub mod chiplet;
pub mod controller;
pub mod deflection;
pub mod deployment;
pub mod fabric;
pub mod hybrid;
pub mod packet_mesh;
pub mod reconfig;
pub mod soc;
pub mod stream;
pub mod tile;
pub mod topology;

pub use be::{BeConfig, BeNetwork};
pub use ccn::{Ccn, MappedStream, Mapping, MappingError, PathHop, SpillReason, SpillStream};
pub use chiplet::{ChipletConfig, ChipletFabric};
pub use controller::{
    AdmissionPolicy, ControllerStats, FabricController, FirstFit, LoadDemotion, PolicyAction,
    PolicyStream, PolicyView, ProfiledPromotion, Promotion, TickReport,
};
pub use deflection::DeflectionFabric;
pub use deployment::{
    DeployError, Deployment, DeploymentBuilder, DeploymentSnapshot, FabricRouteReport,
};
pub use fabric::{
    EnergyModel, Fabric, FabricKind, FabricSnapshot, PacketFabric, ProvisionError, SnapshotError,
};
pub use hybrid::{HybridFabric, SpillPlane, SpillStats};
pub use packet_mesh::{PacketMesh, RandomTraffic};
pub use soc::Soc;
pub use stream::{
    AdmitError, ProvisionMode, ReleaseMode, StreamDemand, StreamId, StreamPlane, StreamStats,
};
pub use tile::{default_tile_kinds, TileKind, TileSlab};
pub use topology::{Mesh, NodeId};
