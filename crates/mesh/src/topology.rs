//! The regular 2-D mesh topology (paper Section 1.1: "we assume a regular
//! two dimensional mesh topology of the routers. Every router is connected
//! with its four neighboring routers via bidirectional point-to-point
//! links and with a single processor tile via the tile interface").
//!
//! Coordinates: `x` grows eastward, `y` grows southward, node `(0,0)` in
//! the north-west corner — matching `noc_packet::routing::Coords`.

use noc_core::lane::Port;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense index of a mesh node (router + tile pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// A `width × height` mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh {
    /// Columns.
    pub width: usize,
    /// Rows.
    pub height: usize,
}

impl Mesh {
    /// A mesh of the given dimensions.
    ///
    /// # Panics
    /// Panics on empty dimensions.
    pub fn new(width: usize, height: usize) -> Mesh {
        assert!(width > 0 && height > 0, "mesh must be non-empty");
        Mesh { width, height }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Node at `(x, y)`.
    ///
    /// # Panics
    /// Panics when out of bounds.
    pub fn node(&self, x: usize, y: usize) -> NodeId {
        assert!(x < self.width && y < self.height, "({x},{y}) outside mesh");
        NodeId(y * self.width + x)
    }

    /// Coordinates of `node`.
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        debug_assert!(node.0 < self.nodes());
        (node.0 % self.width, node.0 / self.width)
    }

    /// The neighbour of `node` through `port`, if the mesh has one there.
    /// `Port::Tile` has no neighbour by definition.
    pub fn neighbour(&self, node: NodeId, port: Port) -> Option<NodeId> {
        let (x, y) = self.coords(node);
        match port {
            Port::Tile => None,
            Port::North => (y > 0).then(|| self.node(x, y - 1)),
            Port::South => (y + 1 < self.height).then(|| self.node(x, y + 1)),
            Port::East => (x + 1 < self.width).then(|| self.node(x + 1, y)),
            Port::West => (x > 0).then(|| self.node(x - 1, y)),
        }
    }

    /// All nodes in index order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes()).map(NodeId)
    }

    /// All directed links as `(from, port, to)` triples.
    pub fn links(&self) -> Vec<(NodeId, Port, NodeId)> {
        let mut out = Vec::new();
        for node in self.iter() {
            for port in Port::NEIGHBOURS {
                if let Some(to) = self.neighbour(node, port) {
                    out.push((node, port, to));
                }
            }
        }
        out
    }

    /// Manhattan distance between two nodes — the minimum hop count.
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// The port leading one XY-routing hop from `from` toward `to`
    /// (X first, then Y); `None` when already there.
    pub fn xy_step(&self, from: NodeId, to: NodeId) -> Option<Port> {
        let (fx, fy) = self.coords(from);
        let (tx, ty) = self.coords(to);
        if tx > fx {
            Some(Port::East)
        } else if tx < fx {
            Some(Port::West)
        } else if ty > fy {
            Some(Port::South)
        } else if ty < fy {
            Some(Port::North)
        } else {
            None
        }
    }
}

impl fmt::Display for Mesh {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} mesh", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_coord_roundtrip() {
        let m = Mesh::new(4, 3);
        for y in 0..3 {
            for x in 0..4 {
                let n = m.node(x, y);
                assert_eq!(m.coords(n), (x, y));
            }
        }
        assert_eq!(m.nodes(), 12);
    }

    #[test]
    fn neighbours_at_corners() {
        let m = Mesh::new(3, 3);
        let nw = m.node(0, 0);
        assert_eq!(m.neighbour(nw, Port::North), None);
        assert_eq!(m.neighbour(nw, Port::West), None);
        assert_eq!(m.neighbour(nw, Port::East), Some(m.node(1, 0)));
        assert_eq!(m.neighbour(nw, Port::South), Some(m.node(0, 1)));
        assert_eq!(m.neighbour(nw, Port::Tile), None);
    }

    #[test]
    fn neighbour_relation_is_symmetric() {
        let m = Mesh::new(4, 4);
        for n in m.iter() {
            for p in Port::NEIGHBOURS {
                if let Some(other) = m.neighbour(n, p) {
                    assert_eq!(
                        m.neighbour(other, p.opposite().unwrap()),
                        Some(n),
                        "link symmetry broken at {n:?} {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn link_count() {
        // A w x h mesh has 2*(w*(h-1) + h*(w-1)) directed links.
        let m = Mesh::new(4, 4);
        assert_eq!(m.links().len(), 2 * (4 * 3 + 4 * 3));
    }

    #[test]
    fn distance_and_xy_walk() {
        let m = Mesh::new(5, 5);
        let a = m.node(0, 4);
        let b = m.node(3, 1);
        assert_eq!(m.distance(a, b), 6);
        // Walking xy_step reaches the target in exactly distance hops.
        let mut cur = a;
        let mut hops = 0;
        while let Some(p) = m.xy_step(cur, b) {
            cur = m.neighbour(cur, p).expect("step stays in mesh");
            hops += 1;
            assert!(hops <= 12);
        }
        assert_eq!(cur, b);
        assert_eq!(hops, 6);
    }

    #[test]
    fn xy_goes_east_west_first() {
        let m = Mesh::new(3, 3);
        assert_eq!(m.xy_step(m.node(0, 0), m.node(2, 2)), Some(Port::East));
        assert_eq!(m.xy_step(m.node(2, 2), m.node(0, 0)), Some(Port::West));
        assert_eq!(m.xy_step(m.node(1, 0), m.node(1, 2)), Some(Port::South));
        assert_eq!(m.xy_step(m.node(1, 1), m.node(1, 1)), None);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_mesh_rejected() {
        let _ = Mesh::new(0, 3);
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn out_of_bounds_node_rejected() {
        let m = Mesh::new(2, 2);
        let _ = m.node(2, 0);
    }
}
