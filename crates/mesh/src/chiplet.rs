//! Chiplet mesh-of-meshes: a hierarchical fabric built from a `cw × ch`
//! grid of independent per-chiplet backend fabrics stitched together by
//! **network-on-interposer (NoI) entry routers**.
//!
//! Each chiplet owns a full backend fabric (`FabricKind`-generic: circuit,
//! hybrid, deflection or packet) over its `iw × ih` sub-mesh. Streams whose
//! endpoints land on the same chiplet are provisioned verbatim on that
//! plane. Cross-chiplet streams are split into a *source segment* (src tile
//! → boundary exit tile), an XY walk over the NoI link graph, and a
//! *destination segment* (boundary entry tile → dst tile); the NoI hop is a
//! contended resource with `entry_lanes` lanes per directed link — one word
//! per lane per cycle, excess words queue and the wait is charged to the
//! stream's `LatencyHistogram`.
//!
//! Stepping shards the chiplet planes onto the shared [`WorkerPool`]: each
//! plane is one contiguous dispatch block, and boundary words are exchanged
//! in a fully sequential post-step phase so results are bit-identical under
//! every [`ParPolicy`].

use std::collections::{BTreeMap, HashMap, VecDeque};

use noc_core::lane::Port;
use noc_core::params::RouterParams;
use noc_packet::deflection::DeflectionParams;
use noc_packet::params::PacketParams;
use noc_power::area::noi_entry_router_area;
use noc_sim::activity::{ActivityClass, ActivityLedger, ComponentActivity, ComponentKind};
use noc_sim::kernel::Clocked;
use noc_sim::par::{ParPolicy, WorkerPool};
use noc_sim::stats::LatencyHistogram;
use noc_sim::time::Cycle;
use noc_sim::units::SquareMicroMeters;

use crate::ccn::{Ccn, EdgeRoute, Mapping, PathHop, SpillReason, SpillStream};
use crate::deflection::DeflectionFabric;
use crate::fabric::{
    EnergyModel, Fabric, FabricKind, FabricSnapshot, PacketFabric, ProvisionError, SnapshotError,
};
use crate::hybrid::HybridFabric;
use crate::soc::Soc;
use crate::stream::{
    AdmitError, ProvisionMode, ReleaseMode, StreamDemand, StreamId, StreamPlane, StreamStats,
};
use crate::topology::{Mesh, NodeId};

/// Snapshot label for [`ChipletFabric`] — public so harnesses holding a
/// `&dyn Fabric` can recognise and downcast a chiplet snapshot.
pub const CHIPLET_BACKEND: &str = "chiplet-mesh";

/// Knobs of the chiplet hierarchy: the per-chiplet backend parameters plus
/// the NoI entry-router sizing.
#[derive(Debug, Clone)]
pub struct ChipletConfig {
    /// Circuit-switched router parameters for circuit/hybrid inner planes.
    pub router_params: RouterParams,
    /// Packet-switched parameters for packet/hybrid inner planes.
    pub packet_params: PacketParams,
    /// Deflection parameters for deflection inner planes.
    pub deflection_params: DeflectionParams,
    /// Words per packet on packet-coordinate planes.
    pub packet_words: usize,
    /// Entry lanes per directed NoI link — the contended boundary resource.
    pub entry_lanes: usize,
}

impl ChipletConfig {
    /// Paper-default backend parameters with the default NoI sizing.
    pub fn paper() -> Self {
        ChipletConfig {
            router_params: RouterParams::paper(),
            packet_params: PacketParams::paper(),
            deflection_params: DeflectionParams::paper(),
            packet_words: PacketFabric::DEFAULT_PACKET_WORDS,
            entry_lanes: ChipletFabric::DEFAULT_ENTRY_LANES,
        }
    }
}

impl Default for ChipletConfig {
    fn default() -> Self {
        ChipletConfig::paper()
    }
}

/// One per-chiplet backend plane, `FabricKind`-generic.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // one plane per chiplet, stepped in place; boxing would
                                     // add a pointer chase to every per-cycle dispatch block
enum InnerPlane {
    Circuit(Soc),
    Hybrid(HybridFabric),
    Deflection(DeflectionFabric),
    Packet(PacketFabric),
}

impl InnerPlane {
    fn build(kind: FabricKind, mesh: Mesh, config: &ChipletConfig) -> InnerPlane {
        match kind {
            FabricKind::Circuit => InnerPlane::Circuit(Soc::new(mesh, config.router_params)),
            FabricKind::Hybrid => InnerPlane::Hybrid(HybridFabric::new(
                mesh,
                config.router_params,
                config.packet_params,
                config.packet_words,
            )),
            FabricKind::Deflection => {
                InnerPlane::Deflection(DeflectionFabric::new(mesh, config.deflection_params))
            }
            FabricKind::Packet => InnerPlane::Packet(PacketFabric::new(
                mesh,
                config.packet_params,
                config.packet_words,
            )),
        }
    }

    fn as_fabric(&self) -> &dyn Fabric {
        match self {
            InnerPlane::Circuit(f) => f,
            InnerPlane::Hybrid(f) => f,
            InnerPlane::Deflection(f) => f,
            InnerPlane::Packet(f) => f,
        }
    }

    fn as_fabric_mut(&mut self) -> &mut dyn Fabric {
        match self {
            InnerPlane::Circuit(f) => f,
            InnerPlane::Hybrid(f) => f,
            InnerPlane::Deflection(f) => f,
            InnerPlane::Packet(f) => f,
        }
    }

    /// Liveness probe for drain tracking (`None` when the id is unknown).
    fn stream_is_active(&self, id: StreamId) -> Option<bool> {
        match self {
            InnerPlane::Circuit(f) => f.stream_is_active(id),
            InnerPlane::Hybrid(f) => f.stream_is_active(id),
            InnerPlane::Deflection(f) => f.stream_is_active(id),
            InnerPlane::Packet(f) => f.stream_is_active(id),
        }
    }
}

/// One word in flight on the NoI: stream tag, payload, and the cycle it
/// entered the current link's staging buffer (words advance one link per
/// cycle, so a word entered at cycle `t` is eligible to pop at `t + 1`).
#[derive(Debug, Clone, Copy)]
struct NoiWord {
    stream: u32,
    word: u16,
    entered: u64,
}

/// One directed NoI link between two adjacent chiplets, with its finite
/// entry lanes and the staging queue in front of them.
#[derive(Debug, Clone)]
struct NoiLink {
    /// Source chiplet index in the grid.
    from: usize,
    /// Destination chiplet index.
    to: usize,
    /// Streams currently holding a reserved entry lane.
    reserved: usize,
    /// Words staged at this link's entry router.
    queue: VecDeque<NoiWord>,
}

/// Where a provisioned stream lives in the hierarchy.
#[derive(Debug, Clone)]
enum ChipletSlot {
    /// Both endpoints on one chiplet: forwarded verbatim to that plane.
    Intra { chip: usize, local: StreamId },
    /// Endpoints on different chiplets: source segment, NoI walk,
    /// destination segment. A `None` segment is degenerate (the endpoint
    /// tile *is* the boundary tile) and words bypass that inner plane.
    Cross {
        src_chip: usize,
        dst_chip: usize,
        src_seg: Option<StreamId>,
        dst_seg: Option<StreamId>,
        links: Vec<usize>,
    },
}

/// Per-stream bookkeeping at the chiplet level.
#[derive(Debug, Clone)]
struct ChipletStream {
    id: u32,
    slot: ChipletSlot,
    src: NodeId,
    dst: NodeId,
    active: bool,
    draining: bool,
    /// Whether the destination segment's drain release has been issued.
    dst_drain_issued: bool,
    injected: u64,
    delivered: u64,
    /// NoI configuration cycles charged at `BeDelivered` provisioning.
    noi_reconfig: u64,
    /// First cycle at which the NoI path accepts words.
    ready_at: u64,
    /// Total cycles words of this stream spent queued at NoI entry routers.
    noi_wait: u64,
    /// Words currently somewhere on the NoI walk.
    in_flight: u64,
    /// Injection timestamps of words not yet delivered, in order.
    pending_ts: VecDeque<u64>,
    /// Words waiting to enter the first NoI link (degenerate source
    /// segment, or flushed out of the source plane).
    noi_ingress: VecDeque<u16>,
    /// Delivered payload awaiting `drain_stream`.
    egress: Vec<u16>,
    latency: LatencyHistogram,
}

impl ChipletStream {
    fn cross_links(&self) -> &[usize] {
        match &self.slot {
            ChipletSlot::Cross { links, .. } => links,
            ChipletSlot::Intra { .. } => &[],
        }
    }
}

/// How a stream segment resolved during hierarchical provisioning.
enum SegOutcome {
    /// Local stream admitted/spilled on the chiplet plane.
    Stream,
    /// Degenerate: endpoint tile is the boundary tile, no local stream.
    Degenerate,
    /// Could not be served (circuit inner plane out of lanes).
    Unserved,
}

/// What a pending local-plane binding refers to, in the order local ids
/// come back from `provision_with`.
#[derive(Debug, Clone, Copy)]
enum SegRef {
    /// Intra stream (global id): bind the local id to the `Intra` slot.
    Intra(u32),
    /// Source segment of cross stream (global id).
    Src(u32),
    /// Destination segment of cross stream (global id).
    Dst(u32),
}

/// Per-chiplet mapping under construction during `provision_with`.
#[derive(Debug, Default)]
struct ChipPlan {
    placement: Vec<(noc_apps::taskgraph::ProcessId, NodeId)>,
    routes: Vec<EdgeRoute>,
    spilled: Vec<SpillStream>,
    /// Bindings for streams that become *routes* on this plane, in push order.
    route_refs: Vec<SegRef>,
    /// Bindings for streams that become *spills* on this plane, in push order.
    spill_refs: Vec<SegRef>,
}

/// A `cw × ch` grid of per-chiplet backend fabrics joined by NoI entry
/// routers. Implements [`Fabric`] so every layer above (deployments,
/// controllers, fleets, benches) works unchanged.
#[derive(Debug, Clone)]
pub struct ChipletFabric {
    mesh: Mesh,
    grid: Mesh,
    inner_mesh: Mesh,
    inner_kind: FabricKind,
    config: ChipletConfig,
    planes: Vec<InnerPlane>,
    links: Vec<NoiLink>,
    link_index: BTreeMap<(usize, usize), usize>,
    table: Vec<ChipletStream>,
    by_id: BTreeMap<u32, usize>,
    draining: Vec<usize>,
    policy: ParPolicy,
    now: Cycle,
    next_id: u32,
    noi_link_activity: ActivityLedger,
    noi_buffer_activity: ActivityLedger,
    noi_arbiter_activity: ActivityLedger,
}

impl ChipletFabric {
    /// Default entry lanes per directed NoI link.
    pub const DEFAULT_ENTRY_LANES: usize = 4;

    /// Configuration cycles charged per NoI link on a `BeDelivered`
    /// provision or a runtime `admit_stream` of a cross-chiplet stream:
    /// the entry router's lane table is written over the die-to-die
    /// sideband, one link at a time.
    pub const NOI_CONFIG_CYCLES_PER_LINK: u64 = 4;

    /// Build a chiplet fabric over `mesh` split into a `cw × ch` grid of
    /// identical inner planes of `kind`.
    ///
    /// # Panics
    /// Panics when the grid is empty or `mesh` does not divide evenly
    /// into `cw × ch` chiplets.
    pub fn new(mesh: Mesh, cw: usize, ch: usize, kind: FabricKind, config: ChipletConfig) -> Self {
        assert!(cw >= 1 && ch >= 1, "chiplet grid must be at least 1x1");
        assert!(
            mesh.width.is_multiple_of(cw) && mesh.height.is_multiple_of(ch),
            "mesh {}x{} does not divide into a {}x{} chiplet grid",
            mesh.width,
            mesh.height,
            cw,
            ch,
        );
        assert!(
            config.entry_lanes >= 1,
            "NoI links need at least one entry lane"
        );
        let grid = Mesh::new(cw, ch);
        let inner_mesh = Mesh::new(mesh.width / cw, mesh.height / ch);
        let planes = (0..grid.nodes())
            .map(|_| InnerPlane::build(kind, inner_mesh, &config))
            .collect();
        let mut links = Vec::new();
        let mut link_index = BTreeMap::new();
        for (from, _, to) in grid.links() {
            link_index.insert((from.0, to.0), links.len());
            links.push(NoiLink {
                from: from.0,
                to: to.0,
                reserved: 0,
                queue: VecDeque::new(),
            });
        }
        ChipletFabric {
            mesh,
            grid,
            inner_mesh,
            inner_kind: kind,
            config,
            planes,
            links,
            link_index,
            table: Vec::new(),
            by_id: BTreeMap::new(),
            draining: Vec::new(),
            policy: ParPolicy::Sequential,
            now: Cycle(0),
            next_id: 0,
            noi_link_activity: ActivityLedger::default(),
            noi_buffer_activity: ActivityLedger::default(),
            noi_arbiter_activity: ActivityLedger::default(),
        }
    }

    /// Paper-default chiplet fabric.
    pub fn paper(mesh: Mesh, cw: usize, ch: usize, kind: FabricKind) -> Self {
        ChipletFabric::new(mesh, cw, ch, kind, ChipletConfig::paper())
    }

    /// The chiplet grid (`cw × ch`).
    pub fn grid(&self) -> Mesh {
        self.grid
    }

    /// The per-chiplet sub-mesh.
    pub fn inner_mesh(&self) -> Mesh {
        self.inner_mesh
    }

    /// Number of chiplet planes (= parallel shards).
    pub fn chiplets(&self) -> usize {
        self.planes.len()
    }

    /// Entry lanes per directed NoI link.
    pub fn entry_lanes(&self) -> usize {
        self.config.entry_lanes
    }

    /// Number of directed NoI links in the grid.
    pub fn noi_links(&self) -> usize {
        self.links.len()
    }

    /// Total cycles stream words spent queued at NoI entry routers.
    pub fn noi_wait_cycles(&self) -> u64 {
        self.table.iter().map(|s| s.noi_wait).sum()
    }

    /// Number of live cross-chiplet streams.
    pub fn cross_streams(&self) -> usize {
        self.table
            .iter()
            .filter(|s| s.active && matches!(s.slot, ChipletSlot::Cross { .. }))
            .count()
    }

    // -- geometry -----------------------------------------------------------

    /// Chiplet grid index owning aggregate `node`.
    pub fn chip_of(&self, node: NodeId) -> usize {
        let (x, y) = self.mesh.coords(node);
        (y / self.inner_mesh.height) * self.grid.width + x / self.inner_mesh.width
    }

    /// Aggregate node → tile on its chiplet's sub-mesh.
    pub fn local_node(&self, node: NodeId) -> NodeId {
        let (x, y) = self.mesh.coords(node);
        self.inner_mesh
            .node(x % self.inner_mesh.width, y % self.inner_mesh.height)
    }

    /// Tile on chiplet `chip`'s sub-mesh → aggregate node.
    pub fn aggregate_node(&self, chip: usize, local: NodeId) -> NodeId {
        let (cx, cy) = self.grid.coords(NodeId(chip));
        let (lx, ly) = self.inner_mesh.coords(local);
        self.mesh.node(
            cx * self.inner_mesh.width + lx,
            cy * self.inner_mesh.height + ly,
        )
    }

    /// Boundary tile a source-segment word exits through, given the first
    /// NoI hop direction.
    fn exit_node(&self, local_src: NodeId, first_port: Port) -> NodeId {
        let (x, y) = self.inner_mesh.coords(local_src);
        match first_port {
            Port::East => self.inner_mesh.node(self.inner_mesh.width - 1, y),
            Port::West => self.inner_mesh.node(0, y),
            Port::South => self.inner_mesh.node(x, self.inner_mesh.height - 1),
            Port::North => self.inner_mesh.node(x, 0),
            Port::Tile => local_src,
        }
    }

    /// Boundary tile a destination-segment word enters through, given the
    /// last NoI hop direction.
    fn entry_node(&self, local_dst: NodeId, last_port: Port) -> NodeId {
        let (x, y) = self.inner_mesh.coords(local_dst);
        match last_port {
            Port::East => self.inner_mesh.node(0, y),
            Port::West => self.inner_mesh.node(self.inner_mesh.width - 1, y),
            Port::South => self.inner_mesh.node(x, 0),
            Port::North => self.inner_mesh.node(x, self.inner_mesh.height - 1),
            Port::Tile => local_dst,
        }
    }

    /// XY walk over the chiplet grid from `src_chip` to `dst_chip`,
    /// returning the directed link indices in hop order.
    fn noi_route(&self, src_chip: usize, dst_chip: usize) -> Vec<usize> {
        let mut route = Vec::new();
        let mut cur = NodeId(src_chip);
        let dst = NodeId(dst_chip);
        while cur != dst {
            let port = self
                .grid
                .xy_step(cur, dst)
                .expect("xy_step yields a port while chiplets differ");
            let next = self
                .grid
                .neighbour(cur, port)
                .expect("xy_step ports stay on the grid");
            route.push(self.link_index[&(cur.0, next.0)]);
            cur = next;
        }
        route
    }

    /// First and last NoI hop directions of a cross-chiplet walk.
    fn noi_ports(&self, links: &[usize]) -> (Port, Port) {
        let port_of = |l: &NoiLink| {
            let from = NodeId(l.from);
            let to = NodeId(l.to);
            self.grid
                .xy_step(from, to)
                .expect("adjacent chiplets are one XY step apart")
        };
        let first = port_of(&self.links[links[0]]);
        let last = port_of(&self.links[*links.last().expect("cross walk has at least one link")]);
        (first, last)
    }

    /// Translate an aggregate-mesh path-hop sequence onto the inner mesh of
    /// one chiplet (all hops must stay inside that chiplet).
    fn route_in_chip(&self, route: &EdgeRoute) -> EdgeRoute {
        let paths = route
            .paths
            .iter()
            .map(|path| {
                path.iter()
                    .map(|hop| PathHop {
                        node: self.local_node(hop.node),
                        ..*hop
                    })
                    .collect()
            })
            .collect();
        EdgeRoute {
            edges: route.edges.clone(),
            paths,
            lane_capacity: route.lane_capacity,
            demand: route.demand,
        }
    }

    /// Resolve one intra-chiplet stream segment from `src` to `dst` (local
    /// tiles) on `chip`, pushing it onto the chip's plan. Circuit and
    /// hybrid inner planes go through the local CCN; packet and deflection
    /// planes take everything as spill streams.
    #[allow(clippy::too_many_arguments)]
    fn resolve_segment(
        &self,
        ccn: &Ccn,
        plan: &mut ChipPlan,
        occupied: &mut Vec<EdgeRoute>,
        src: NodeId,
        dst: NodeId,
        demand: noc_sim::units::Bandwidth,
        lane_capacity: noc_sim::units::Bandwidth,
        seg: SegRef,
    ) -> SegOutcome {
        if src == dst {
            return SegOutcome::Degenerate;
        }
        match self.inner_kind {
            FabricKind::Circuit | FabricKind::Hybrid => {
                let want = StreamDemand { src, dst, demand };
                match ccn.admit_stream(&want, occupied) {
                    Ok(route) => {
                        occupied.push(route.clone());
                        plan.routes.push(route);
                        plan.route_refs.push(seg);
                        SegOutcome::Stream
                    }
                    Err(_) if matches!(self.inner_kind, FabricKind::Hybrid) => {
                        plan.spilled.push(SpillStream {
                            edges: Vec::new(),
                            src,
                            dst,
                            demand,
                            reason: SpillReason::NoFreeLanes,
                        });
                        plan.spill_refs.push(seg);
                        SegOutcome::Stream
                    }
                    Err(_) => SegOutcome::Unserved,
                }
            }
            FabricKind::Deflection | FabricKind::Packet => {
                let _ = (ccn, lane_capacity);
                plan.spilled.push(SpillStream {
                    edges: Vec::new(),
                    src,
                    dst,
                    demand,
                    reason: SpillReason::NoFreeLanes,
                });
                plan.spill_refs.push(seg);
                SegOutcome::Stream
            }
        }
    }

    // -- NoI stepping phases ------------------------------------------------

    /// Advance every NoI link by one cycle: pop up to `entry_lanes` eligible
    /// words per link (arrival order), deliver or forward them. Fully
    /// sequential in link-index order — this is the determinism barrier.
    fn advance_noi(&mut self, now: u64) {
        let entry_lanes = self.config.entry_lanes;
        // Phase 1: pop grants per link. Only words staged before this cycle
        // are eligible, so a word makes exactly one link per cycle.
        let mut moved: Vec<(usize, NoiWord)> = Vec::new();
        for (li, link) in self.links.iter_mut().enumerate() {
            let mut granted = 0usize;
            while granted < entry_lanes {
                match link.queue.front() {
                    Some(w) if w.entered < now => {
                        let w = link.queue.pop_front().expect("front word just observed");
                        moved.push((li, w));
                        granted += 1;
                    }
                    _ => break,
                }
            }
            if granted > 0 || !link.queue.is_empty() {
                self.noi_arbiter_activity.add(ActivityClass::ArbiterEval, 1);
            }
        }
        // Phase 2: charge energy and wait, then deliver or push to the next
        // link on the word's walk.
        let mut relays: BTreeMap<(usize, u32), Vec<u16>> = BTreeMap::new();
        for (li, w) in moved {
            self.noi_buffer_activity.add(ActivityClass::BufferRead, 1);
            self.noi_link_activity.add(ActivityClass::LinkToggle, 16);
            let idx = self.by_id[&w.stream];
            let waited = (now - w.entered).saturating_sub(1);
            self.table[idx].noi_wait += waited;
            let links = self.table[idx].cross_links().to_vec();
            let pos = links
                .iter()
                .position(|&l| l == li)
                .expect("NoI word travels on its stream's walk");
            if pos + 1 < links.len() {
                let next = links[pos + 1];
                self.noi_buffer_activity.add(ActivityClass::BufferWrite, 1);
                self.links[next]
                    .queue
                    .push_back(NoiWord { entered: now, ..w });
            } else {
                let st = &mut self.table[idx];
                st.in_flight -= 1;
                match &st.slot {
                    ChipletSlot::Cross {
                        dst_chip,
                        dst_seg: Some(_),
                        ..
                    } => {
                        relays
                            .entry((*dst_chip, w.stream))
                            .or_default()
                            .push(w.word);
                    }
                    ChipletSlot::Cross { dst_seg: None, .. } => {
                        // Degenerate destination segment: the boundary tile
                        // is the destination tile.
                        if let Some(ts) = st.pending_ts.pop_front() {
                            st.latency.record(now - ts);
                        }
                        st.egress.push(w.word);
                        st.delivered += 1;
                    }
                    ChipletSlot::Intra { .. } => unreachable!("intra streams never ride the NoI"),
                }
            }
        }
        // Phase 3: relay delivered words into destination planes, then give
        // those planes their injection flush.
        let mut touched: Vec<usize> = Vec::new();
        for ((chip, stream), words) in relays {
            let idx = self.by_id[&stream];
            let local = match &self.table[idx].slot {
                ChipletSlot::Cross {
                    dst_seg: Some(local),
                    ..
                } => *local,
                _ => unreachable!("relayed words target a live destination segment"),
            };
            self.planes[chip]
                .as_fabric_mut()
                .inject_stream(local, &words);
            if touched.last() != Some(&chip) {
                touched.push(chip);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for chip in touched {
            self.planes[chip].as_fabric_mut().finish_injection();
        }
    }

    /// Move source-segment output (or degenerate-source ingress) onto the
    /// first NoI link of each cross stream.
    fn feed_noi(&mut self, now: u64) {
        for idx in 0..self.table.len() {
            let st = &self.table[idx];
            if !st.active && !st.draining {
                continue;
            }
            let (src_chip, first_link, src_seg) = match &st.slot {
                ChipletSlot::Cross {
                    src_chip,
                    links,
                    src_seg,
                    ..
                } => (*src_chip, links[0], *src_seg),
                ChipletSlot::Intra { .. } => continue,
            };
            if let Some(local) = src_seg {
                let words = self.planes[src_chip].as_fabric_mut().drain_stream(local);
                self.table[idx].noi_ingress.extend(words);
            }
            let st = &mut self.table[idx];
            if now >= st.ready_at {
                let id = st.id;
                while let Some(word) = st.noi_ingress.pop_front() {
                    st.in_flight += 1;
                    self.noi_buffer_activity.add(ActivityClass::BufferWrite, 1);
                    self.links[first_link].queue.push_back(NoiWord {
                        stream: id,
                        word,
                        entered: now,
                    });
                }
            }
        }
    }

    /// Pull destination-segment deliveries up to the chiplet level.
    fn collect_dst(&mut self, now: u64) {
        for idx in 0..self.table.len() {
            let (dst_chip, dst_seg) = match &self.table[idx].slot {
                ChipletSlot::Cross {
                    dst_chip,
                    dst_seg: Some(local),
                    ..
                } => (*dst_chip, *local),
                _ => continue,
            };
            let words = self.planes[dst_chip].as_fabric_mut().drain_stream(dst_seg);
            if words.is_empty() {
                continue;
            }
            let st = &mut self.table[idx];
            for word in words {
                if let Some(ts) = st.pending_ts.pop_front() {
                    st.latency.record(now - ts);
                }
                st.egress.push(word);
                st.delivered += 1;
            }
        }
    }

    /// Progress draining streams: finalise intra streams whose plane stream
    /// went inactive, cascade cross-stream drains from source segment to
    /// NoI to destination segment.
    fn finalise_drains(&mut self) {
        let draining = std::mem::take(&mut self.draining);
        for idx in draining {
            let finished = match &self.table[idx].slot {
                ChipletSlot::Intra { chip, local } => {
                    self.planes[*chip].stream_is_active(*local) == Some(false)
                }
                ChipletSlot::Cross {
                    src_chip,
                    dst_chip,
                    src_seg,
                    dst_seg,
                    ..
                } => {
                    let (src_chip, dst_chip) = (*src_chip, *dst_chip);
                    let (src_seg, dst_seg) = (*src_seg, *dst_seg);
                    let src_done = src_seg
                        .is_none_or(|s| self.planes[src_chip].stream_is_active(s) == Some(false));
                    let noi_empty =
                        self.table[idx].noi_ingress.is_empty() && self.table[idx].in_flight == 0;
                    if src_done && noi_empty && !self.table[idx].dst_drain_issued {
                        if let Some(d) = dst_seg {
                            self.planes[dst_chip]
                                .as_fabric_mut()
                                .release(d, ReleaseMode::Drain)
                                .expect("destination segment is live while draining");
                        }
                        self.table[idx].dst_drain_issued = true;
                    }
                    self.table[idx].dst_drain_issued
                        && dst_seg.is_none_or(|d| {
                            self.planes[dst_chip].stream_is_active(d) == Some(false)
                        })
                }
            };
            if finished {
                self.finalise_stream(idx);
            } else {
                self.draining.push(idx);
            }
        }
    }

    /// Mark a stream finished and free its NoI entry-lane reservations.
    fn finalise_stream(&mut self, idx: usize) {
        let links = self.table[idx].cross_links().to_vec();
        for l in links {
            self.links[l].reserved = self.links[l].reserved.saturating_sub(1);
        }
        let st = &mut self.table[idx];
        st.active = false;
        st.draining = false;
    }

    /// One aggregate cycle: step every chiplet plane (sharded onto the
    /// worker pool), then exchange boundary words sequentially.
    fn step_chiplets(&mut self) {
        let lanes = self.policy.lanes_for(self.mesh.nodes());
        if lanes <= 1 || self.planes.len() <= 1 {
            for plane in &mut self.planes {
                plane.as_fabric_mut().step();
            }
        } else {
            WorkerPool::global().for_each_mut(&mut self.planes, lanes, |plane| {
                plane.as_fabric_mut().step();
            });
        }
        self.now = Cycle(self.now.0 + 1);
        let now = self.now.0;
        self.advance_noi(now);
        self.feed_noi(now);
        self.collect_dst(now);
        self.finalise_drains();
    }

    /// Stream table index for `id`, or an `UnknownStream` error.
    fn index_of(&self, id: StreamId) -> Result<usize, AdmitError> {
        self.by_id
            .get(&id.0)
            .copied()
            .ok_or(AdmitError::UnknownStream(id))
    }
}

impl Clocked for ChipletFabric {
    fn eval(&mut self) {}

    fn commit(&mut self) {
        self.step_chiplets();
    }
}

impl Fabric for ChipletFabric {
    fn kind(&self) -> FabricKind {
        self.inner_kind
    }

    fn snapshot(&self) -> FabricSnapshot {
        FabricSnapshot::new(CHIPLET_BACKEND, self.clone())
    }

    fn restore(&mut self, snapshot: &FabricSnapshot) -> Result<(), SnapshotError> {
        *self = snapshot.downcast::<ChipletFabric>(CHIPLET_BACKEND)?.clone();
        Ok(())
    }

    fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    fn now(&self) -> Cycle {
        self.now
    }

    fn provision(&mut self, mapping: &Mapping) -> Result<Vec<StreamId>, ProvisionError> {
        self.provision_with(mapping, ProvisionMode::Instant)
    }

    fn provision_with(
        &mut self,
        mapping: &Mapping,
        mode: ProvisionMode,
    ) -> Result<Vec<StreamId>, ProvisionError> {
        for link in &mut self.links {
            link.reserved = 0;
            link.queue.clear();
        }
        self.table.clear();
        self.by_id.clear();
        self.draining.clear();
        self.next_id = 0;

        let ccn = Ccn::with_lane_capacity(
            self.inner_mesh,
            self.config.router_params,
            mapping.lane_capacity,
        );
        let chips = self.planes.len();
        let mut plans: Vec<ChipPlan> = (0..chips).map(|_| ChipPlan::default()).collect();
        let mut occupied: Vec<Vec<EdgeRoute>> = vec![Vec::new(); chips];

        for &(proc, node) in &mapping.placement {
            plans[self.chip_of(node)]
                .placement
                .push((proc, self.local_node(node)));
        }

        // Pre-pass: seed each chiplet's occupancy with every same-chiplet
        // route that will be provisioned verbatim, so segment admission
        // cannot collide with them regardless of stream order.
        for ms in mapping.streams() {
            if ms.spilled {
                continue;
            }
            let route = &mapping.routes[ms.route.expect("non-spilled stream has a route")];
            if self.chip_of(ms.src) == self.chip_of(ms.dst) {
                occupied[self.chip_of(ms.src)].push(self.route_in_chip(route));
            }
        }

        let mut served = Vec::new();
        let mut id = 0u32;
        for ms in mapping.streams() {
            let src_chip = self.chip_of(ms.src);
            let dst_chip = self.chip_of(ms.dst);
            let gid = id;
            let (slot, noi_reconfig) = if src_chip == dst_chip {
                let plan = &mut plans[src_chip];
                if ms.spilled {
                    // Aggregate-level spill decisions are preserved verbatim
                    // so a 1×1 grid stays bit-identical to the flat fabric:
                    // a circuit plane cannot carry them at all, every other
                    // plane takes them directly as spill streams.
                    if matches!(self.inner_kind, FabricKind::Circuit) {
                        id += 1;
                        continue;
                    }
                    let spill = &mapping.spilled[ms.spill.expect("spilled stream has a spill")];
                    plan.spilled.push(SpillStream {
                        edges: spill.edges.clone(),
                        src: self.local_node(ms.src),
                        dst: self.local_node(ms.dst),
                        demand: spill.demand,
                        reason: spill.reason,
                    });
                    plan.spill_refs.push(SegRef::Intra(gid));
                } else {
                    let route = &mapping.routes[ms.route.expect("non-spilled stream has a route")];
                    plan.routes.push(self.route_in_chip(route));
                    plan.route_refs.push(SegRef::Intra(gid));
                }
                (
                    ChipletSlot::Intra {
                        chip: src_chip,
                        local: StreamId(0),
                    },
                    0,
                )
            } else {
                let links = self.noi_route(src_chip, dst_chip);
                let (first_port, last_port) = self.noi_ports(&links);
                let local_src = self.local_node(ms.src);
                let local_dst = self.local_node(ms.dst);
                let exit = self.exit_node(local_src, first_port);
                let entry = self.entry_node(local_dst, last_port);
                // Resolve both segments tentatively so a failed destination
                // segment does not leave a half-committed source segment.
                let mut src_plan = ChipPlan::default();
                let mut dst_plan = ChipPlan::default();
                let mut src_occ = occupied[src_chip].clone();
                let mut dst_occ = occupied[dst_chip].clone();
                let src_out = self.resolve_segment(
                    &ccn,
                    &mut src_plan,
                    &mut src_occ,
                    local_src,
                    exit,
                    ms.demand,
                    mapping.lane_capacity,
                    SegRef::Src(gid),
                );
                let dst_out = self.resolve_segment(
                    &ccn,
                    &mut dst_plan,
                    &mut dst_occ,
                    entry,
                    local_dst,
                    ms.demand,
                    mapping.lane_capacity,
                    SegRef::Dst(gid),
                );
                if matches!(src_out, SegOutcome::Unserved)
                    || matches!(dst_out, SegOutcome::Unserved)
                {
                    id += 1;
                    continue;
                }
                occupied[src_chip] = src_occ;
                occupied[dst_chip] = dst_occ;
                let src_seg = match src_out {
                    SegOutcome::Stream => {
                        let plan = &mut plans[src_chip];
                        plan.routes.extend(src_plan.routes);
                        plan.route_refs.extend(src_plan.route_refs);
                        plan.spilled.extend(src_plan.spilled);
                        plan.spill_refs.extend(src_plan.spill_refs);
                        Some(StreamId(0))
                    }
                    _ => None,
                };
                let dst_seg = match dst_out {
                    SegOutcome::Stream => {
                        let plan = &mut plans[dst_chip];
                        plan.routes.extend(dst_plan.routes);
                        plan.route_refs.extend(dst_plan.route_refs);
                        plan.spilled.extend(dst_plan.spilled);
                        plan.spill_refs.extend(dst_plan.spill_refs);
                        Some(StreamId(0))
                    }
                    _ => None,
                };
                for &l in &links {
                    self.links[l].reserved += 1;
                }
                let noi_reconfig = match mode {
                    ProvisionMode::BeDelivered => {
                        links.len() as u64 * Self::NOI_CONFIG_CYCLES_PER_LINK
                    }
                    ProvisionMode::Instant => 0,
                };
                (
                    ChipletSlot::Cross {
                        src_chip,
                        dst_chip,
                        src_seg,
                        dst_seg,
                        links,
                    },
                    noi_reconfig,
                )
            };
            let ready_at = self.now.0 + noi_reconfig;
            self.by_id.insert(gid, self.table.len());
            self.table.push(ChipletStream {
                id: gid,
                slot,
                src: ms.src,
                dst: ms.dst,
                active: true,
                draining: false,
                dst_drain_issued: false,
                injected: 0,
                delivered: 0,
                noi_reconfig,
                ready_at,
                noi_wait: 0,
                in_flight: 0,
                pending_ts: VecDeque::new(),
                noi_ingress: VecDeque::new(),
                egress: Vec::new(),
                latency: LatencyHistogram::new(),
            });
            served.push(StreamId(gid));
            id += 1;
        }
        self.next_id = id;

        // Bind local plane ids back into the chiplet table. Each plane
        // returns ids in `Mapping::streams()` order: routes first (in push
        // order), spills after — matching route_refs ++ spill_refs.
        for (chip, plan) in plans.into_iter().enumerate() {
            let local_mapping = Mapping {
                placement: plan.placement,
                routes: plan.routes,
                spilled: plan.spilled,
                lane_capacity: mapping.lane_capacity,
            };
            let ids = self.planes[chip]
                .as_fabric_mut()
                .provision_with(&local_mapping, mode)?;
            let mut refs = plan.route_refs;
            refs.extend(plan.spill_refs);
            assert_eq!(
                ids.len(),
                refs.len(),
                "chiplet {chip} plane served {} of {} expected segments",
                ids.len(),
                refs.len(),
            );
            for (local, r) in ids.into_iter().zip(refs) {
                let gid = match r {
                    SegRef::Intra(g) | SegRef::Src(g) | SegRef::Dst(g) => g,
                };
                let idx = self.by_id[&gid];
                match (&mut self.table[idx].slot, r) {
                    (ChipletSlot::Intra { local: slot, .. }, SegRef::Intra(_)) => *slot = local,
                    (ChipletSlot::Cross { src_seg, .. }, SegRef::Src(_)) => {
                        *src_seg = Some(local);
                    }
                    (ChipletSlot::Cross { dst_seg, .. }, SegRef::Dst(_)) => {
                        *dst_seg = Some(local);
                    }
                    _ => unreachable!("segment binding matches its slot shape"),
                }
            }
        }
        Ok(served)
    }

    fn inject_stream(&mut self, id: StreamId, words: &[u16]) -> usize {
        let idx = self.by_id[&id.0];
        let st = &self.table[idx];
        assert!(
            st.active && !st.draining,
            "stream {} is not accepting words",
            id.0
        );
        match st.slot {
            ChipletSlot::Intra { chip, local } => self.planes[chip]
                .as_fabric_mut()
                .inject_stream(local, words),
            ChipletSlot::Cross {
                src_chip, src_seg, ..
            } => {
                let now = self.now.0;
                let accepted = match src_seg {
                    Some(local) => self.planes[src_chip]
                        .as_fabric_mut()
                        .inject_stream(local, words),
                    None => {
                        self.table[idx].noi_ingress.extend(words.iter().copied());
                        words.len()
                    }
                };
                let st = &mut self.table[idx];
                st.injected += accepted as u64;
                for _ in 0..accepted {
                    st.pending_ts.push_back(now);
                }
                accepted
            }
        }
    }

    fn finish_injection(&mut self) {
        for plane in &mut self.planes {
            plane.as_fabric_mut().finish_injection();
        }
    }

    fn drain_stream(&mut self, id: StreamId) -> Vec<u16> {
        let idx = self.by_id[&id.0];
        match self.table[idx].slot {
            ChipletSlot::Intra { chip, local } => {
                self.planes[chip].as_fabric_mut().drain_stream(local)
            }
            ChipletSlot::Cross { .. } => std::mem::take(&mut self.table[idx].egress),
        }
    }

    fn release(&mut self, id: StreamId, mode: ReleaseMode) -> Result<(), AdmitError> {
        let idx = self.index_of(id)?;
        if !self.table[idx].active {
            return Err(AdmitError::UnknownStream(id));
        }
        if self.table[idx].draining {
            return Err(AdmitError::Draining(id));
        }
        match self.table[idx].slot.clone() {
            ChipletSlot::Intra { chip, local } => {
                self.planes[chip].as_fabric_mut().release(local, mode)?;
                match mode {
                    ReleaseMode::Drop => {
                        self.table[idx].active = false;
                    }
                    ReleaseMode::Drain => {
                        if self.planes[chip].stream_is_active(local) == Some(false) {
                            self.table[idx].active = false;
                        } else {
                            self.table[idx].draining = true;
                            self.draining.push(idx);
                        }
                    }
                }
                Ok(())
            }
            ChipletSlot::Cross {
                src_chip,
                dst_chip,
                src_seg,
                dst_seg,
                links,
            } => match mode {
                ReleaseMode::Drop => {
                    if let Some(s) = src_seg {
                        self.planes[src_chip]
                            .as_fabric_mut()
                            .release(s, ReleaseMode::Drop)?;
                    }
                    if let Some(d) = dst_seg {
                        self.planes[dst_chip]
                            .as_fabric_mut()
                            .release(d, ReleaseMode::Drop)
                            .expect("destination segment is live while the stream is");
                    }
                    let gid = id.0;
                    for link in &mut self.links {
                        link.queue.retain(|w| w.stream != gid);
                    }
                    for l in links {
                        self.links[l].reserved = self.links[l].reserved.saturating_sub(1);
                    }
                    let st = &mut self.table[idx];
                    st.noi_ingress.clear();
                    st.pending_ts.clear();
                    st.in_flight = 0;
                    st.active = false;
                    Ok(())
                }
                ReleaseMode::Drain => {
                    if let Some(s) = src_seg {
                        self.planes[src_chip]
                            .as_fabric_mut()
                            .release(s, ReleaseMode::Drain)?;
                    }
                    self.table[idx].draining = true;
                    self.draining.push(idx);
                    Ok(())
                }
            },
        }
    }

    fn admit(&mut self, demand: &StreamDemand) -> Result<StreamId, AdmitError> {
        let src_chip = self.chip_of(demand.src);
        let dst_chip = self.chip_of(demand.dst);
        let gid = self.next_id;
        if src_chip == dst_chip {
            let want = StreamDemand {
                src: self.local_node(demand.src),
                dst: self.local_node(demand.dst),
                demand: demand.demand,
            };
            let local = self.planes[src_chip].as_fabric_mut().admit(&want)?;
            self.by_id.insert(gid, self.table.len());
            self.table.push(ChipletStream {
                id: gid,
                slot: ChipletSlot::Intra {
                    chip: src_chip,
                    local,
                },
                src: demand.src,
                dst: demand.dst,
                active: true,
                draining: false,
                dst_drain_issued: false,
                injected: 0,
                delivered: 0,
                noi_reconfig: 0,
                ready_at: self.now.0,
                noi_wait: 0,
                in_flight: 0,
                pending_ts: VecDeque::new(),
                noi_ingress: VecDeque::new(),
                egress: Vec::new(),
                latency: LatencyHistogram::new(),
            });
            self.next_id += 1;
            return Ok(StreamId(gid));
        }
        let links = self.noi_route(src_chip, dst_chip);
        if links
            .iter()
            .any(|&l| self.links[l].reserved >= self.config.entry_lanes)
        {
            return Err(AdmitError::NoFreeLanes);
        }
        let (first_port, last_port) = self.noi_ports(&links);
        let local_src = self.local_node(demand.src);
        let local_dst = self.local_node(demand.dst);
        let exit = self.exit_node(local_src, first_port);
        let entry = self.entry_node(local_dst, last_port);
        let src_seg = if local_src == exit {
            None
        } else {
            let want = StreamDemand {
                src: local_src,
                dst: exit,
                demand: demand.demand,
            };
            Some(self.planes[src_chip].as_fabric_mut().admit(&want)?)
        };
        let dst_seg = if entry == local_dst {
            None
        } else {
            let want = StreamDemand {
                src: entry,
                dst: local_dst,
                demand: demand.demand,
            };
            match self.planes[dst_chip].as_fabric_mut().admit(&want) {
                Ok(id) => Some(id),
                Err(e) => {
                    if let Some(s) = src_seg {
                        self.planes[src_chip]
                            .as_fabric_mut()
                            .release(s, ReleaseMode::Drop)
                            .expect("freshly admitted source segment releases cleanly");
                    }
                    return Err(e);
                }
            }
        };
        for &l in &links {
            self.links[l].reserved += 1;
        }
        let noi_reconfig = links.len() as u64 * Self::NOI_CONFIG_CYCLES_PER_LINK;
        let ready_at = self.now.0 + noi_reconfig;
        self.by_id.insert(gid, self.table.len());
        self.table.push(ChipletStream {
            id: gid,
            slot: ChipletSlot::Cross {
                src_chip,
                dst_chip,
                src_seg,
                dst_seg,
                links,
            },
            src: demand.src,
            dst: demand.dst,
            active: true,
            draining: false,
            dst_drain_issued: false,
            injected: 0,
            delivered: 0,
            noi_reconfig,
            ready_at,
            noi_wait: 0,
            in_flight: 0,
            pending_ts: VecDeque::new(),
            noi_ingress: VecDeque::new(),
            egress: Vec::new(),
            latency: LatencyHistogram::new(),
        });
        self.next_id += 1;
        Ok(StreamId(gid))
    }

    fn can_admit_circuit(&self, demand: &StreamDemand) -> bool {
        let src_chip = self.chip_of(demand.src);
        let dst_chip = self.chip_of(demand.dst);
        if src_chip == dst_chip {
            let want = StreamDemand {
                src: self.local_node(demand.src),
                dst: self.local_node(demand.dst),
                demand: demand.demand,
            };
            return self.planes[src_chip].as_fabric().can_admit_circuit(&want);
        }
        if !matches!(self.inner_kind, FabricKind::Circuit | FabricKind::Hybrid) {
            return false;
        }
        let links = self.noi_route(src_chip, dst_chip);
        if links
            .iter()
            .any(|&l| self.links[l].reserved >= self.config.entry_lanes)
        {
            return false;
        }
        let (first_port, last_port) = self.noi_ports(&links);
        let local_src = self.local_node(demand.src);
        let local_dst = self.local_node(demand.dst);
        let exit = self.exit_node(local_src, first_port);
        let entry = self.entry_node(local_dst, last_port);
        let src_ok = local_src == exit
            || self.planes[src_chip]
                .as_fabric()
                .can_admit_circuit(&StreamDemand {
                    src: local_src,
                    dst: exit,
                    demand: demand.demand,
                });
        let dst_ok = entry == local_dst
            || self.planes[dst_chip]
                .as_fabric()
                .can_admit_circuit(&StreamDemand {
                    src: entry,
                    dst: local_dst,
                    demand: demand.demand,
                });
        src_ok && dst_ok
    }

    fn stream_stats(&self) -> Vec<StreamStats> {
        // Per-plane lookup maps keyed by local session id (lookups only —
        // iteration order stays the chiplet table's).
        let plane_stats: Vec<HashMap<u32, StreamStats>> = self
            .planes
            .iter()
            .map(|p| {
                p.as_fabric()
                    .stream_stats()
                    .into_iter()
                    .map(|s| (s.id.0, s))
                    .collect()
            })
            .collect();
        self.table
            .iter()
            .map(|st| match &st.slot {
                ChipletSlot::Intra { chip, local } => {
                    let mut stats = plane_stats[*chip]
                        .get(&local.0)
                        .expect("intra stream has plane telemetry")
                        .clone();
                    stats.id = StreamId(st.id);
                    stats.src = st.src;
                    stats.dst = st.dst;
                    stats
                }
                ChipletSlot::Cross {
                    src_chip,
                    dst_chip,
                    src_seg,
                    dst_seg,
                    ..
                } => {
                    let src_stats = src_seg.and_then(|s| plane_stats[*src_chip].get(&s.0));
                    let dst_stats = dst_seg.and_then(|d| plane_stats[*dst_chip].get(&d.0));
                    let seg_plane = src_stats
                        .map(|s| s.plane)
                        .or_else(|| dst_stats.map(|s| s.plane));
                    let plane = if src_stats.map(|s| s.plane) == Some(StreamPlane::Spilled)
                        || dst_stats.map(|s| s.plane) == Some(StreamPlane::Spilled)
                    {
                        StreamPlane::Spilled
                    } else {
                        seg_plane.unwrap_or(match self.inner_kind {
                            FabricKind::Circuit | FabricKind::Hybrid => StreamPlane::Circuit,
                            FabricKind::Deflection | FabricKind::Packet => StreamPlane::Packet,
                        })
                    };
                    let seg_reconfig = src_stats
                        .map_or(0, |s| s.reconfig_cycles)
                        .max(dst_stats.map_or(0, |s| s.reconfig_cycles));
                    let max_deflections = src_stats
                        .map_or(0, |s| s.max_deflections)
                        .max(dst_stats.map_or(0, |s| s.max_deflections));
                    StreamStats {
                        id: StreamId(st.id),
                        src: st.src,
                        dst: st.dst,
                        plane,
                        active: st.active,
                        injected_words: st.injected,
                        delivered_words: st.delivered,
                        reconfig_cycles: st.noi_reconfig.max(seg_reconfig),
                        latency: st.latency.clone(),
                        max_deflections,
                    }
                }
            })
            .collect()
    }

    fn step(&mut self) {
        self.step_chiplets();
    }

    fn set_parallelism(&mut self, policy: ParPolicy) {
        self.policy = policy;
        for plane in &mut self.planes {
            plane.as_fabric_mut().set_parallelism(policy);
        }
    }

    fn activity(&self) -> Vec<ComponentActivity> {
        let mut merged: Vec<ComponentActivity> = Vec::new();
        let mut absorb = |kind: ComponentKind, ledger: &ActivityLedger| {
            if let Some(existing) = merged.iter_mut().find(|c| c.kind == kind) {
                existing.ledger.merge(ledger);
            } else {
                merged.push(ComponentActivity {
                    kind,
                    ledger: *ledger,
                });
            }
        };
        for plane in &self.planes {
            for component in plane.as_fabric().activity() {
                absorb(component.kind, &component.ledger);
            }
        }
        // NoI ledgers join only when they carry events, so a quiet 1×1 grid
        // stays bit-identical to the flat fabric's activity.
        if !self.noi_link_activity.is_empty() {
            absorb(ComponentKind::Link, &self.noi_link_activity);
        }
        if !self.noi_buffer_activity.is_empty() {
            absorb(ComponentKind::Buffering, &self.noi_buffer_activity);
        }
        if !self.noi_arbiter_activity.is_empty() {
            absorb(ComponentKind::Arbitration, &self.noi_arbiter_activity);
        }
        merged
    }

    fn clear_activity(&mut self) {
        for plane in &mut self.planes {
            plane.as_fabric_mut().clear_activity();
        }
        self.noi_link_activity.clear();
        self.noi_buffer_activity.clear();
        self.noi_arbiter_activity.clear();
    }

    fn is_quiescent(&self) -> bool {
        self.planes.iter().all(|p| p.as_fabric().is_quiescent())
            && self.links.iter().all(|l| l.queue.is_empty())
            && self
                .table
                .iter()
                .all(|s| s.noi_ingress.is_empty() && s.in_flight == 0)
    }

    fn total_overflows(&self) -> u64 {
        self.planes
            .iter()
            .map(|p| p.as_fabric().total_overflows())
            .sum()
    }

    fn spilled_streams(&self) -> u64 {
        self.planes
            .iter()
            .map(|p| p.as_fabric().spilled_streams())
            .sum()
    }

    fn spilled_words(&self) -> u64 {
        self.planes
            .iter()
            .map(|p| p.as_fabric().spilled_words())
            .sum()
    }

    fn area(&self, model: &EnergyModel) -> SquareMicroMeters {
        let planes: f64 = self
            .planes
            .iter()
            .map(|p| p.as_fabric().area(model).0)
            .sum();
        let noi = if self.links.is_empty() {
            0.0
        } else {
            noi_entry_router_area(self.config.entry_lanes, model.estimator().tech())
                .total()
                .0
                * self.links.len() as f64
        };
        SquareMicroMeters(planes + noi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ccn::Ccn;
    use noc_sim::units::{Bandwidth, MegaHertz};

    fn mapping_for(mesh: Mesh, streams: &[(NodeId, NodeId)]) -> Mapping {
        let ccn = Ccn::new(mesh, RouterParams::paper(), MegaHertz(100.0));
        let mut occupied: Vec<EdgeRoute> = Vec::new();
        let mut routes = Vec::new();
        let lane_capacity = ccn.lane_capacity();
        for &(src, dst) in streams {
            let demand = StreamDemand {
                src,
                dst,
                demand: Bandwidth(60.0),
            };
            let route = ccn
                .admit_stream(&demand, &occupied)
                .expect("test stream admits");
            occupied.push(route.clone());
            routes.push(route);
        }
        Mapping {
            placement: Vec::new(),
            routes,
            spilled: Vec::new(),
            lane_capacity,
        }
    }

    fn stats_of(fabric: &dyn Fabric, id: StreamId) -> StreamStats {
        fabric
            .stream_stats()
            .into_iter()
            .find(|s| s.id == id)
            .expect("stream has telemetry")
    }

    #[test]
    fn geometry_roundtrip() {
        let fabric = ChipletFabric::paper(Mesh::new(6, 4), 3, 2, FabricKind::Circuit);
        assert_eq!(fabric.inner_mesh(), Mesh::new(2, 2));
        for node in 0..fabric.mesh().nodes() {
            let node = NodeId(node);
            let chip = fabric.chip_of(node);
            let local = fabric.local_node(node);
            assert_eq!(fabric.aggregate_node(chip, local), node);
        }
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn indivisible_grid_panics() {
        let _ = ChipletFabric::paper(Mesh::new(5, 4), 2, 2, FabricKind::Circuit);
    }

    #[test]
    fn one_by_one_grid_matches_flat_soc() {
        let mesh = Mesh::new(4, 4);
        let mapping = mapping_for(mesh, &[(mesh.node(0, 0), mesh.node(3, 2))]);
        let mut flat = Soc::new(mesh, RouterParams::paper());
        let mut chiplet = ChipletFabric::paper(mesh, 1, 1, FabricKind::Circuit);
        let flat_ids = flat
            .provision_with(&mapping, ProvisionMode::BeDelivered)
            .unwrap();
        let chip_ids = chiplet
            .provision_with(&mapping, ProvisionMode::BeDelivered)
            .unwrap();
        assert_eq!(flat_ids.len(), chip_ids.len());
        let payload: Vec<u16> = (0..24).collect();
        flat.inject_stream(flat_ids[0], &payload);
        chiplet.inject_stream(chip_ids[0], &payload);
        flat.finish_injection();
        chiplet.finish_injection();
        let mut flat_out = Vec::new();
        let mut chip_out = Vec::new();
        for _ in 0..200 {
            flat.step();
            chiplet.step();
            flat_out.extend(flat.drain_stream(flat_ids[0]));
            chip_out.extend(chiplet.drain_stream(chip_ids[0]));
        }
        assert_eq!(flat_out, payload);
        assert_eq!(chip_out, payload);
        let fs = stats_of(&flat, flat_ids[0]);
        let cs = stats_of(&chiplet, chip_ids[0]);
        assert_eq!(fs, cs);
        let model = EnergyModel::calibrated(MegaHertz(100.0));
        assert_eq!(flat.activity(), chiplet.activity());
        assert_eq!(flat.total_energy(&model), chiplet.total_energy(&model));
    }

    #[test]
    fn cross_chiplet_stream_delivers_in_order() {
        let mesh = Mesh::new(4, 2);
        let mut fabric = ChipletFabric::paper(mesh, 2, 1, FabricKind::Hybrid);
        let mapping = mapping_for(mesh, &[(mesh.node(0, 0), mesh.node(3, 1))]);
        let ids = fabric
            .provision_with(&mapping, ProvisionMode::Instant)
            .unwrap();
        assert_eq!(ids.len(), 1);
        assert_eq!(fabric.cross_streams(), 1);
        let payload: Vec<u16> = (100..140).collect();
        fabric.inject_stream(ids[0], &payload);
        fabric.finish_injection();
        let mut out = Vec::new();
        for _ in 0..400 {
            fabric.step();
            out.extend(fabric.drain_stream(ids[0]));
            if out.len() == payload.len() {
                break;
            }
        }
        assert_eq!(out, payload);
        let stats = stats_of(&fabric, ids[0]);
        assert_eq!(stats.delivered_words, payload.len() as u64);
        assert_eq!(stats.injected_words, payload.len() as u64);
        assert_eq!(stats.latency.count(), payload.len() as u64);
    }

    #[test]
    fn entry_lane_exhaustion_and_release() {
        let mesh = Mesh::new(2, 1);
        let mut config = ChipletConfig::paper();
        config.entry_lanes = 1;
        let mut fabric = ChipletFabric::new(mesh, 2, 1, FabricKind::Hybrid, config);
        let empty = Mapping {
            placement: Vec::new(),
            routes: Vec::new(),
            spilled: Vec::new(),
            lane_capacity: Ccn::new(mesh, RouterParams::paper(), MegaHertz(100.0)).lane_capacity(),
        };
        fabric
            .provision_with(&empty, ProvisionMode::Instant)
            .unwrap();
        let demand = StreamDemand {
            src: mesh.node(0, 0),
            dst: mesh.node(1, 0),
            demand: Bandwidth(60.0),
        };
        let first = fabric.admit(&demand).expect("first stream fits");
        assert!(matches!(
            fabric.admit(&demand),
            Err(AdmitError::NoFreeLanes)
        ));
        assert!(!fabric.can_admit_circuit(&demand));
        fabric.release(first, ReleaseMode::Drop).unwrap();
        fabric.admit(&demand).expect("lane freed by drop");
    }

    #[test]
    fn noi_queueing_charged_to_latency() {
        let mesh = Mesh::new(2, 1);
        let mut config = ChipletConfig::paper();
        config.entry_lanes = 1;
        let mut fabric = ChipletFabric::new(mesh, 2, 1, FabricKind::Hybrid, config);
        let empty = Mapping {
            placement: Vec::new(),
            routes: Vec::new(),
            spilled: Vec::new(),
            lane_capacity: Ccn::new(mesh, RouterParams::paper(), MegaHertz(100.0)).lane_capacity(),
        };
        fabric
            .provision_with(&empty, ProvisionMode::Instant)
            .unwrap();
        let demand = StreamDemand {
            src: mesh.node(0, 0),
            dst: mesh.node(1, 0),
            demand: Bandwidth(60.0),
        };
        let id = fabric.admit(&demand).expect("stream admits");
        let payload: Vec<u16> = (0..16).collect();
        fabric.inject_stream(id, &payload);
        fabric.finish_injection();
        let mut out = Vec::new();
        for _ in 0..200 {
            fabric.step();
            out.extend(fabric.drain_stream(id));
            if out.len() == payload.len() {
                break;
            }
        }
        assert_eq!(out, payload);
        // One entry lane + a 16-word burst → words queue; the wait lands in
        // the stream latency spread and the fabric-level counter.
        assert!(fabric.noi_wait_cycles() > 0, "queueing must be charged");
        let stats = stats_of(&fabric, id);
        assert!(stats.latency.max().unwrap() > stats.latency.min().unwrap());
        // Runtime admission charges NoI reconfiguration before first entry.
        assert!(stats.reconfig_cycles >= ChipletFabric::NOI_CONFIG_CYCLES_PER_LINK);
        assert!(stats.latency.min().unwrap() >= ChipletFabric::NOI_CONFIG_CYCLES_PER_LINK);
    }

    #[test]
    fn snapshot_restore_mid_flight() {
        let mesh = Mesh::new(4, 2);
        let mut fabric = ChipletFabric::paper(mesh, 2, 1, FabricKind::Circuit);
        let mapping = mapping_for(mesh, &[(mesh.node(0, 0), mesh.node(3, 0))]);
        let ids = fabric
            .provision_with(&mapping, ProvisionMode::Instant)
            .unwrap();
        let payload: Vec<u16> = (0..32).collect();
        fabric.inject_stream(ids[0], &payload);
        fabric.finish_injection();
        for _ in 0..3 {
            fabric.step();
        }
        let snap = fabric.snapshot();
        let mut replica = ChipletFabric::paper(mesh, 2, 1, FabricKind::Circuit);
        replica.restore(&snap).unwrap();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..300 {
            fabric.step();
            replica.step();
            a.extend(fabric.drain_stream(ids[0]));
            b.extend(replica.drain_stream(ids[0]));
        }
        assert_eq!(a, b);
        assert_eq!(a, payload[..a.len()].to_vec());
        assert_eq!(stats_of(&fabric, ids[0]), stats_of(&replica, ids[0]));
    }

    #[test]
    fn drain_release_cascades_across_chiplets() {
        let mesh = Mesh::new(4, 2);
        let mut fabric = ChipletFabric::paper(mesh, 2, 1, FabricKind::Hybrid);
        let mapping = mapping_for(mesh, &[(mesh.node(0, 0), mesh.node(3, 1))]);
        let ids = fabric
            .provision_with(&mapping, ProvisionMode::Instant)
            .unwrap();
        let payload: Vec<u16> = (7..27).collect();
        fabric.inject_stream(ids[0], &payload);
        fabric.finish_injection();
        fabric.release(ids[0], ReleaseMode::Drain).unwrap();
        assert!(matches!(
            fabric.release(ids[0], ReleaseMode::Drain),
            Err(AdmitError::Draining(_))
        ));
        let mut out = Vec::new();
        for _ in 0..400 {
            fabric.step();
            out.extend(fabric.drain_stream(ids[0]));
        }
        assert_eq!(out, payload, "drain release loses no words");
        let stats = stats_of(&fabric, ids[0]);
        assert!(!stats.active);
    }
}
