//! Plain-text table rendering for the experiment binaries.
//!
//! Every binary prints the same artefact the paper shows — a table or a
//! figure's data series — in aligned ASCII, plus a paper-vs-measured
//! column where a published value exists.

use std::fmt::Write as _;

/// Render an aligned ASCII table.
///
/// # Panics
/// Panics when a row's arity differs from the header's — a bug in the
/// calling binary, not data-dependent.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep: String = widths
        .iter()
        .map(|w| format!("+{}", "-".repeat(w + 2)))
        .collect::<String>()
        + "+";
    let render_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            let _ = write!(line, "| {:<width$} ", cell, width = widths[i]);
        }
        line + "|"
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let _ = writeln!(out, "{sep}");
    let _ = writeln!(out, "{}", render_row(&header_cells));
    let _ = writeln!(out, "{sep}");
    for row in rows {
        let _ = writeln!(out, "{}", render_row(row));
    }
    let _ = write!(out, "{sep}");
    out
}

/// Format a measured-vs-paper pair with relative error.
pub fn vs(measured: f64, paper: f64, unit: &str) -> String {
    let err = noc_sim::units::relative_error(measured, paper) * 100.0;
    format!("{measured:.2} {unit} (paper {paper:.2}, {err:+.1}%)")
}

/// Format an `Option<f64>` area cell (mm²), `n.a.` when absent.
pub fn mm2_cell(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.4}"),
        None => "n.a.".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let t = render(
            &["Edge", "Mbit/s"],
            &[
                vec!["S/P".into(), "640".into()],
                vec!["FFT -> Channel eq.".into(), "416".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 6);
        // All rows equal width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{t}");
        assert!(t.contains("| S/P"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = render(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn vs_formats_error() {
        let s = vs(110.0, 100.0, "MHz");
        assert!(s.contains("+10.0%"), "{s}");
    }

    #[test]
    fn mm2_cells() {
        assert_eq!(mm2_cell(Some(0.0258)), "0.0258");
        assert_eq!(mm2_cell(None), "n.a.");
    }
}
