//! The multi-tenant fleet engine: hundreds-to-thousands of concurrent
//! [`Deployment`]s stepped in lockstep batches, with snapshot/restore,
//! phase-shifting workloads and aggregate SLO reporting.
//!
//! The paper's CCN manages *one* SoC; a capacity study needs populations.
//! A [`Fleet`] owns N tenants — each an independent
//! `Deployment<FabricController>` with its own fabric, admission policy
//! and offered-load profile — and advances them one *batch* (a fixed
//! number of cycles) at a time, fanning the per-tenant stepping out over
//! the shared worker pool ([`noc_sim::par`]). Tenants inside the pool
//! step their own fabrics sequentially ([`ParPolicy::Sequential`]): the
//! fleet-level fan-out is the parallelism, one tenant per lane, and
//! nested dispatch would only fight it for workers.
//!
//! Three capabilities ride on that population:
//!
//! * **Lifecycle** — tenants move
//!   [`TenantState::Admitted`] → [`TenantState::Running`] →
//!   [`TenantState::Draining`] → [`TenantState::Retired`]; draining stops
//!   offered load and settles in-flight words to zero before the tenant
//!   leaves the census, so retirement is loss-free by construction.
//! * **Snapshot/restore** — [`Fleet::snapshot`] captures every tenant's
//!   full state (fabric, controller policy state, traffic generators,
//!   delivery ledgers) at a batch boundary; [`Fleet::restore`] into a
//!   fleet built from the same specs resumes it. Because workload phases
//!   are pure functions of the fleet cycle counter
//!   ([`PhaseProfile::scale`]), a restored fleet replays the remaining
//!   batches *bit-identically* — the final [`FleetSloReport`]s compare
//!   equal, which the determinism suite asserts.
//! * **SLO reporting** — [`Fleet::slo_report`] aggregates per-tenant
//!   payload conservation, GT/BE p95 service latencies and their gap,
//!   admission latency (§5.1 reconfiguration waits) and the control
//!   plane's eviction-hygiene counters ([`ControllerStats`]) into one
//!   integer-only, exactly-comparable report.
//!
//! [`flap_probe`] is the packaged eviction-stability experiment: the same
//! bursty tenant run under raw single-window [`LoadDemotion`] and under
//! [`LoadDemotion::hardened`] (EWMA + minimum dwell), returning both
//! flap counts. The hardened policy must show zero.

use crate::json::Json;
use noc_apps::taskgraph::TaskGraph;
use noc_apps::workload::PhaseProfile;
use noc_core::params::RouterParams;
use noc_mesh::ccn::Ccn;
use noc_mesh::controller::{AdmissionPolicy, ControllerStats, FabricController, LoadDemotion};
use noc_mesh::deployment::{DeployError, Deployment, DeploymentSnapshot};
use noc_mesh::fabric::{Fabric, FabricKind, SnapshotError};
use noc_mesh::stream::{best_p95, worst_p95, ProvisionMode, StreamPlane};
use noc_mesh::topology::Mesh;
use noc_sim::par::{par_for_each_mut, ParPolicy};
use noc_sim::time::CycleCount;
use noc_sim::units::MegaHertz;
use std::fmt;

/// Everything needed to (re)build one tenant: the application, the
/// substrate, the control plane and the offered-load profile. Cloneable —
/// the admission policy is stamped out through
/// [`AdmissionPolicy::box_clone`] — so the same spec list can build the
/// original fleet *and* the fresh fleet a snapshot restores into.
#[derive(Debug)]
pub struct TenantSpec {
    /// Tenant name (reported in the SLO census).
    pub name: String,
    /// The application task graph.
    pub graph: TaskGraph,
    /// Mesh dimensions (width, height).
    pub mesh: (usize, usize),
    /// SoC clock.
    pub clock: MegaHertz,
    /// Traffic seed.
    pub seed: u64,
    /// Fabric backend.
    pub kind: FabricKind,
    /// Optional chiplet grid: `Some((cw, ch))` deploys the tenant on a
    /// [`noc_mesh::chiplet::ChipletFabric`] — a `cw × ch` grid of
    /// per-chiplet `kind` planes stitched by NoI entry routers — instead
    /// of a flat fabric. The grid must divide the mesh dimensions.
    pub chiplets: Option<(usize, usize)>,
    /// Spill-tolerant admission (the hybrid backend always spills).
    pub spill: bool,
    /// Offered-load profile applied across the tenant's streams.
    pub workload: PhaseProfile,
    /// Admission policy for the tenant's [`FabricController`]
    /// (`None` = the controller's default).
    pub policy: Option<Box<dyn AdmissionPolicy>>,
    /// Cycles between control-plane ticks.
    pub tick_window: CycleCount,
    /// How the cold-start configuration reaches the routers.
    /// [`ProvisionMode::BeDelivered`] charges each circuit's §5.1
    /// delivery wait to its admission latency.
    pub provisioning: ProvisionMode,
}

impl Clone for TenantSpec {
    fn clone(&self) -> TenantSpec {
        TenantSpec {
            name: self.name.clone(),
            graph: self.graph.clone(),
            mesh: self.mesh,
            clock: self.clock,
            seed: self.seed,
            kind: self.kind,
            chiplets: self.chiplets,
            spill: self.spill,
            workload: self.workload,
            policy: self.policy.as_ref().map(|p| p.box_clone()),
            tick_window: self.tick_window,
            provisioning: self.provisioning,
        }
    }
}

impl TenantSpec {
    /// A spec with the deployment builder's defaults: 4×4 mesh, 100 MHz,
    /// circuit backend, strict admission, steady workload, default
    /// control-plane policy and window.
    pub fn new(name: impl Into<String>, graph: TaskGraph) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            graph,
            mesh: (4, 4),
            clock: MegaHertz(100.0),
            seed: 0,
            kind: FabricKind::Circuit,
            chiplets: None,
            spill: false,
            workload: PhaseProfile::Steady,
            policy: None,
            tick_window: FabricController::DEFAULT_WINDOW,
            provisioning: ProvisionMode::Instant,
        }
    }

    /// Mesh dimensions.
    pub fn mesh(mut self, width: usize, height: usize) -> TenantSpec {
        self.mesh = (width, height);
        self
    }

    /// SoC clock.
    pub fn clock(mut self, clock: MegaHertz) -> TenantSpec {
        self.clock = clock;
        self
    }

    /// Traffic seed.
    pub fn seed(mut self, seed: u64) -> TenantSpec {
        self.seed = seed;
        self
    }

    /// Fabric backend.
    pub fn fabric(mut self, kind: FabricKind) -> TenantSpec {
        self.kind = kind;
        self
    }

    /// Deploy on a `cw × ch` chiplet grid of `kind` planes instead of a
    /// flat fabric (the grid must divide the mesh dimensions).
    pub fn chiplets(mut self, cw: usize, ch: usize) -> TenantSpec {
        self.chiplets = Some((cw, ch));
        self
    }

    /// Spill-tolerant admission.
    pub fn spill(mut self, spill: bool) -> TenantSpec {
        self.spill = spill;
        self
    }

    /// Offered-load profile.
    pub fn workload(mut self, workload: PhaseProfile) -> TenantSpec {
        self.workload = workload;
        self
    }

    /// Control-plane admission policy.
    pub fn policy(mut self, policy: Box<dyn AdmissionPolicy>) -> TenantSpec {
        self.policy = Some(policy);
        self
    }

    /// Cycles between control-plane ticks.
    pub fn tick_window(mut self, cycles: CycleCount) -> TenantSpec {
        self.tick_window = cycles;
        self
    }

    /// Cold-start provisioning mode.
    pub fn provisioning(mut self, mode: ProvisionMode) -> TenantSpec {
        self.provisioning = mode;
        self
    }
}

/// Where a tenant is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantState {
    /// Admitted and provisioned; runs from the next batch.
    Admitted,
    /// Carrying offered load.
    Running,
    /// Offered load stopped; settling in-flight words to zero.
    Draining,
    /// Quiescent: everything accepted was delivered; no longer stepped.
    Retired,
}

impl TenantState {
    /// A short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            TenantState::Admitted => "admitted",
            TenantState::Running => "running",
            TenantState::Draining => "draining",
            TenantState::Retired => "retired",
        }
    }
}

/// One fleet member: a controlled deployment plus its lifecycle state and
/// offered-load profile.
#[derive(Debug)]
pub struct Tenant {
    name: String,
    workload: PhaseProfile,
    dep: Deployment<FabricController>,
    state: TenantState,
    /// Fleet cycle at which the tenant was admitted.
    admitted_at: CycleCount,
}

impl Tenant {
    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current lifecycle state.
    pub fn state(&self) -> TenantState {
        self.state
    }

    /// The tenant's deployment (fabric, controller, ledgers).
    pub fn deployment(&self) -> &Deployment<FabricController> {
        &self.dep
    }

    /// Per-tenant SLO numbers, derived from the deployment's ledgers, the
    /// fabric's per-stream telemetry and the controller's counters.
    pub fn slo(&self) -> TenantSlo {
        let stats = self.dep.fabric().stream_stats();
        let gt_p95 = worst_p95(&stats, StreamPlane::Circuit);
        let be_p95 = best_p95(&stats, StreamPlane::Spilled);
        TenantSlo {
            name: self.name.clone(),
            state: self.state,
            injected: self.dep.total_injected(),
            delivered: self.dep.total_delivered(),
            in_flight: self.dep.total_injected() - self.dep.total_delivered(),
            overflows: self.dep.total_overflows(),
            gt_p95,
            be_p95,
            service_gap: match (gt_p95, be_p95) {
                (Some(gt), Some(be)) => Some(be as i64 - gt as i64),
                _ => None,
            },
            admission_latency: stats.iter().map(|s| s.reconfig_cycles).max().unwrap_or(0),
            controller: self.dep.fabric().controller_stats(),
        }
    }
}

/// Why a fleet snapshot could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetRestoreError {
    /// The target fleet has a different tenant census than the snapshot —
    /// it was not built from the same spec list in the same order.
    Shape {
        /// Tenants in the target fleet.
        expected: usize,
        /// Tenants in the snapshot.
        found: usize,
    },
    /// A tenant's fabric refused its snapshot (backend mismatch).
    Tenant {
        /// Index of the offending tenant.
        index: usize,
        /// The underlying fabric error.
        source: SnapshotError,
    },
}

impl fmt::Display for FleetRestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetRestoreError::Shape { expected, found } => write!(
                f,
                "fleet snapshot holds {found} tenants but the target fleet has {expected}"
            ),
            FleetRestoreError::Tenant { index, source } => {
                write!(f, "tenant {index} refused its snapshot: {source}")
            }
        }
    }
}

impl std::error::Error for FleetRestoreError {}

/// A batch-boundary checkpoint of a whole [`Fleet`]: every tenant's
/// [`DeploymentSnapshot`] plus the lifecycle states and the fleet clock.
/// Restore into a fleet built from the same [`TenantSpec`] list.
#[derive(Debug)]
pub struct FleetSnapshot {
    batch_cycles: CycleCount,
    batches_run: u64,
    cycles_run: CycleCount,
    tenants: Vec<TenantCheckpoint>,
}

#[derive(Debug)]
struct TenantCheckpoint {
    state: TenantState,
    admitted_at: CycleCount,
    dep: DeploymentSnapshot,
}

impl FleetSnapshot {
    /// Batches the captured fleet had run.
    pub fn batches_run(&self) -> u64 {
        self.batches_run
    }

    /// Tenants in the captured census.
    pub fn tenants(&self) -> usize {
        self.tenants.len()
    }
}

/// A population of concurrent tenants stepped in lockstep batches over
/// the shared worker pool. See the module docs for the lifecycle,
/// snapshot and reporting model.
#[derive(Debug)]
pub struct Fleet {
    tenants: Vec<Tenant>,
    batch_cycles: CycleCount,
    batches_run: u64,
    cycles_run: CycleCount,
    parallelism: ParPolicy,
}

impl Fleet {
    /// An empty fleet advancing `batch_cycles` cycles per
    /// [`Fleet::step_batch`], fanned out under [`ParPolicy::Auto`].
    ///
    /// # Panics
    /// Panics when `batch_cycles` is zero.
    pub fn new(batch_cycles: CycleCount) -> Fleet {
        assert!(batch_cycles > 0, "a fleet batch must advance time");
        Fleet {
            tenants: Vec::new(),
            batch_cycles,
            batches_run: 0,
            cycles_run: 0,
            parallelism: ParPolicy::Auto,
        }
    }

    /// Override the fleet-level fan-out policy (tenants per batch are
    /// stepped through [`par_for_each_mut`] under it). Every policy
    /// produces bit-identical results; this only trades dispatch overhead
    /// against multi-core throughput.
    pub fn parallelism(mut self, policy: ParPolicy) -> Fleet {
        self.parallelism = policy;
        self
    }

    /// Build and admit one tenant from `spec`. The tenant's fabric steps
    /// sequentially inside the fleet's fan-out (nested dispatch would
    /// fight the pool), and its controller is concretely typed so SLO
    /// reporting reads [`FabricController::controller_stats`] directly.
    /// Returns the tenant's index.
    pub fn admit(&mut self, spec: &TenantSpec) -> Result<usize, DeployError> {
        let mut builder = Deployment::builder(&spec.graph)
            .mesh(spec.mesh.0, spec.mesh.1)
            .clock(spec.clock)
            .seed(spec.seed)
            .fabric(spec.kind)
            .spill(spec.spill)
            .parallelism(ParPolicy::Sequential)
            .provisioning(spec.provisioning)
            .tick_window(spec.tick_window);
        if let Some((cw, ch)) = spec.chiplets {
            builder = builder.chiplets(cw, ch);
        }
        if let Some(policy) = &spec.policy {
            builder = builder.policy(policy.box_clone());
        }
        let dep = builder.build_controlled()?;
        self.tenants.push(Tenant {
            name: spec.name.clone(),
            workload: spec.workload,
            dep,
            state: TenantState::Admitted,
            admitted_at: self.cycles_run,
        });
        Ok(self.tenants.len() - 1)
    }

    /// The tenant census.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// Number of tenants ever admitted (retired tenants stay in the
    /// census — their ledgers are part of the final report).
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// `true` when no tenant was ever admitted.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Batches run so far.
    pub fn batches_run(&self) -> u64 {
        self.batches_run
    }

    /// Fleet cycles elapsed (`batches_run × batch_cycles`).
    pub fn cycles_run(&self) -> CycleCount {
        self.cycles_run
    }

    /// Cycles per batch.
    pub fn batch_cycles(&self) -> CycleCount {
        self.batch_cycles
    }

    /// Advance every non-retired tenant by one batch. Workload phases are
    /// sampled once at the batch's start cycle (a pure function of the
    /// fleet clock, so replays re-derive identical phases) and held for
    /// the batch; the stepping itself fans out over the worker pool, one
    /// tenant per lane. Draining tenants settle instead of running and
    /// retire once their fabric is quiescent.
    pub fn step_batch(&mut self) {
        let now = self.cycles_run;
        let batch = self.batch_cycles;
        for t in &mut self.tenants {
            if matches!(t.state, TenantState::Admitted | TenantState::Running) {
                let n = t.dep.traffic_streams();
                for i in 0..n {
                    t.dep.set_load_scale(i, t.workload.scale(now, i, n));
                }
            }
        }
        par_for_each_mut(&mut self.tenants, self.parallelism, |t| match t.state {
            TenantState::Admitted | TenantState::Running => {
                t.state = TenantState::Running;
                t.dep.run(batch);
            }
            TenantState::Draining => {
                t.dep.settle(batch);
                if t.dep.fabric().is_quiescent() {
                    t.state = TenantState::Retired;
                }
            }
            TenantState::Retired => {}
        });
        self.batches_run += 1;
        self.cycles_run += batch;
    }

    /// Run `n` batches.
    pub fn run_batches(&mut self, n: u64) {
        for _ in 0..n {
            self.step_batch();
        }
    }

    /// Begin retiring tenant `index`: stop its offered load on every
    /// stream and mark it [`TenantState::Draining`]. Subsequent batches
    /// settle its in-flight words; it retires at the first batch boundary
    /// where its fabric is quiescent. Already-draining/retired tenants
    /// are left alone.
    pub fn drain(&mut self, index: usize) {
        let t = &mut self.tenants[index];
        if matches!(t.state, TenantState::Draining | TenantState::Retired) {
            return;
        }
        for stats in t.dep.fabric().stream_stats() {
            t.dep.stop_traffic(stats.id);
        }
        t.state = TenantState::Draining;
    }

    /// [`Fleet::drain`] every tenant.
    pub fn drain_all(&mut self) {
        for i in 0..self.tenants.len() {
            self.drain(i);
        }
    }

    /// Drain every tenant and step batches until the whole census is
    /// [`TenantState::Retired`] (or `max_batches` elapse). Returns `true`
    /// when everything retired — i.e. every accepted word was delivered
    /// and all fabrics are quiescent.
    pub fn retire_all(&mut self, max_batches: u64) -> bool {
        self.drain_all();
        for _ in 0..max_batches {
            if self.all_retired() {
                return true;
            }
            self.step_batch();
        }
        self.all_retired()
    }

    fn all_retired(&self) -> bool {
        self.tenants.iter().all(|t| t.state == TenantState::Retired)
    }

    /// Checkpoint the whole fleet at the current batch boundary.
    pub fn snapshot(&self) -> FleetSnapshot {
        FleetSnapshot {
            batch_cycles: self.batch_cycles,
            batches_run: self.batches_run,
            cycles_run: self.cycles_run,
            tenants: self
                .tenants
                .iter()
                .map(|t| TenantCheckpoint {
                    state: t.state,
                    admitted_at: t.admitted_at,
                    dep: t.dep.snapshot(),
                })
                .collect(),
        }
    }

    /// Replace this fleet's state with `snapshot`'s. The target must hold
    /// the same tenant census — normally a fresh fleet built by
    /// re-[`Fleet::admit`]ing the same [`TenantSpec`] list in the same
    /// order. Continuing from a restored fleet is bit-identical to never
    /// pausing: the remaining batches replay the exact same phases,
    /// injections and policy decisions, so the final [`FleetSloReport`]s
    /// compare equal.
    pub fn restore(&mut self, snapshot: &FleetSnapshot) -> Result<(), FleetRestoreError> {
        if self.tenants.len() != snapshot.tenants.len() {
            return Err(FleetRestoreError::Shape {
                expected: self.tenants.len(),
                found: snapshot.tenants.len(),
            });
        }
        for (index, (t, cp)) in self
            .tenants
            .iter_mut()
            .zip(snapshot.tenants.iter())
            .enumerate()
        {
            t.dep
                .restore(&cp.dep)
                .map_err(|source| FleetRestoreError::Tenant { index, source })?;
            t.state = cp.state;
            t.admitted_at = cp.admitted_at;
        }
        self.batch_cycles = snapshot.batch_cycles;
        self.batches_run = snapshot.batches_run;
        self.cycles_run = snapshot.cycles_run;
        Ok(())
    }

    /// The aggregate SLO report over the current census. Every field is
    /// an integer (cycle counts, word counts, controller counters), so
    /// two reports from bit-identical runs compare `==` — the property
    /// the replay determinism gate asserts.
    pub fn slo_report(&self) -> FleetSloReport {
        let tenants: Vec<TenantSlo> = self.tenants.iter().map(Tenant::slo).collect();
        let census =
            |state: TenantState| self.tenants.iter().filter(|t| t.state == state).count() as u64;
        let mut controller = ControllerStats::default();
        for slo in &tenants {
            let c = slo.controller;
            controller.ticks += c.ticks;
            controller.promotions += c.promotions;
            controller.demotions += c.demotions;
            controller.readmissions += c.readmissions;
            controller.lost += c.lost;
            controller.suppressed_evictions += c.suppressed_evictions;
            controller.pointless_evictions += c.pointless_evictions;
        }
        FleetSloReport {
            batches: self.batches_run,
            batch_cycles: self.batch_cycles,
            injected: tenants.iter().map(|t| t.injected).sum(),
            delivered: tenants.iter().map(|t| t.delivered).sum(),
            overflows: tenants.iter().map(|t| t.overflows).sum(),
            admitted: census(TenantState::Admitted),
            running: census(TenantState::Running),
            draining: census(TenantState::Draining),
            retired: census(TenantState::Retired),
            worst_gt_p95: tenants.iter().filter_map(|t| t.gt_p95).max(),
            worst_be_p95: tenants.iter().filter_map(|t| t.be_p95).max(),
            max_admission_latency: tenants
                .iter()
                .map(|t| t.admission_latency)
                .max()
                .unwrap_or(0),
            eviction_flaps: controller.pointless_evictions,
            controller,
            tenants,
        }
    }
}

/// One tenant's SLO numbers. Integer-only, so reports compare exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSlo {
    /// Tenant name.
    pub name: String,
    /// Lifecycle state at report time.
    pub state: TenantState,
    /// Payload words accepted from the tenant's generators.
    pub injected: u64,
    /// Payload words delivered to destination tiles.
    pub delivered: u64,
    /// `injected − delivered`: words still in flight (zero once retired).
    pub in_flight: u64,
    /// Payload lost anywhere in the fabric (zero under correct flow
    /// control).
    pub overflows: u64,
    /// Worst p95 service latency among the tenant's circuit (GT) streams.
    pub gt_p95: Option<u64>,
    /// Best p95 service latency among the tenant's spilled (BE) streams.
    pub be_p95: Option<u64>,
    /// `be_p95 − gt_p95`: the guaranteed-throughput service gap — how
    /// many cycles of p95 latency a circuit buys over the packet plane.
    pub service_gap: Option<i64>,
    /// Largest §5.1 reconfiguration wait charged to any of the tenant's
    /// streams before it could carry traffic (admission latency).
    pub admission_latency: u64,
    /// The tenant controller's lifecycle counters.
    pub controller: ControllerStats,
}

impl TenantSlo {
    /// The tenant's row in `BENCH_fleet.json`.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("name", self.name.as_str())
            .with("state", self.state.label())
            .with("injected", self.injected)
            .with("delivered", self.delivered)
            .with("in_flight", self.in_flight)
            .with("overflows", self.overflows)
            .with("gt_p95", self.gt_p95)
            .with("be_p95", self.be_p95)
            .with("service_gap", self.service_gap.map(Json::Int))
            .with("admission_latency", self.admission_latency)
            .with("promotions", self.controller.promotions)
            .with("demotions", self.controller.demotions)
            .with("eviction_flaps", self.controller.pointless_evictions)
    }
}

/// The fleet-wide SLO aggregate: payload conservation, lifecycle census,
/// latency extremes and the summed control-plane counters. Integer-only
/// and `Eq` — two bit-identical runs produce `==` reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSloReport {
    /// Batches run.
    pub batches: u64,
    /// Cycles per batch.
    pub batch_cycles: CycleCount,
    /// Total payload words accepted across the fleet.
    pub injected: u64,
    /// Total payload words delivered across the fleet.
    pub delivered: u64,
    /// Total payload lost across the fleet (zero under correct flow
    /// control).
    pub overflows: u64,
    /// Tenants admitted but not yet stepped.
    pub admitted: u64,
    /// Tenants carrying offered load.
    pub running: u64,
    /// Tenants settling towards retirement.
    pub draining: u64,
    /// Tenants fully retired (loss-free by construction).
    pub retired: u64,
    /// Worst GT p95 service latency anywhere in the fleet.
    pub worst_gt_p95: Option<u64>,
    /// Worst BE p95 service latency anywhere in the fleet.
    pub worst_be_p95: Option<u64>,
    /// Largest admission latency (reconfiguration wait) anywhere.
    pub max_admission_latency: u64,
    /// Total demote/readmit flaps (summed `pointless_evictions`) — the
    /// eviction-churn headline number.
    pub eviction_flaps: u64,
    /// Control-plane counters summed over every tenant controller.
    pub controller: ControllerStats,
    /// The per-tenant rows.
    pub tenants: Vec<TenantSlo>,
}

impl FleetSloReport {
    /// `true` when every word accepted anywhere was delivered and nothing
    /// overflowed — the zero-loss SLO the bench gate enforces.
    pub fn loss_free(&self) -> bool {
        self.injected == self.delivered && self.overflows == 0
    }

    /// The report as a `BENCH_fleet.json` fragment (aggregates plus the
    /// per-tenant rows).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("batches", self.batches)
            .with("batch_cycles", self.batch_cycles)
            .with("injected", self.injected)
            .with("delivered", self.delivered)
            .with("overflows", self.overflows)
            .with("loss_free", self.loss_free())
            .with(
                "census",
                Json::obj()
                    .with("admitted", self.admitted)
                    .with("running", self.running)
                    .with("draining", self.draining)
                    .with("retired", self.retired),
            )
            .with("worst_gt_p95", self.worst_gt_p95)
            .with("worst_be_p95", self.worst_be_p95)
            .with("max_admission_latency", self.max_admission_latency)
            .with("eviction_flaps", self.eviction_flaps)
            .with(
                "controller",
                Json::obj()
                    .with("ticks", self.controller.ticks)
                    .with("promotions", self.controller.promotions)
                    .with("demotions", self.controller.demotions)
                    .with("readmissions", self.controller.readmissions)
                    .with("lost", self.controller.lost)
                    .with("suppressed_evictions", self.controller.suppressed_evictions)
                    .with("pointless_evictions", self.controller.pointless_evictions),
            )
            .with(
                "tenants",
                Json::Array(self.tenants.iter().map(TenantSlo::to_json).collect()),
            )
    }
}

/// The outcome of [`flap_probe`]: the same bursty tenant's eviction
/// behaviour under the raw single-window [`LoadDemotion`] baseline and
/// under [`LoadDemotion::hardened`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlapProbe {
    /// Demote/readmit flaps under the unhardened baseline.
    pub baseline_flaps: u64,
    /// Flaps the baseline's cooldown additionally had to suppress.
    pub baseline_suppressed: u64,
    /// Flaps under the hardened (EWMA + min-dwell) policy. Must be zero.
    pub hardened_flaps: u64,
    /// Demotions the hardened policy started at all. Must be zero.
    pub hardened_demotions: u64,
}

impl FlapProbe {
    /// The hardening claim: the bursty circuit flaps under raw
    /// measurement and never under EWMA + minimum dwell.
    pub fn hardening_holds(&self) -> bool {
        self.baseline_flaps > 0 && self.hardened_flaps == 0 && self.hardened_demotions == 0
    }

    /// The probe's `BENCH_fleet.json` fragment.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("baseline_flaps", self.baseline_flaps)
            .with("baseline_suppressed", self.baseline_suppressed)
            .with("hardened_flaps", self.hardened_flaps)
            .with("hardened_demotions", self.hardened_demotions)
            .with("hardening_holds", self.hardening_holds())
    }
}

/// The packaged eviction-stability experiment behind the
/// `fleet_bench --smoke` gate: one oversubscribed tenant (the canonical
/// 3×1 line at 25 MHz — a heavy GT circuit plus a spilled stream keeping
/// demotion pressure alive) driven by a bursty on/off profile aligned to
/// the 64-cycle policy window (three windows on, one off), run for
/// `batches` windows under the raw [`LoadDemotion`] baseline and again
/// under [`LoadDemotion::hardened`]. The raw measurement reads every
/// off-window as abandonment and flaps; the EWMA + minimum-dwell policy
/// must ride the bursts out without a single demotion.
pub fn flap_probe(batches: u64) -> FlapProbe {
    let run = |policy: Box<dyn AdmissionPolicy>| -> ControllerStats {
        let ccn = Ccn::new(Mesh::new(3, 1), RouterParams::paper(), MegaHertz(25.0));
        let graph = noc_apps::synthetic::oversubscribed_line(ccn.lane_capacity());
        let spec = TenantSpec::new("flap-probe", graph)
            .mesh(3, 1)
            .clock(MegaHertz(25.0))
            .seed(17)
            .fabric(FabricKind::Hybrid)
            .workload(PhaseProfile::BurstyOnOff {
                period: 256,
                on: 192,
            })
            .policy(policy)
            .tick_window(64);
        let mut fleet = Fleet::new(64).parallelism(ParPolicy::Sequential);
        fleet.admit(&spec).expect("the probe tenant always admits");
        fleet.run_batches(batches);
        fleet.tenants()[0].deployment().fabric().controller_stats()
    };
    let floor = 0.25;
    let baseline = run(Box::new(LoadDemotion::new(MegaHertz(25.0), floor)));
    let hardened = run(Box::new(LoadDemotion::hardened(MegaHertz(25.0), floor)));
    FlapProbe {
        baseline_flaps: baseline.pointless_evictions,
        baseline_suppressed: baseline.suppressed_evictions,
        hardened_flaps: hardened.pointless_evictions,
        hardened_demotions: hardened.demotions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_apps::synthetic::streaming_pipeline;
    use noc_sim::units::Bandwidth;

    fn small_fleet(tenants: usize) -> (Fleet, Vec<TenantSpec>) {
        let specs: Vec<TenantSpec> = (0..tenants)
            .map(|i| {
                let kind = FabricKind::ALL[i % FabricKind::ALL.len()];
                TenantSpec::new(
                    format!("tenant-{i}"),
                    streaming_pipeline(3, Bandwidth(60.0)),
                )
                .mesh(3, 3)
                .seed(i as u64)
                .fabric(kind)
                .workload(match i % 3 {
                    0 => PhaseProfile::Steady,
                    1 => PhaseProfile::DiurnalRamp {
                        period: 512,
                        floor: 0.3,
                    },
                    _ => PhaseProfile::HotspotFlip {
                        period: 128,
                        background: 0.2,
                    },
                })
            })
            .collect();
        let mut fleet = Fleet::new(64);
        for spec in &specs {
            fleet.admit(spec).expect("feasible tenants admit");
        }
        (fleet, specs)
    }

    #[test]
    fn a_fleet_runs_and_retires_loss_free() {
        let (mut fleet, _) = small_fleet(6);
        assert!(fleet
            .tenants()
            .iter()
            .all(|t| t.state() == TenantState::Admitted));
        fleet.run_batches(8);
        assert!(fleet
            .tenants()
            .iter()
            .all(|t| t.state() == TenantState::Running));
        assert!(fleet.retire_all(200), "every tenant settles to quiescence");
        let report = fleet.slo_report();
        assert_eq!(report.retired, 6);
        assert!(report.injected > 0);
        assert!(report.loss_free(), "retirement is loss-free: {report:?}");
        assert!(report
            .tenants
            .iter()
            .all(|t| t.in_flight == 0 && t.overflows == 0));
    }

    #[test]
    fn a_restored_fleet_replays_bit_identically() {
        let (mut original, specs) = small_fleet(4);
        original.run_batches(5);
        let checkpoint = original.snapshot();
        original.run_batches(5);
        original.retire_all(200);
        let final_report = original.slo_report();

        let mut replay = Fleet::new(64);
        for spec in &specs {
            replay.admit(spec).unwrap();
        }
        replay.restore(&checkpoint).expect("same census restores");
        assert_eq!(replay.batches_run(), 5);
        replay.run_batches(5);
        replay.retire_all(200);
        assert_eq!(
            replay.slo_report(),
            final_report,
            "replay from the checkpoint diverged"
        );
    }

    #[test]
    fn a_chiplet_tenant_runs_and_replays_bit_identically() {
        // A mixed census: one chiplet-hierarchy tenant (2×2 grid of hybrid
        // planes on a 4×4 mesh — six pipeline stages force cross-chiplet
        // streams through the NoI) next to a flat tenant. Both the
        // loss-free retirement SLO and the mid-run snapshot/replay gate
        // must hold over the chiplet fabric's full state.
        let specs = vec![
            TenantSpec::new("chiplet-0", streaming_pipeline(6, Bandwidth(60.0)))
                .mesh(4, 4)
                .seed(7)
                .fabric(FabricKind::Hybrid)
                .chiplets(2, 2)
                .workload(PhaseProfile::DiurnalRamp {
                    period: 512,
                    floor: 0.3,
                }),
            TenantSpec::new("flat-1", streaming_pipeline(3, Bandwidth(60.0)))
                .mesh(3, 3)
                .seed(8)
                .fabric(FabricKind::Circuit),
        ];
        let build = || {
            let mut fleet = Fleet::new(64);
            for spec in &specs {
                fleet.admit(spec).expect("feasible tenants admit");
            }
            fleet
        };
        let mut original = build();
        original.run_batches(5);
        let checkpoint = original.snapshot();
        original.run_batches(5);
        assert!(original.retire_all(200), "chiplet tenant settles");
        let final_report = original.slo_report();
        assert!(final_report.loss_free(), "{final_report:?}");
        assert!(final_report.tenants[0].injected > 0);

        let mut replay = build();
        replay.restore(&checkpoint).expect("same census restores");
        replay.run_batches(5);
        replay.retire_all(200);
        assert_eq!(
            replay.slo_report(),
            final_report,
            "chiplet replay from the checkpoint diverged"
        );
    }

    #[test]
    fn restore_refuses_a_different_census() {
        let (fleet_a, _) = small_fleet(3);
        let (mut fleet_b, _) = small_fleet(2);
        let err = fleet_b.restore(&fleet_a.snapshot()).unwrap_err();
        assert_eq!(
            err,
            FleetRestoreError::Shape {
                expected: 2,
                found: 3
            }
        );
    }

    #[test]
    fn hardened_demotion_is_flap_free_where_the_baseline_flaps() {
        let probe = flap_probe(40);
        assert!(
            probe.baseline_flaps > 0,
            "premise: raw measurement flaps the bursty circuit: {probe:?}"
        );
        assert_eq!(probe.hardened_flaps, 0, "{probe:?}");
        assert_eq!(probe.hardened_demotions, 0, "{probe:?}");
        assert!(probe.hardening_holds());
    }

    #[test]
    fn slo_report_serialises_to_json() {
        let (mut fleet, _) = small_fleet(2);
        fleet.run_batches(4);
        let text = fleet.slo_report().to_json().pretty();
        assert!(text.contains("\"loss_free\""));
        assert!(text.contains("\"tenant-0\""));
        assert!(text.contains("\"eviction_flaps\""));
    }
}
