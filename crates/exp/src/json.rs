//! A minimal JSON document model with a hand-rolled serialiser.
//!
//! The container vendors a no-op `serde`, so machine-readable bench
//! artefacts (`BENCH_scale.json`, `BENCH_fleet.json`) are emitted through
//! this module instead: a [`Json`] tree built by hand, printed compact via
//! [`fmt::Display`] or indented via [`Json::pretty`]. Objects keep their
//! insertion order (a `Vec` of pairs, not a map), so serialised output is
//! stable across runs — which matters because the checked-in bench
//! artefacts are diffed in review.

use std::fmt;

/// A JSON value. Build with the `From` impls and [`Json::obj`] /
/// [`Json::push`]; serialise with `to_string()` (compact) or
/// [`Json::pretty`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (kept apart from [`Json::Int`] so `u64`
    /// counters above `i64::MAX` survive).
    UInt(u64),
    /// A finite float. Non-finite values serialise as `null` (JSON has no
    /// `NaN`/`inf`).
    Float(f64),
    /// A string (escaped on output).
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object, in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, ready for [`Json::push`].
    pub fn obj() -> Json {
        Json::Object(Vec::new())
    }

    /// Append `key: value` to an object.
    ///
    /// # Panics
    /// Panics when `self` is not [`Json::Object`].
    pub fn push(&mut self, key: &str, value: impl Into<Json>) {
        match self {
            Json::Object(pairs) => pairs.push((key.to_string(), value.into())),
            other => panic!("Json::push on a non-object: {other:?}"),
        }
    }

    /// Builder-style [`Json::push`].
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.push(key, value);
        self
    }

    /// The document serialised with two-space indentation and a trailing
    /// newline — the format the checked-in `BENCH_*.json` artefacts use.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    out.push_str(&format!("{}: ", Json::Str(key.clone())));
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            leaf => out.push_str(&leaf.to_string()),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::UInt(u) => write!(f, "{u}"),
            Json::Float(x) if x.is_finite() => write!(f, "{x}"),
            Json::Float(_) => write!(f, "null"),
            Json::Str(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\r' => write!(f, "\\r")?,
                        '\t' => write!(f, "\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
            Json::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Object(pairs) => {
                write!(f, "{{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{value}", Json::Str(key.clone()))?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::UInt(u)
    }
}

impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::UInt(u as u64)
    }
}

impl From<u32> for Json {
    fn from(u: u32) -> Json {
        Json::UInt(u64::from(u))
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        match v {
            Some(x) => x.into(),
            None => Json::Null,
        }
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_is_valid_json() {
        let doc = Json::obj()
            .with("name", "fleet")
            .with("tenants", 200u64)
            .with("loss", 0u64)
            .with("rate", 1.5)
            .with("gap", Option::<u64>::None)
            .with("tags", vec!["a", "b"]);
        assert_eq!(
            doc.to_string(),
            r#"{"name":"fleet","tenants":200,"loss":0,"rate":1.5,"gap":null,"tags":["a","b"]}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(s.to_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn pretty_output_indents_and_terminates() {
        let doc = Json::obj()
            .with("xs", vec![1u64, 2])
            .with("empty", Json::obj());
        let text = doc.pretty();
        assert!(text.ends_with("}\n"));
        assert!(text.contains("  \"xs\": [\n    1,\n    2\n  ]"));
        assert!(text.contains("\"empty\": {}"));
    }
}
