//! A minimal JSON document model with a hand-rolled serialiser and parser.
//!
//! The container vendors a no-op `serde`, so machine-readable bench
//! artefacts (`BENCH_scale.json`, `BENCH_fleet.json`) are emitted through
//! this module instead: a [`Json`] tree built by hand, printed compact via
//! [`fmt::Display`] or indented via [`Json::pretty`]. Objects keep their
//! insertion order (a `Vec` of pairs, not a map), so serialised output is
//! stable across runs — which matters because the checked-in bench
//! artefacts are diffed in review.
//!
//! [`Json::parse`] reads the same documents back (used by `scale_bench` to
//! diff a fresh sweep against the checked-in baseline), and the
//! [`Json::get`] / [`Json::as_f64`] family navigates the parsed tree.

use std::fmt;

/// A JSON value. Build with the `From` impls and [`Json::obj`] /
/// [`Json::push`]; serialise with `to_string()` (compact) or
/// [`Json::pretty`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (kept apart from [`Json::Int`] so `u64`
    /// counters above `i64::MAX` survive).
    UInt(u64),
    /// A finite float. Non-finite values serialise as `null` (JSON has no
    /// `NaN`/`inf`).
    Float(f64),
    /// A string (escaped on output).
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object, in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, ready for [`Json::push`].
    pub fn obj() -> Json {
        Json::Object(Vec::new())
    }

    /// Append `key: value` to an object.
    ///
    /// # Panics
    /// Panics when `self` is not [`Json::Object`].
    pub fn push(&mut self, key: &str, value: impl Into<Json>) {
        match self {
            Json::Object(pairs) => pairs.push((key.to_string(), value.into())),
            other => panic!("Json::push on a non-object: {other:?}"),
        }
    }

    /// Builder-style [`Json::push`].
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.push(key, value);
        self
    }

    /// The document serialised with two-space indentation and a trailing
    /// newline — the format the checked-in `BENCH_*.json` artefacts use.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    /// Parse a JSON document (the inverse of [`fmt::Display`] /
    /// [`Json::pretty`]).
    ///
    /// Numbers without a fraction or exponent that fit an integer come
    /// back as [`Json::Int`] / [`Json::UInt`]; everything else becomes
    /// [`Json::Float`]. Trailing garbage after the document is an error.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as `f64` ([`Json::Int`], [`Json::UInt`] or
    /// [`Json::Float`]).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::UInt(u) => Some(u as f64),
            Json::Float(x) => Some(x),
            _ => None,
        }
    }

    /// Non-negative integer value as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(i) => u64::try_from(i).ok(),
            Json::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Array items.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    out.push_str(&format!("{}: ", Json::Str(key.clone())));
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            leaf => out.push_str(&leaf.to_string()),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// A [`Json::parse`] failure: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Recursive-descent parser over the raw bytes (JSON's structural
/// characters are all ASCII; string content is validated as UTF-8 on the
/// way out).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar value verbatim.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let Some(c) = rest.chars().next() else {
                        return Err(self.err("unexpected end of string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|s| std::str::from_utf8(s).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let code = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-ASCII bytes in number"))?;
        if !fractional {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Float(x)),
            _ => Err(ParseError {
                offset: start,
                message: format!("invalid number '{text}'"),
            }),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::UInt(u) => write!(f, "{u}"),
            Json::Float(x) if x.is_finite() => write!(f, "{x}"),
            Json::Float(_) => write!(f, "null"),
            Json::Str(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\r' => write!(f, "\\r")?,
                        '\t' => write!(f, "\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
            Json::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Object(pairs) => {
                write!(f, "{{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{value}", Json::Str(key.clone()))?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::UInt(u)
    }
}

impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::UInt(u as u64)
    }
}

impl From<u32> for Json {
    fn from(u: u32) -> Json {
        Json::UInt(u64::from(u))
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        match v {
            Some(x) => x.into(),
            None => Json::Null,
        }
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_is_valid_json() {
        let doc = Json::obj()
            .with("name", "fleet")
            .with("tenants", 200u64)
            .with("loss", 0u64)
            .with("rate", 1.5)
            .with("gap", Option::<u64>::None)
            .with("tags", vec!["a", "b"]);
        assert_eq!(
            doc.to_string(),
            r#"{"name":"fleet","tenants":200,"loss":0,"rate":1.5,"gap":null,"tags":["a","b"]}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(s.to_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }

    /// Adversarial float values must all serialise as *valid JSON
    /// tokens*: no `NaN`/`inf` literals, no bare exponent forms a strict
    /// parser rejects, and integral floats without a trailing `.0`.
    #[test]
    fn adversarial_floats_stay_valid_json() {
        for (value, expect) in [
            (f64::NAN, "null"),
            (f64::INFINITY, "null"),
            (f64::NEG_INFINITY, "null"),
            (-f64::NAN, "null"),
            (0.0, "0"),
            (-0.0, "-0"),
            (1.0, "1"),
            (-42.0, "-42"),
            (f64::MIN_POSITIVE, &f64::MIN_POSITIVE.to_string()),
        ] {
            let text = Json::Float(value).to_string();
            assert_eq!(text, expect, "Float({value}) serialised as {text}");
            // Whatever came out must parse back as a standalone document.
            Json::parse(&text).unwrap_or_else(|e| panic!("Float({value}) → {text}: {e}"));
        }
        // Extremes of the finite range: Rust's `Display` never emits a
        // bare `inf` or a `1e308`-style token our parser (or Python's)
        // would choke on — pin that with a round trip.
        for value in [f64::MAX, f64::MIN, 1e300, -1e-300, f64::EPSILON] {
            let text = Json::Float(value).to_string();
            assert!(
                !text.contains("inf") && !text.contains("NaN"),
                "Float({value}) serialised as {text}"
            );
            let back = Json::parse(&text).expect("round trip");
            assert_eq!(back.as_f64(), Some(value), "Float({value}) → {text}");
        }
        // Non-finite floats inside structures degrade to null too.
        let doc = Json::obj().with("rate", f64::NAN).with("xs", vec![1.5]);
        assert_eq!(doc.to_string(), r#"{"rate":null,"xs":[1.5]}"#);
    }

    #[test]
    fn parse_round_trips_bench_artefact_shapes() {
        let doc = Json::obj()
            .with("bench", "scale_bench")
            .with("cycles", 1200u64)
            .with("offset", -3i64)
            .with(
                "rows",
                Json::Array(vec![Json::obj()
                    .with("mesh", "16x16")
                    .with("seq_cycles_per_sec", 4620.5625)
                    .with("parity", true)
                    .with("gap", Json::Null)]),
            );
        for text in [doc.to_string(), doc.pretty()] {
            let back = Json::parse(&text).expect("round trip");
            assert_eq!(back, doc);
        }
        let row = &doc.get("rows").unwrap().as_array().unwrap()[0];
        assert_eq!(row.get("mesh").unwrap().as_str(), Some("16x16"));
        assert_eq!(
            row.get("seq_cycles_per_sec").unwrap().as_f64(),
            Some(4620.5625)
        );
        assert_eq!(row.get("parity").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("cycles").unwrap().as_u64(), Some(1200));
        assert_eq!(doc.get("offset").unwrap().as_f64(), Some(-3.0));
    }

    #[test]
    fn parse_handles_escapes_and_rejects_garbage() {
        let back = Json::parse(r#""a\"b\\c\nd\u0001 \ud83d\ude00""#).expect("escapes");
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\u{1} 😀"));
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "nul",
            "1.2.3",
            "NaN",
            "Infinity",
            "1e999",
            "{\"a\":1} extra",
            "\"unterminated",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted invalid input {bad:?}");
        }
        // Numbers without fraction/exponent stay integers across the
        // full u64 range; fractional forms become floats.
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("2.5e3").unwrap(), Json::Float(2500.0));
    }

    #[test]
    fn pretty_output_indents_and_terminates() {
        let doc = Json::obj()
            .with("xs", vec![1u64, 2])
            .with("empty", Json::obj());
        let text = doc.pretty();
        assert!(text.ends_with("}\n"));
        assert!(text.contains("  \"xs\": [\n    1,\n    2\n  ]"));
        assert!(text.contains("\"empty\": {}"));
    }
}
