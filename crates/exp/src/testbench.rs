//! Single-router scenario testbenches (paper Section 6).
//!
//! The measurement setup of Fig. 8: one router under test, the rest of the
//! network played by the bench. For each Table 3 stream the bench provides
//!
//! * **sources** — tile-side phit sources (stream 1) or upstream link
//!   serialisers with window-counter flow control (streams 2 and 3), at a
//!   configurable load and bit-flip pattern;
//! * **sinks** — the local tile (drained every cycle; its ack generator is
//!   part of the router) or downstream consumers that deserialise the link
//!   and return acknowledge pulses every `X` packets.
//!
//! The same scenarios drive the packet-switched router, with words grouped
//! into wormhole packets, credits returned by the bench, and destinations
//! expressed as mesh coordinates (the router under test sits at (1,1) of a
//! 3×3 mesh so every port has a neighbour).

use noc_apps::scenarios::{Endpoint, Scenario, StreamDef};
use noc_apps::traffic::{DataPattern, PhitSource, WordStream};
use noc_core::converter::{RxDeserializer, TxSerializer};
use noc_core::lane::Port;
use noc_core::params::RouterParams;
use noc_core::router::CircuitRouter;
use noc_packet::flit::Flit;
use noc_packet::params::{PacketParams, PacketPort};
use noc_packet::router::PacketRouter;
use noc_packet::routing::Coords;
use noc_packet::vc::VcId;
use noc_sim::activity::{ActivityLedger, ComponentActivity};
use noc_sim::kernel::step;
use noc_sim::time::CycleCount;
use std::collections::VecDeque;

/// What a scenario run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Cycles simulated.
    pub cycles: CycleCount,
    /// Per-component switching activity of the router under test.
    pub activity: Vec<ComponentActivity>,
    /// Payload words injected per stream (Table 3 order).
    pub injected: Vec<u64>,
    /// Payload words delivered per stream (Table 3 order).
    pub delivered: Vec<u64>,
}

impl ScenarioOutcome {
    /// Payload bytes delivered by stream `i` — the paper transports 2 kB
    /// per stream in its 200 µs window.
    pub fn delivered_bytes(&self, stream: usize) -> u64 {
        self.delivered[stream] * 2
    }
}

// ---------------------------------------------------------------------------
// Circuit-switched bench
// ---------------------------------------------------------------------------

/// Upstream network model feeding one link input lane: a phit source behind
/// a serialiser, throttled by the acks the router returns on that lane.
struct LinkFeeder {
    port: Port,
    lane: usize,
    source: PhitSource,
    tx: TxSerializer,
    credits: u16,
    ack_batch: u16,
    injected: u64,
    scratch: ActivityLedger,
}

impl LinkFeeder {
    fn new(port: Port, lane: usize, source: PhitSource, params: &RouterParams) -> LinkFeeder {
        LinkFeeder {
            port,
            lane,
            source,
            tx: TxSerializer::new(),
            credits: params.window_size,
            ack_batch: params.ack_batch,
            injected: 0,
            scratch: ActivityLedger::new(),
        }
    }

    fn drive(&mut self, router: &mut CircuitRouter) {
        if router.ack_to_upstream(self.port, self.lane) {
            self.credits = self.credits.saturating_add(self.ack_batch);
        }
        let can = self.tx.can_load() && self.credits > 0;
        if let Some(phit) = self.source.poll(can) {
            let loaded = self.tx.try_load(phit);
            debug_assert!(loaded);
            self.credits -= 1;
            self.injected += 1;
        }
        router.set_link_input(self.port, self.lane, self.tx.out_nibble());
        self.tx.eval();
        self.tx.commit(&mut self.scratch);
    }
}

/// Downstream network model consuming one link output lane: a deserialiser
/// that acknowledges every `X`-th packet on the reverse wire.
struct LinkSink {
    port: Port,
    lane: usize,
    rx: RxDeserializer,
    since_ack: u16,
    ack_batch: u16,
    received: u64,
    scratch: ActivityLedger,
}

impl LinkSink {
    fn new(port: Port, lane: usize, params: &RouterParams) -> LinkSink {
        LinkSink {
            port,
            lane,
            rx: RxDeserializer::new(),
            since_ack: 0,
            ack_batch: params.ack_batch.max(1),
            received: 0,
            scratch: ActivityLedger::new(),
        }
    }

    fn observe(&mut self, router: &mut CircuitRouter) {
        let nibble = router.link_output(self.port, self.lane);
        self.rx.eval(nibble);
        let mut ack = false;
        if self.rx.commit(&mut self.scratch).is_some() {
            self.received += 1;
            self.since_ack += 1;
            if self.since_ack >= self.ack_batch {
                self.since_ack = 0;
                ack = true;
            }
        }
        router.set_ack_input(self.port, self.lane, ack);
    }
}

/// The circuit-switched scenario bench.
pub struct CircuitScenarioBench {
    /// The router under test (public for configuration inspection).
    pub router: CircuitRouter,
    scenario: Scenario,
    tile_sources: Vec<(usize, PhitSource, usize)>, // (lane, source, stream index)
    feeders: Vec<(LinkFeeder, usize)>,
    sinks: Vec<(LinkSink, usize)>,
    tile_streams: Vec<(usize, usize)>, // (lane, stream index) delivered to tile
    injected: Vec<u64>,
    delivered: Vec<u64>,
}

impl CircuitScenarioBench {
    /// Build the bench for `scenario` with every stream at `load` carrying
    /// `pattern` data. Streams use distinct seeds so concurrent random
    /// streams are independent (as the paper's random inputs are).
    pub fn new(
        params: RouterParams,
        scenario: Scenario,
        pattern: DataPattern,
        load: f64,
    ) -> CircuitScenarioBench {
        let mut router = CircuitRouter::new(params);
        let flits = params.flits_per_phit();
        let mut tile_sources = Vec::new();
        let mut feeders = Vec::new();
        let mut sinks = Vec::new();
        let mut tile_streams = Vec::new();

        for (i, stream) in scenario.streams().iter().enumerate() {
            let StreamDef { from, to, .. } = *stream;
            router
                .connect(from.port(), from.lane(), to.port(), to.lane())
                .expect("Table 3 streams are legal configurations");
            let seed = 0x2005_0000 + i as u64;
            match from {
                Endpoint::Tile { lane } => {
                    tile_sources.push((lane, PhitSource::new(pattern, seed, load, flits), i));
                }
                Endpoint::Link { port, lane } => {
                    feeders.push((
                        LinkFeeder::new(
                            port,
                            lane,
                            PhitSource::new(pattern, seed, load, flits),
                            &params,
                        ),
                        i,
                    ));
                }
            }
            match to {
                Endpoint::Tile { lane } => tile_streams.push((lane, i)),
                Endpoint::Link { port, lane } => {
                    sinks.push((LinkSink::new(port, lane, &params), i));
                }
            }
        }

        let n = scenario.streams().len();
        CircuitScenarioBench {
            router,
            scenario,
            tile_sources,
            feeders,
            sinks,
            tile_streams,
            injected: vec![0; n],
            delivered: vec![0; n],
        }
    }

    /// One bench cycle.
    fn cycle(&mut self) {
        // Downstream consumers observe last cycle's outputs and drive acks.
        for (sink, _) in &mut self.sinks {
            sink.observe(&mut self.router);
        }
        // Tile sources inject.
        for (lane, source, idx) in &mut self.tile_sources {
            let can = self.router.tile_can_send(*lane);
            if let Some(phit) = source.poll(can) {
                let ok = self.router.tile_send(*lane, phit);
                debug_assert!(ok);
                self.injected[*idx] += 1;
            }
        }
        // The local tile consumes everything that arrived.
        for (lane, idx) in &self.tile_streams {
            while self.router.tile_recv(*lane).is_some() {
                self.delivered[*idx] += 1;
            }
        }
        // Upstream feeders present this cycle's nibbles.
        for (feeder, _) in &mut self.feeders {
            feeder.drive(&mut self.router);
        }
        step(&mut self.router);
    }

    /// Run `cycles` cycles and collect the outcome. Activity is measured
    /// from a clean ledger (configuration writes excluded, as Power
    /// Compiler measures the running design).
    pub fn run(&mut self, cycles: CycleCount) -> ScenarioOutcome {
        self.router.clear_activity();
        for _ in 0..cycles {
            self.cycle();
        }
        // Fold in feeder/sink injected+received counts.
        for (feeder, idx) in &self.feeders {
            self.injected[*idx] += feeder.injected;
        }
        for (sink, idx) in &self.sinks {
            self.delivered[*idx] += sink.received;
        }
        ScenarioOutcome {
            cycles,
            activity: self.router.activity(),
            injected: std::mem::take(&mut self.injected),
            delivered: std::mem::take(&mut self.delivered),
        }
    }

    /// The scenario under test.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }
}

// ---------------------------------------------------------------------------
// Packet-switched bench
// ---------------------------------------------------------------------------

/// Words per wormhole packet in the scenario benches. Chosen so packets
/// are long enough for wormhole interleaving to matter (the time-division
/// contrast with lane multiplexing) but short enough that several packets
/// fit a 5000-cycle window per stream.
pub const PACKET_WORDS: usize = 16;

/// A flit train generator: words at `load`-controlled rate, grouped into
/// `PACKET_WORDS`-word packets addressed to a fixed destination.
struct FlitTrain {
    words: WordStream,
    rate: f64,
    acc: f64,
    dest: Coords,
    pending: VecDeque<Flit>,
    words_in_packet: usize,
    injected_words: u64,
}

impl FlitTrain {
    fn new(pattern: DataPattern, seed: u64, load: f64, dest: Coords) -> FlitTrain {
        FlitTrain {
            words: WordStream::new(pattern, seed),
            // Payload parity with the circuit bench: 16 payload bits per 5
            // cycles at 100% load -> 0.2 words per cycle.
            rate: load * 0.2,
            acc: 0.0,
            dest,
            pending: VecDeque::new(),
            words_in_packet: 0,
            injected_words: 0,
        }
    }

    /// Advance one cycle; generate due words into pending flits.
    fn tick(&mut self) {
        self.acc += self.rate;
        while self.acc + 1e-9 >= 1.0 {
            self.acc -= 1.0;
            if self.words_in_packet == 0 {
                self.pending.push_back(Flit::head(self.dest));
            }
            let word = self.words.next_word();
            self.words_in_packet += 1;
            if self.words_in_packet == PACKET_WORDS {
                self.pending.push_back(Flit::tail(word));
                self.words_in_packet = 0;
            } else {
                self.pending.push_back(Flit::body(word));
            }
            self.injected_words += 1;
        }
    }

    fn front(&self) -> Option<&Flit> {
        self.pending.front()
    }

    fn pop(&mut self) -> Option<Flit> {
        self.pending.pop_front()
    }
}

/// The packet-switched scenario bench. The router under test sits at (1,1)
/// of a wide-enough mesh: tile-bound streams target (1,1); East-bound
/// streams get *distinct* destinations further east ((2,1), (3,1), …) so
/// the consumer can attribute each wormhole to its stream from the head
/// flit — XY routing sends all of them out the East port regardless.
pub struct PacketScenarioBench {
    /// The router under test.
    pub router: PacketRouter,
    scenario: Scenario,
    /// Tile-injected stream (stream 1), if active.
    tile_train: Option<(FlitTrain, usize)>,
    /// Link-injected streams with upstream credit tracking:
    /// (train, port, vc, credits, stream index).
    link_trains: Vec<(FlitTrain, PacketPort, VcId, u8, usize)>,
    /// Credit return pipeline for the East consumer.
    east_credit_pipe: VecDeque<VcId>,
    delivered_words: Vec<u64>,
    injected_words: Vec<u64>,
    /// Destination coordinates → stream index for East-bound wormholes.
    east_dest_stream: Vec<(Coords, usize)>,
    /// Which stream currently owns each East output VC (learned from head
    /// flits).
    east_vc_owner: [Option<usize>; 4],
    tile_stream_index: Option<usize>,
}

impl PacketScenarioBench {
    /// Build the bench (same scenario semantics as the circuit bench).
    pub fn new(
        params: PacketParams,
        scenario: Scenario,
        pattern: DataPattern,
        load: f64,
    ) -> PacketScenarioBench {
        let here = Coords::new(1, 1);
        let router = PacketRouter::new(params.at(here));
        let mut tile_train = None;
        let mut link_trains = Vec::new();
        let mut east_dest_stream = Vec::new();
        let mut tile_stream_index = None;

        for (i, stream) in scenario.streams().iter().enumerate() {
            let seed = 0x2005_0000 + i as u64;
            let dest = match stream.to {
                Endpoint::Tile { .. } => {
                    tile_stream_index = Some(i);
                    here
                }
                Endpoint::Link { .. } => {
                    // Unique east-of-here destination per stream.
                    let dest = Coords::new(2 + east_dest_stream.len() as u8, 1);
                    east_dest_stream.push((dest, i));
                    dest
                }
            };
            match stream.from {
                Endpoint::Tile { .. } => {
                    tile_train = Some((FlitTrain::new(pattern, seed, load, dest), i));
                }
                Endpoint::Link { port, .. } => {
                    let pport = match port {
                        Port::North => PacketPort::North,
                        Port::South => PacketPort::South,
                        Port::East => PacketPort::East,
                        Port::West => PacketPort::West,
                        Port::Tile => unreachable!("link endpoint"),
                    };
                    link_trains.push((
                        FlitTrain::new(pattern, seed, load, dest),
                        pport,
                        VcId(0),
                        params.fifo_depth as u8,
                        i,
                    ));
                }
            }
        }

        let n = scenario.streams().len();
        PacketScenarioBench {
            router,
            scenario,
            tile_train,
            link_trains,
            east_credit_pipe: VecDeque::new(),
            delivered_words: vec![0; n],
            injected_words: vec![0; n],
            east_dest_stream,
            east_vc_owner: [None; 4],
            tile_stream_index,
        }
    }

    fn cycle(&mut self) {
        // East consumer returns one credit per flit observed last cycle.
        if let Some(vc) = self.east_credit_pipe.pop_front() {
            self.router.set_credit_input(PacketPort::East, vc, true);
        }

        // Tile injection.
        if let Some((train, _)) = &mut self.tile_train {
            train.tick();
            if let Some(&flit) = train.front() {
                if self.router.tile_inject(VcId(0), flit) {
                    train.pop();
                }
            }
        }

        // Link injections with upstream credit tracking.
        for (train, port, vc, credits, _) in &mut self.link_trains {
            if self.router.credit_output(*port, *vc) {
                *credits += 1;
            }
            train.tick();
            if *credits > 0 {
                if let Some(flit) = train.pop() {
                    self.router.set_link_input(*port, *vc, flit);
                    *credits -= 1;
                }
            }
        }

        step(&mut self.router);

        // Observe outputs after the edge. Head flits carry the (unique)
        // destination, binding their output VC to a stream; body/tail
        // words then count against the owning stream.
        if let Some((vc, flit)) = self.router.link_output(PacketPort::East).flit {
            self.east_credit_pipe.push_back(VcId(vc));
            match flit.dest() {
                Some(dest) => {
                    self.east_vc_owner[vc as usize] = self
                        .east_dest_stream
                        .iter()
                        .find(|&&(d, _)| d == dest)
                        .map(|&(_, idx)| idx);
                }
                None => {
                    if let Some(idx) = self.east_vc_owner[vc as usize] {
                        self.delivered_words[idx] += 1;
                    }
                }
            }
        }
        while let Some((_, flit)) = self.router.tile_recv() {
            if !matches!(flit.kind, noc_packet::flit::FlitKind::Head) {
                if let Some(idx) = self.tile_stream_index {
                    self.delivered_words[idx] += 1;
                }
            }
        }
    }

    /// Run `cycles` cycles and collect the outcome.
    pub fn run(&mut self, cycles: CycleCount) -> ScenarioOutcome {
        self.router.clear_activity();
        for _ in 0..cycles {
            self.cycle();
        }
        if let Some((train, idx)) = &self.tile_train {
            self.injected_words[*idx] = train.injected_words;
        }
        for (train, _, _, _, idx) in &self.link_trains {
            self.injected_words[*idx] = train.injected_words;
        }
        ScenarioOutcome {
            cycles,
            activity: self.router.activity(),
            injected: std::mem::take(&mut self.injected_words),
            delivered: std::mem::take(&mut self.delivered_words),
        }
    }

    /// The scenario under test.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::activity::ActivityClass;

    const CYCLES: CycleCount = 5000; // 200 µs at 25 MHz.

    #[test]
    fn circuit_scenario_ii_delivers_full_load() {
        let mut bench = CircuitScenarioBench::new(
            RouterParams::paper(),
            Scenario::II,
            DataPattern::Random,
            1.0,
        );
        let out = bench.run(CYCLES);
        // 5000 cycles / 5 per phit = 1000 phits = 2000 bytes ("2 kB of
        // data is transported per stream").
        assert!(out.injected[0] >= 990, "injected {:?}", out.injected);
        assert!(out.delivered[0] >= 985, "delivered {:?}", out.delivered);
        assert!(out.delivered_bytes(0) >= 1970);
    }

    #[test]
    fn circuit_scenario_iv_all_streams_run_concurrently() {
        let mut bench = CircuitScenarioBench::new(
            RouterParams::paper(),
            Scenario::IV,
            DataPattern::Random,
            1.0,
        );
        let out = bench.run(CYCLES);
        for i in 0..3 {
            assert!(
                out.delivered[i] >= 980,
                "stream {i} starved: {:?}",
                out.delivered
            );
        }
    }

    #[test]
    fn circuit_scenario_i_only_clocks() {
        let mut bench =
            CircuitScenarioBench::new(RouterParams::paper(), Scenario::I, DataPattern::Random, 1.0);
        let out = bench.run(1000);
        let total: u64 = out.activity.iter().map(|c| c.ledger.total()).sum();
        let clocks: u64 = out
            .activity
            .iter()
            .map(|c| c.ledger.get(ActivityClass::RegClock))
            .sum();
        assert_eq!(total, clocks, "scenario I is the pure offset");
    }

    #[test]
    fn circuit_activity_monotone_in_stream_count() {
        // "A more relevant parameter is the number of data streams" — more
        // streams, more activity.
        let mut totals = Vec::new();
        for scenario in Scenario::ALL {
            let mut bench = CircuitScenarioBench::new(
                RouterParams::paper(),
                scenario,
                DataPattern::Random,
                1.0,
            );
            let out = bench.run(2000);
            totals.push(out.activity.iter().map(|c| c.ledger.total()).sum::<u64>());
        }
        assert!(totals[0] < totals[1], "{totals:?}");
        assert!(totals[1] < totals[2], "{totals:?}");
        assert!(totals[2] < totals[3], "{totals:?}");
    }

    #[test]
    fn packet_scenario_ii_delivers_full_load() {
        let mut bench = PacketScenarioBench::new(
            PacketParams::paper(),
            Scenario::II,
            DataPattern::Random,
            1.0,
        );
        let out = bench.run(CYCLES);
        // 1000 words offered; wormhole overhead fits easily in 16-bit
        // links, so nearly all are delivered east.
        assert!(out.injected[0] >= 990, "{:?}", out.injected);
        assert!(out.delivered[0] >= 950, "{:?}", out.delivered);
    }

    #[test]
    fn packet_scenario_iv_collision_still_delivers() {
        let mut bench = PacketScenarioBench::new(
            PacketParams::paper(),
            Scenario::IV,
            DataPattern::Random,
            1.0,
        );
        let out = bench.run(CYCLES);
        // Streams 1 and 3 share the East link: 2x0.2 words/cycle payload +
        // head overhead ≈ 0.425 flits/cycle < 1, so both still fit.
        let east_words = out.delivered[0] + out.delivered[2];
        assert!(east_words >= 1900, "east delivered {east_words}");
        assert!(out.delivered[1] >= 950, "tile stream {:?}", out.delivered);
    }

    #[test]
    fn packet_collision_adds_grant_changes_vs_scenario_ii() {
        let grant_changes = |scenario| {
            let mut bench =
                PacketScenarioBench::new(PacketParams::paper(), scenario, DataPattern::Random, 1.0);
            let out = bench.run(3000);
            out.activity
                .iter()
                .map(|c| c.ledger.get(ActivityClass::ArbiterGrantChange))
                .sum::<u64>()
        };
        let ii = grant_changes(Scenario::II);
        let iv = grant_changes(Scenario::IV);
        assert!(
            iv > ii * 2,
            "collision at East must multiply control toggles: II={ii} IV={iv}"
        );
    }

    #[test]
    fn both_benches_respect_reduced_load() {
        let mut c = CircuitScenarioBench::new(
            RouterParams::paper(),
            Scenario::II,
            DataPattern::Random,
            0.5,
        );
        let out = c.run(CYCLES);
        assert!(
            (out.injected[0] as i64 - 500).abs() <= 5,
            "50% load: {:?}",
            out.injected
        );
        let mut p = PacketScenarioBench::new(
            PacketParams::paper(),
            Scenario::II,
            DataPattern::Random,
            0.5,
        );
        let pout = p.run(CYCLES);
        assert!(
            (pout.injected[0] as i64 - 500).abs() <= 16,
            "50% load: {:?}",
            pout.injected
        );
    }
}
