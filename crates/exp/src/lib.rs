//! # noc-exp — the experiment harness
//!
//! Everything needed to regenerate the paper's tables and figures, shared
//! by the `noc-bench` binaries, the Criterion benches and the integration
//! tests:
//!
//! * [`testbench`] — single-router scenario rigs for both routers,
//!   reproducing Section 6's measurement setup: Table 3's streams at
//!   configurable load and data pattern, the surrounding network played by
//!   the testbench (upstream serialisers with window flow control,
//!   downstream consumers returning acks/credits).
//! * [`mod@fig9`] — Fig. 9: static/internal/switching power bars for
//!   Scenarios I–IV on both routers (random data, 100% load, 25 MHz,
//!   200 µs — 2 kB per stream).
//! * [`mod@fig10`] — Fig. 10: dynamic power [µW/MHz] versus bit-flip rate
//!   (0/50/100%) for all scenarios and both routers.
//! * [`mod@reference`] — the paper's published numbers, for paper-vs-measured
//!   reporting in EXPERIMENTS.md.
//! * [`tables`] — plain-text table rendering used by every binary.
//! * [`fabric_bench`] — the fabric-generic deployment bench: any
//!   application task graph, either backend, one code path
//!   ([`fabric_bench::run_app`] is written once over `F: Fabric`).
//! * [`fleet`] — the multi-tenant fleet engine: populations of concurrent
//!   deployments stepped in lockstep batches over the shared worker pool,
//!   with snapshot/restore, phase-shifting workloads and aggregate SLO
//!   reporting ([`fleet::Fleet`], [`fleet::FleetSloReport`],
//!   [`fleet::flap_probe`]).
//! * [`json`] — the hand-rolled JSON document model behind the
//!   machine-readable `BENCH_*.json` bench artefacts.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fabric_bench;
pub mod fig10;
pub mod fig9;
pub mod fleet;
pub mod json;
pub mod reference;
pub mod tables;
pub mod testbench;

pub use fabric_bench::{compare_fabrics, run_app, FabricComparison, FabricRunSummary};
pub use fig10::{fig10, Fig10, Fig10Point};
pub use fig9::{fig9, Fig9, Fig9Bar};
pub use fleet::{
    flap_probe, FlapProbe, Fleet, FleetRestoreError, FleetSloReport, FleetSnapshot, Tenant,
    TenantSlo, TenantSpec, TenantState,
};
pub use json::Json;
pub use testbench::{CircuitScenarioBench, PacketScenarioBench, ScenarioOutcome};
