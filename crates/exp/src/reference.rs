//! The paper's published numbers, collected in one place.
//!
//! Every experiment binary prints paper-vs-measured against these
//! constants, and EXPERIMENTS.md is generated from the same source, so the
//! reproduction's accuracy is auditable in code review rather than buried
//! in prose.

/// Table 1 — HiperLAN/2 edge bandwidths [Mbit/s].
pub const TABLE1_MBITS: [(&str, f64); 5] = [
    ("S/P -> Pre-fix removal", 640.0),
    ("Pre-fix removal -> FFT", 512.0),
    ("FFT -> Channel eq.", 416.0),
    ("Channel eq. -> De-map", 384.0),
    ("Hard bits (BPSK)", 12.0),
];

/// Table 1's QAM-64 hard-bit upper bound [Mbit/s].
pub const TABLE1_HARD_BITS_QAM64: f64 = 72.0;

/// Table 2 — UMTS edge bandwidths [Mbit/s] at SF=4, QPSK.
pub const TABLE2_MBITS: [(&str, f64); 4] = [
    ("Chips (per finger)", 61.44),
    ("Scrambling code", 7.68),
    ("MRC coefficient (per finger)", 15.36),
    ("Received bits (QPSK)", 1.92),
];

/// Section 3.2's aggregate example: 4 fingers, SF 4 ≈ 320 Mbit/s.
pub const UMTS_EXAMPLE_TOTAL_MBITS: f64 = 320.0;

/// Table 4 — circuit-switched router [mm² / MHz / Gbit/s].
pub struct Table4Row {
    /// Component areas `(name, mm²)`; `None` = n.a. in the paper.
    pub components: [(&'static str, Option<f64>); 6],
    /// Total area \[mm²\].
    pub total_mm2: f64,
    /// Maximum frequency \[MHz\].
    pub fmax_mhz: f64,
    /// Link bandwidth [Gbit/s].
    pub bandwidth_gbps: f64,
}

/// Table 4, circuit-switched column.
pub const TABLE4_CIRCUIT: Table4Row = Table4Row {
    components: [
        ("Crossbar", Some(0.0258)),
        ("Buffering", None),
        ("Arbitration", None),
        ("Configuration", Some(0.0090)),
        ("Data converter", Some(0.0158)),
        ("Misc", None),
    ],
    total_mm2: 0.0506,
    fmax_mhz: 1075.0,
    bandwidth_gbps: 17.2,
};

/// Table 4, packet-switched column.
pub const TABLE4_PACKET: Table4Row = Table4Row {
    components: [
        ("Crossbar", Some(0.0706)),
        ("Buffering", Some(0.1034)),
        ("Arbitration", Some(0.0022)),
        ("Configuration", None),
        ("Data converter", None),
        ("Misc", Some(0.0038)),
    ],
    total_mm2: 0.1800,
    fmax_mhz: 507.0,
    bandwidth_gbps: 8.1,
};

/// Table 4, Æthereal column (published totals only).
pub const TABLE4_AETHEREAL: Table4Row = Table4Row {
    components: [
        ("Crossbar", None),
        ("Buffering", None),
        ("Arbitration", None),
        ("Configuration", None),
        ("Data converter", None),
        ("Misc", None),
    ],
    total_mm2: 0.1750,
    fmax_mhz: 500.0,
    bandwidth_gbps: 16.0,
};

/// The headline claim: "consumes 3.5 times less energy compared to its
/// packet-switched equivalent" (abstract; Section 7.3 applies the same
/// factor to area and power).
pub const POWER_AREA_RATIO: f64 = 3.5;

/// Fig. 9's measurement conditions.
pub mod fig9_conditions {
    /// Clock frequency \[MHz\]: "fixed at 25 MHz".
    pub const CLOCK_MHZ: f64 = 25.0;
    /// Simulated time: "The simulation time is 200 µs".
    pub const WINDOW_US: f64 = 200.0;
    /// Per-stream data: "2 kB of data is transported per stream".
    pub const BYTES_PER_STREAM: u64 = 2000;
    /// Per-stream bandwidth: "a data-bandwidth of 80 Mbit/s per stream".
    pub const STREAM_MBITS: f64 = 80.0;
}

/// Section 5.1 configuration-interface facts.
pub mod config_claims {
    /// "Configuration of 1 lane requires 10 bits".
    pub const BITS_PER_LANE: u32 = 10;
    /// "The configuration memory size is 5x20 = 100 bits".
    pub const MEMORY_BITS: u32 = 100;
    /// "...in less than 1 ms over the BE network" per lane.
    pub const LANE_BUDGET_MS: f64 = 1.0;
    /// "One single router can than be fully reconfigured within 20 ms".
    pub const ROUTER_BUDGET_MS: f64 = 20.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_totals_are_component_sums() {
        let sum: f64 = TABLE4_CIRCUIT
            .components
            .iter()
            .filter_map(|&(_, a)| a)
            .sum();
        assert!((sum - TABLE4_CIRCUIT.total_mm2).abs() < 1e-9);
        let sum: f64 = TABLE4_PACKET
            .components
            .iter()
            .filter_map(|&(_, a)| a)
            .sum();
        assert!((sum - TABLE4_PACKET.total_mm2).abs() < 1e-9);
    }

    #[test]
    fn published_ratio_holds_in_reference_data() {
        let ratio = TABLE4_PACKET.total_mm2 / TABLE4_CIRCUIT.total_mm2;
        assert!(
            (ratio - 3.557).abs() < 0.01,
            "published tables give {ratio:.3}"
        );
    }

    #[test]
    fn bandwidth_is_width_times_frequency() {
        assert!(
            (TABLE4_CIRCUIT.fmax_mhz * 16.0 / 1000.0 - TABLE4_CIRCUIT.bandwidth_gbps).abs() < 0.01
        );
        assert!(
            (TABLE4_PACKET.fmax_mhz * 16.0 / 1000.0 - TABLE4_PACKET.bandwidth_gbps).abs() < 0.02
        );
        assert!(
            (TABLE4_AETHEREAL.fmax_mhz * 32.0 / 1000.0 - TABLE4_AETHEREAL.bandwidth_gbps).abs()
                < 0.01
        );
    }

    #[test]
    fn fig9_window_consistency() {
        // 80 Mbit/s for 200 µs = 2000 bytes: the three quoted conditions
        // agree with each other.
        let bits = fig9_conditions::STREAM_MBITS * fig9_conditions::WINDOW_US;
        assert_eq!((bits / 8.0) as u64, fig9_conditions::BYTES_PER_STREAM);
    }
}
