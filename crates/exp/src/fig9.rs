//! Fig. 9: "Dynamic and Static Power Bars for Different Scenarios
//! (random data, 100% load)".
//!
//! Conditions per Section 7.2: both routers clocked at 25 MHz (80 Mbit/s
//! per stream), random data (50% bit-flips), 200 µs of simulation (2 kB
//! transported per stream). Each bar splits into static, dynamic internal
//! cell, and dynamic switching power, exactly as Power Compiler reports.

use crate::reference::fig9_conditions;
use crate::testbench::{CircuitScenarioBench, PacketScenarioBench};
use noc_apps::scenarios::Scenario;
use noc_apps::traffic::DataPattern;
use noc_core::params::RouterParams;
use noc_packet::params::PacketParams;
use noc_power::area::{circuit_router_area, packet_router_area};
use noc_power::estimator::{PowerEstimator, PowerReport};
use noc_sim::time::cycles_in;
use noc_sim::units::{MegaHertz, Picoseconds};
use serde::{Deserialize, Serialize};

/// Which router a bar belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterKind {
    /// The paper's circuit-switched router.
    Circuit,
    /// The Kavaldjiev packet-switched baseline.
    Packet,
}

impl RouterKind {
    /// Both routers, circuit first (the paper's bar order).
    pub const BOTH: [RouterKind; 2] = [RouterKind::Circuit, RouterKind::Packet];

    /// Display name matching the figure's axis labels.
    pub fn name(self) -> &'static str {
        match self {
            RouterKind::Circuit => "Circuit Switched Router",
            RouterKind::Packet => "Packet Switched Router",
        }
    }
}

/// One bar of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Bar {
    /// Which router.
    pub router: RouterKind,
    /// Which scenario.
    pub scenario: Scenario,
    /// The three-way power split.
    pub power: PowerReport,
    /// Payload bytes delivered per stream (sanity: ≈2000 each).
    pub bytes_per_stream: Vec<u64>,
}

/// The complete figure: eight bars.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9 {
    /// Bars in the paper's order: circuit I–IV, then packet I–IV.
    pub bars: Vec<Fig9Bar>,
}

impl Fig9 {
    /// The bar for `(router, scenario)`.
    pub fn bar(&self, router: RouterKind, scenario: Scenario) -> &Fig9Bar {
        self.bars
            .iter()
            .find(|b| b.router == router && b.scenario == scenario)
            .expect("all eight bars present")
    }

    /// Total-power ratio packet/circuit for a scenario — the paper's
    /// headline "3.5 times less".
    pub fn ratio(&self, scenario: Scenario) -> f64 {
        self.bar(RouterKind::Packet, scenario).power.total()
            / self.bar(RouterKind::Circuit, scenario).power.total()
    }
}

/// Run the Fig. 9 experiment with the calibrated estimator at the paper's
/// conditions.
pub fn fig9() -> Fig9 {
    fig9_with(
        RouterParams::paper(),
        PacketParams::paper(),
        &PowerEstimator::calibrated(),
    )
}

/// Run Fig. 9 with explicit configurations (used by ablation benches).
pub fn fig9_with(cs: RouterParams, ps: PacketParams, estimator: &PowerEstimator) -> Fig9 {
    let freq = MegaHertz(fig9_conditions::CLOCK_MHZ);
    let window = Picoseconds::from_micros(fig9_conditions::WINDOW_US);
    let cycles = cycles_in(window, freq);
    let tech = estimator.tech();
    let c_area = circuit_router_area(&cs, tech).total();
    let p_area = packet_router_area(&ps, tech).total();

    let mut bars = Vec::with_capacity(8);
    for scenario in Scenario::ALL {
        let mut bench = CircuitScenarioBench::new(cs, scenario, DataPattern::Random, 1.0);
        let out = bench.run(cycles);
        let power = estimator.estimate(&out.activity, cycles, freq, c_area);
        bars.push(Fig9Bar {
            router: RouterKind::Circuit,
            scenario,
            power,
            bytes_per_stream: (0..out.delivered.len())
                .map(|i| out.delivered_bytes(i))
                .collect(),
        });
    }
    for scenario in Scenario::ALL {
        let mut bench = PacketScenarioBench::new(ps, scenario, DataPattern::Random, 1.0);
        let out = bench.run(cycles);
        let power = estimator.estimate(&out.activity, cycles, freq, p_area);
        bars.push(Fig9Bar {
            router: RouterKind::Packet,
            scenario,
            power,
            bytes_per_stream: (0..out.delivered.len())
                .map(|i| out.delivered_bytes(i))
                .collect(),
        });
    }
    Fig9 { bars }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Building the figure runs 8 × 5000-cycle simulations; share one.
    fn figure() -> &'static Fig9 {
        static FIG: std::sync::OnceLock<Fig9> = std::sync::OnceLock::new();
        FIG.get_or_init(fig9)
    }

    #[test]
    fn eight_bars_present() {
        assert_eq!(figure().bars.len(), 8);
    }

    #[test]
    fn packet_router_dominates_every_scenario() {
        for scenario in Scenario::ALL {
            let r = figure().ratio(scenario);
            assert!(r > 2.5, "{scenario}: ratio {r:.2} too small");
        }
    }

    #[test]
    fn headline_ratio_about_3_5() {
        // The paper's single number summarises the busy scenarios.
        let r = figure().ratio(Scenario::IV);
        assert!(
            (2.8..4.5).contains(&r),
            "Scenario IV power ratio {r:.2}, paper says ~3.5"
        );
    }

    #[test]
    fn offset_dominates_circuit_router() {
        // "The dynamic power consumption of scenario II up to IV does not
        // increase considerably compared with Scenario I" — the offset is
        // the majority of even the busiest bar.
        let idle = figure()
            .bar(RouterKind::Circuit, Scenario::I)
            .power
            .dynamic();
        let busy = figure()
            .bar(RouterKind::Circuit, Scenario::IV)
            .power
            .dynamic();
        assert!(
            idle.value() > busy.value() * 0.5,
            "offset {idle} vs busy {busy}"
        );
        assert!(busy.value() > idle.value(), "traffic still adds something");
    }

    #[test]
    fn two_kb_per_stream_delivered() {
        let bar = figure().bar(RouterKind::Circuit, Scenario::IV);
        for (i, &bytes) in bar.bytes_per_stream.iter().enumerate() {
            assert!(
                bytes >= 1950,
                "stream {i} delivered {bytes} B, expected ~2000"
            );
        }
    }

    #[test]
    fn static_power_small_but_nonzero() {
        for bar in &figure().bars {
            let s = bar.power.static_power.value();
            let total = bar.power.total().value();
            assert!(s > 0.0);
            assert!(s < total * 0.25, "static should be a minor share");
        }
    }

    #[test]
    fn power_rises_with_scenario_number() {
        for router in RouterKind::BOTH {
            let mut prev = 0.0;
            for scenario in Scenario::ALL {
                let p = figure().bar(router, scenario).power.dynamic().value();
                assert!(
                    p >= prev,
                    "{router:?} {scenario}: {p:.1} fell below {prev:.1}"
                );
                prev = p;
            }
        }
    }
}
