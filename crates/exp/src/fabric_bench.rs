//! Fabric-generic application experiments: the scenario plumbing written
//! once over `F: Fabric`, so every workload is automatically a
//! circuit-vs-packet comparison.
//!
//! This is the deployment-level generalisation of the single-router rigs
//! in [`crate::testbench`]: instead of hand-wiring one router's ports, an
//! application task graph is deployed through
//! [`noc_mesh::deployment::Deployment`] onto *any* backend, driven at its
//! demanded offered load, settled, and costed with the calibrated energy
//! model. [`compare_fabrics`] runs the identical workload (same seed, same
//! payload words) on all four backends — circuit, hybrid, deflection,
//! packet — and reports the paper's headline quantities side by side.
//!
//! Admission is spill-tolerant across the board so that oversubscribed
//! workloads (circuits alone cannot admit every stream) compare cleanly:
//! the circuit endpoint carries the admitted GT subset only, the hybrid
//! carries everything (spillover on its clock-gated packet plane), the
//! bufferless deflection mesh and the ungated packet baseline carry
//! everything on their own routers. For feasible workloads the spill set
//! is empty and the circuit/packet numbers are identical to strict
//! admission.

use noc_apps::taskgraph::TaskGraph;
use noc_mesh::deployment::{DeployError, Deployment};
use noc_mesh::fabric::{EnergyModel, Fabric, FabricKind};
use noc_mesh::stream::{StreamPlane, StreamStats};
use noc_mesh::topology::Mesh;
use noc_power::estimator::PowerReport;
use noc_sim::time::CycleCount;
use noc_sim::units::{FemtoJoules, MegaHertz};

/// What one fabric produced for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricRunSummary {
    /// Which backend ran.
    pub kind: FabricKind,
    /// Cycles simulated (offered-load window plus settling).
    pub cycles: CycleCount,
    /// Payload words injected across all circuits.
    pub injected: u64,
    /// Payload words delivered across all destinations.
    pub delivered: u64,
    /// The worst per-circuit delivered fraction.
    pub min_delivered_fraction: f64,
    /// Power over the run at the deployment clock.
    pub power: PowerReport,
    /// Total energy over the run.
    pub energy: FemtoJoules,
    /// Streams carried on a best-effort spillover plane (hybrid only).
    pub spilled_streams: u64,
    /// Payload words that rode the spillover plane (hybrid only).
    pub spilled_words: u64,
    /// Per-stream telemetry straight from `Fabric::stream_stats`: word
    /// counts, serving plane and the full service-latency distribution
    /// for every session of the run.
    pub streams: Vec<StreamStats>,
}

impl FabricRunSummary {
    /// Energy per delivered payload bit — the efficiency number the paper
    /// argues about.
    pub fn energy_per_bit(&self) -> FemtoJoules {
        if self.delivered == 0 {
            FemtoJoules::ZERO
        } else {
            self.energy / (self.delivered as f64 * 16.0)
        }
    }

    /// Worst (largest) p95 service latency among streams served by
    /// `plane`, over streams with deliveries
    /// ([`noc_mesh::stream::worst_p95`]).
    pub fn worst_p95(&self, plane: StreamPlane) -> Option<u64> {
        noc_mesh::stream::worst_p95(&self.streams, plane)
    }

    /// Best (smallest) p95 service latency among streams served by
    /// `plane`, over streams with deliveries
    /// ([`noc_mesh::stream::best_p95`]).
    pub fn best_p95(&self, plane: StreamPlane) -> Option<u64> {
        noc_mesh::stream::best_p95(&self.streams, plane)
    }

    /// The hybrid QoS claim at run level, via the one shared definition
    /// ([`noc_mesh::stream::gt_no_worse_than_be`]): every circuit-plane
    /// stream's p95 service latency is at or below every spilled
    /// stream's p95. This is the GT/BE service-gap ordering
    /// `fabric_compare` enforces by exit code on the oversubscribed
    /// workload.
    pub fn gt_no_worse_than_be(&self) -> bool {
        noc_mesh::stream::gt_no_worse_than_be(&self.streams)
    }
}

/// Drive `dep` for `cycles` cycles of offered-load traffic, settle the
/// in-flight tail, and summarise. Generic over the backend — this one
/// function is the testbench for both routers.
pub fn run_app<F: Fabric>(
    dep: &mut Deployment<F>,
    graph: &TaskGraph,
    cycles: CycleCount,
) -> FabricRunSummary {
    dep.run(cycles);
    dep.settle(cycles / 2 + 1000);
    let model: EnergyModel = dep.energy_model();
    let reports = dep.report(graph);
    FabricRunSummary {
        kind: dep.fabric().kind(),
        cycles: dep.cycles_run(),
        injected: dep.total_injected(),
        delivered: dep.total_delivered(),
        // An application with no NoC routes (everything co-located on one
        // tile) trivially meets its demands; report 1.0 rather than the
        // empty fold's +inf so tables and thresholds stay meaningful.
        min_delivered_fraction: if reports.is_empty() {
            1.0
        } else {
            reports
                .iter()
                .map(|r| r.delivered_fraction)
                .fold(f64::INFINITY, f64::min)
        },
        power: dep.power(&model),
        energy: dep.total_energy(&model),
        spilled_streams: dep.fabric().spilled_streams(),
        spilled_words: dep.fabric().spilled_words(),
        streams: dep.fabric().stream_stats(),
    }
}

/// All four backends' results for one workload, pure-circuit to
/// pure-packet.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricComparison {
    /// The circuit-switched run (spill-admitted: GT subset only when the
    /// workload oversubscribes the lanes).
    pub circuit: FabricRunSummary,
    /// The hybrid run: admitted streams on circuits, spillover on the
    /// clock-gated packet plane.
    pub hybrid: FabricRunSummary,
    /// The bufferless deflection run: every stream, single-flit-register
    /// routers, contention absorbed as age-arbitrated misroutes.
    pub deflection: FabricRunSummary,
    /// The packet-switched run (every stream, ungated baseline).
    pub packet: FabricRunSummary,
}

impl FabricComparison {
    /// Packet-over-circuit total-energy ratio (the paper's "~3.5× less"
    /// is the single-router version of this number).
    pub fn energy_ratio(&self) -> f64 {
        self.packet.energy.value() / self.circuit.energy.value()
    }

    /// Packet-over-hybrid total-energy ratio: what profiled hybrid
    /// switching saves while still delivering *every* stream.
    pub fn hybrid_energy_ratio(&self) -> f64 {
        self.packet.energy.value() / self.hybrid.energy.value()
    }

    /// Does the hybrid's energy land inside the pure endpoints
    /// (`circuit ≤ hybrid ≤ packet`)? The expected shape of every
    /// comparison: the circuit endpoint may do less work (spilled streams
    /// undelivered) and the packet endpoint pays for ungated buffers.
    pub fn hybrid_between_endpoints(&self) -> bool {
        self.circuit.energy.value() <= self.hybrid.energy.value()
            && self.hybrid.energy.value() <= self.packet.energy.value()
    }

    /// Packet-over-deflection total-energy ratio: what dropping every
    /// FIFO (and paying deflection re-traversals instead) saves against
    /// the ungated buffered baseline.
    pub fn deflection_energy_ratio(&self) -> f64 {
        self.packet.energy.value() / self.deflection.energy.value()
    }

    /// Largest per-stream `max_deflections` of the deflection run — 0 on
    /// an uncontended workload, positive once streams contend for links.
    pub fn max_deflections(&self) -> u64 {
        self.deflection
            .streams
            .iter()
            .map(|s| s.max_deflections)
            .max()
            .unwrap_or(0)
    }

    /// The summary for `kind`.
    pub fn summary(&self, kind: FabricKind) -> &FabricRunSummary {
        match kind {
            FabricKind::Circuit => &self.circuit,
            FabricKind::Hybrid => &self.hybrid,
            FabricKind::Deflection => &self.deflection,
            FabricKind::Packet => &self.packet,
        }
    }
}

/// Deploy `graph` on all four backends (same mesh, clock and traffic
/// seed) and run the identical workload through each. Admission is
/// spill-tolerant (see the module docs); a feasible workload behaves
/// exactly as under strict admission.
pub fn compare_fabrics(
    graph: &TaskGraph,
    mesh: Mesh,
    clock: MegaHertz,
    cycles: CycleCount,
    seed: u64,
) -> Result<FabricComparison, DeployError> {
    let builder = |graph| {
        Deployment::builder(graph)
            .mesh_topology(mesh)
            .clock(clock)
            .seed(seed)
            .spill(true)
    };
    let mut circuit = builder(graph).build_circuit()?;
    let mut hybrid = builder(graph).build_hybrid()?;
    let mut deflection = builder(graph).build_deflection()?;
    let mut packet = builder(graph).build_packet()?;
    Ok(FabricComparison {
        circuit: run_app(&mut circuit, graph, cycles),
        hybrid: run_app(&mut hybrid, graph, cycles),
        deflection: run_app(&mut deflection, graph, cycles),
        packet: run_app(&mut packet, graph, cycles),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_apps::hiperlan2::{task_graph, Hiperlan2Params, Modulation};

    fn comparison() -> &'static FabricComparison {
        static CMP: std::sync::OnceLock<FabricComparison> = std::sync::OnceLock::new();
        CMP.get_or_init(|| {
            let graph = task_graph(&Hiperlan2Params::standard(Modulation::Qam64));
            compare_fabrics(&graph, Mesh::new(4, 4), MegaHertz(100.0), 6000, 0x2005)
                .expect("HiperLAN/2 deploys on both backends")
        })
    }

    #[test]
    fn hiperlan2_runs_on_both_backends() {
        let cmp = comparison();
        assert_eq!(cmp.circuit.kind, FabricKind::Circuit);
        assert_eq!(cmp.packet.kind, FabricKind::Packet);
        // Same seed: identical offered traffic.
        assert_eq!(cmp.circuit.injected, cmp.packet.injected);
        assert!(cmp.circuit.injected > 0);
    }

    #[test]
    fn both_backends_meet_demand() {
        let cmp = comparison();
        assert!(
            cmp.circuit.min_delivered_fraction > 0.9,
            "circuit: {:.3}",
            cmp.circuit.min_delivered_fraction
        );
        assert!(
            cmp.packet.min_delivered_fraction > 0.9,
            "packet: {:.3}",
            cmp.packet.min_delivered_fraction
        );
    }

    #[test]
    fn circuit_fabric_wins_on_energy() {
        let r = comparison().energy_ratio();
        assert!(r > 1.5, "fabric-level energy ratio {r:.2} too small");
    }

    #[test]
    fn feasible_workload_hybrid_spills_nothing_and_sits_between() {
        let cmp = comparison();
        assert_eq!(cmp.hybrid.kind, FabricKind::Hybrid);
        assert_eq!(cmp.hybrid.spilled_streams, 0, "HiperLAN/2 is feasible");
        assert_eq!(cmp.hybrid.delivered, cmp.packet.delivered);
        assert!(
            cmp.hybrid_between_endpoints(),
            "circuit {} <= hybrid {} <= packet {} violated",
            cmp.circuit.energy,
            cmp.hybrid.energy,
            cmp.packet.energy
        );
        assert!(cmp.hybrid_energy_ratio() > 1.5);
    }

    #[test]
    fn oversubscribed_workload_spills_and_keeps_the_ordering() {
        // The canonical oversubscribed line: the light stream must spill,
        // yet the hybrid delivers everything and still lands between the
        // pure endpoints.
        let clock = MegaHertz(25.0);
        let ccn = noc_mesh::Ccn::new(
            Mesh::new(3, 1),
            noc_core::params::RouterParams::paper(),
            clock,
        );
        let g = noc_apps::synthetic::oversubscribed_line(ccn.lane_capacity());
        let cmp = compare_fabrics(&g, Mesh::new(3, 1), clock, 4000, 0x0B5)
            .expect("spill admission deploys everywhere");
        assert_eq!(cmp.hybrid.spilled_streams, 1);
        assert!(cmp.hybrid.spilled_words > 0);
        // The circuit endpoint only carries the admitted subset.
        assert!(cmp.circuit.injected < cmp.hybrid.injected);
        assert_eq!(cmp.hybrid.injected, cmp.packet.injected);
        assert!(cmp.hybrid.min_delivered_fraction > 0.9);
        assert!(
            cmp.hybrid_between_endpoints(),
            "circuit {} <= hybrid {} <= packet {} violated",
            cmp.circuit.energy,
            cmp.hybrid.energy,
            cmp.packet.energy
        );
    }

    #[test]
    fn per_stream_delivered_sums_to_run_totals() {
        // The stream telemetry is a partition of the run: per-stream
        // delivered words sum to the deployment's delivered total on
        // every backend.
        let cmp = comparison();
        for kind in FabricKind::ALL {
            let s = cmp.summary(kind);
            let delivered: u64 = s.streams.iter().map(|t| t.delivered_words).sum();
            assert_eq!(delivered, s.delivered, "{kind}: stream sums diverge");
            let injected: u64 = s.streams.iter().map(|t| t.injected_words).sum();
            assert_eq!(injected, s.injected, "{kind}: injected sums diverge");
        }
    }

    #[test]
    fn oversubscribed_hybrid_gt_p95_at_or_below_be_p95() {
        // The GT/BE service gap under offered load: guaranteed-throughput
        // circuits must serve at or below the spillover plane's p95 —
        // the per-connection QoS number the hybrid discipline sells.
        let clock = MegaHertz(25.0);
        let ccn = noc_mesh::Ccn::new(
            Mesh::new(3, 1),
            noc_core::params::RouterParams::paper(),
            clock,
        );
        let g = noc_apps::synthetic::oversubscribed_line(ccn.lane_capacity());
        let cmp = compare_fabrics(&g, Mesh::new(3, 1), clock, 4000, 0x0B5)
            .expect("spill admission deploys everywhere");
        use noc_mesh::stream::StreamPlane;
        let gt = cmp.hybrid.worst_p95(StreamPlane::Circuit);
        let be = cmp.hybrid.best_p95(StreamPlane::Spilled);
        assert!(gt.is_some(), "circuit plane delivered and was timed");
        assert!(be.is_some(), "spillover plane delivered and was timed");
        assert!(
            cmp.hybrid.gt_no_worse_than_be(),
            "GT p95 {gt:?} exceeds BE p95 {be:?}"
        );
    }

    #[test]
    fn deflection_beats_ungated_packet_on_a_feasible_workload() {
        // The fourth backend's frontier position: HiperLAN/2 is feasible
        // (no oversubscription), so the deflection mesh delivers the same
        // words with no FIFO energy and must land strictly below the
        // ungated packet baseline.
        let cmp = comparison();
        assert_eq!(cmp.deflection.kind, FabricKind::Deflection);
        assert_eq!(cmp.deflection.injected, cmp.packet.injected);
        assert_eq!(cmp.deflection.delivered, cmp.packet.delivered);
        assert!(cmp.deflection.min_delivered_fraction > 0.9);
        assert!(
            cmp.deflection.energy.value() < cmp.packet.energy.value(),
            "deflection {} must beat the ungated packet {}",
            cmp.deflection.energy,
            cmp.packet.energy
        );
        assert!(cmp.deflection_energy_ratio() > 1.0);
    }

    #[test]
    fn oversubscribed_deflection_deflects_but_delivers() {
        // Oversubscription on the deflection mesh shows up as misroutes,
        // not loss: the max_deflections telemetry goes positive while
        // every injected word still lands.
        let clock = MegaHertz(25.0);
        let ccn = noc_mesh::Ccn::new(
            Mesh::new(3, 1),
            noc_core::params::RouterParams::paper(),
            clock,
        );
        let g = noc_apps::synthetic::oversubscribed_line(ccn.lane_capacity());
        let cmp = compare_fabrics(&g, Mesh::new(3, 1), clock, 4000, 0x0B5)
            .expect("spill admission deploys everywhere");
        assert_eq!(cmp.deflection.injected, cmp.packet.injected);
        assert_eq!(
            cmp.deflection.delivered, cmp.deflection.injected,
            "deflection routing never drops payload"
        );
        // On a 3x1 line two streams converge on one sink, so words must
        // contend for the same link and deflect.
        assert!(
            cmp.max_deflections() > 0,
            "the hotspot must force deflections"
        );
    }

    #[test]
    fn energy_per_bit_is_finite_and_ordered() {
        let cmp = comparison();
        let c = cmp.circuit.energy_per_bit().value();
        let p = cmp.packet.energy_per_bit().value();
        assert!(c > 0.0 && p > 0.0);
        assert!(c < p, "circuit {c:.1} fJ/bit vs packet {p:.1} fJ/bit");
    }
}
