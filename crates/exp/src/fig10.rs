//! Fig. 10: "Data Dependency of the Dynamic Power Consumption (100% load)".
//!
//! Dynamic power normalised to µW/MHz versus the bit-flip rate of the
//! offered data — best case (0%, zeros), typical (50%, random), worst
//! (100%, continuous toggles) — for all four scenarios on both routers.
//! The paper's observations to reproduce:
//!
//! * bit-flips have only a **minor** influence;
//! * the **number of concurrent streams** matters more;
//! * the packet router's colliding-stream curve is **non-straight**: the
//!   time-multiplexing of the link adds control switching that does not
//!   interpolate linearly between the data extremes.

use crate::fig9::RouterKind;
use crate::testbench::{CircuitScenarioBench, PacketScenarioBench};
use noc_apps::scenarios::Scenario;
use noc_apps::traffic::DataPattern;
use noc_core::params::RouterParams;
use noc_packet::params::PacketParams;
use noc_power::area::{circuit_router_area, packet_router_area};
use noc_power::estimator::PowerEstimator;
use noc_sim::time::cycles_in;
use noc_sim::units::{MegaHertz, Picoseconds};

/// One measured point of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Point {
    /// Which router.
    pub router: RouterKind,
    /// Which scenario.
    pub scenario: Scenario,
    /// Bit-flip fraction of the offered data (0.0, 0.5, 1.0).
    pub flip_fraction: f64,
    /// Dynamic power normalised by frequency [µW/MHz].
    pub uw_per_mhz: f64,
}

/// The full figure: 2 routers × 4 scenarios × 3 flip levels.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10 {
    /// All 24 points.
    pub points: Vec<Fig10Point>,
}

impl Fig10 {
    /// The series (3 points, flip-ordered) for one router and scenario.
    pub fn series(&self, router: RouterKind, scenario: Scenario) -> Vec<&Fig10Point> {
        let mut pts: Vec<&Fig10Point> = self
            .points
            .iter()
            .filter(|p| p.router == router && p.scenario == scenario)
            .collect();
        pts.sort_by(|a, b| {
            a.flip_fraction
                .partial_cmp(&b.flip_fraction)
                .expect("flip fractions are finite by construction")
        });
        pts
    }

    /// Relative spread of a series: (max-min)/mid-value. Small spreads are
    /// the paper's "minor influence" observation.
    pub fn flip_sensitivity(&self, router: RouterKind, scenario: Scenario) -> f64 {
        let s = self.series(router, scenario);
        let vals: Vec<f64> = s.iter().map(|p| p.uw_per_mhz).collect();
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        (max - min) / vals[1]
    }

    /// Deviation of the 50% point from the straight line between 0% and
    /// 100% — the non-linearity the paper highlights for the colliding
    /// scenario of the packet router.
    pub fn midpoint_deviation(&self, router: RouterKind, scenario: Scenario) -> f64 {
        let s = self.series(router, scenario);
        let linear_mid = (s[0].uw_per_mhz + s[2].uw_per_mhz) / 2.0;
        s[1].uw_per_mhz - linear_mid
    }
}

/// Run the Fig. 10 experiment at the paper's conditions.
pub fn fig10() -> Fig10 {
    fig10_with(
        RouterParams::paper(),
        PacketParams::paper(),
        &PowerEstimator::calibrated(),
    )
}

/// Run Fig. 10 with explicit configurations.
pub fn fig10_with(cs: RouterParams, ps: PacketParams, estimator: &PowerEstimator) -> Fig10 {
    let freq = MegaHertz(crate::reference::fig9_conditions::CLOCK_MHZ);
    let cycles = cycles_in(
        Picoseconds::from_micros(crate::reference::fig9_conditions::WINDOW_US),
        freq,
    );
    let tech = estimator.tech();
    let c_area = circuit_router_area(&cs, tech).total();
    let p_area = packet_router_area(&ps, tech).total();

    let mut points = Vec::with_capacity(24);
    for pattern in DataPattern::LEVELS {
        for scenario in Scenario::ALL {
            let mut bench = CircuitScenarioBench::new(cs, scenario, pattern, 1.0);
            let out = bench.run(cycles);
            let power = estimator.estimate(&out.activity, cycles, freq, c_area);
            points.push(Fig10Point {
                router: RouterKind::Circuit,
                scenario,
                flip_fraction: pattern.flip_fraction(),
                uw_per_mhz: power.dynamic_uw_per_mhz(),
            });

            let mut bench = PacketScenarioBench::new(ps, scenario, pattern, 1.0);
            let out = bench.run(cycles);
            let power = estimator.estimate(&out.activity, cycles, freq, p_area);
            points.push(Fig10Point {
                router: RouterKind::Packet,
                scenario,
                flip_fraction: pattern.flip_fraction(),
                uw_per_mhz: power.dynamic_uw_per_mhz(),
            });
        }
    }
    Fig10 { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure() -> &'static Fig10 {
        static FIG: std::sync::OnceLock<Fig10> = std::sync::OnceLock::new();
        FIG.get_or_init(fig10)
    }

    #[test]
    fn twenty_four_points() {
        assert_eq!(figure().points.len(), 24);
    }

    #[test]
    fn bit_flips_have_minor_influence() {
        // Across every series the 0%→100% spread stays far below the
        // offset level ("only a minor influence on the dynamic power").
        for router in RouterKind::BOTH {
            for scenario in Scenario::ALL {
                let sens = figure().flip_sensitivity(router, scenario);
                assert!(
                    sens < 0.35,
                    "{router:?} {scenario}: flip sensitivity {sens:.3} too large"
                );
            }
        }
    }

    #[test]
    fn stream_count_matters_more_than_flips() {
        // "A more relevant parameter is the number of data streams":
        // going I -> IV moves power more than 0% -> 100% flips within IV.
        for router in RouterKind::BOTH {
            let s_i = figure().series(router, Scenario::I);
            let s_iv = figure().series(router, Scenario::IV);
            let stream_effect = s_iv[1].uw_per_mhz - s_i[1].uw_per_mhz;
            let flip_effect = (s_iv[2].uw_per_mhz - s_iv[0].uw_per_mhz).abs();
            assert!(
                stream_effect > flip_effect,
                "{router:?}: streams {stream_effect:.2} vs flips {flip_effect:.2}"
            );
        }
    }

    #[test]
    fn packet_router_sits_well_above_circuit() {
        for scenario in Scenario::ALL {
            let c = figure().series(RouterKind::Circuit, scenario)[1].uw_per_mhz;
            let p = figure().series(RouterKind::Packet, scenario)[1].uw_per_mhz;
            assert!(p > 2.5 * c, "{scenario}: {p:.1} vs {c:.1} µW/MHz");
        }
    }

    #[test]
    fn colliding_scenario_is_least_straight_for_packet_router() {
        // The paper singles out the colliding-stream curve as visibly
        // non-straight. Compare the packet router's midpoint deviation in
        // the collision scenario (IV) against the collision-free ones.
        let fig = figure();
        let coll = fig
            .midpoint_deviation(RouterKind::Packet, Scenario::IV)
            .abs();
        let free = fig
            .midpoint_deviation(RouterKind::Packet, Scenario::II)
            .abs()
            .max(
                fig.midpoint_deviation(RouterKind::Packet, Scenario::III)
                    .abs(),
            );
        assert!(
            coll > free,
            "collision curve should deviate most: IV={coll:.3}, others<={free:.3}"
        );
    }

    #[test]
    fn scenario_i_is_flip_independent() {
        // No data moves in Scenario I, so the three points coincide.
        for router in RouterKind::BOTH {
            let s = figure().series(router, Scenario::I);
            assert!((s[0].uw_per_mhz - s[2].uw_per_mhz).abs() < 1e-6);
        }
    }
}
