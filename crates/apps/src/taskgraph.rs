//! Kahn-like process graphs.
//!
//! "The designer has to partition the application into a Kahn like process
//! graph model. In this model the application is represented as a graph with
//! communicating functional processes" (paper Section 1). At run time the
//! CCN maps processes onto tiles and the edges onto NoC lanes; this module
//! provides the graph itself plus the queries the CCN's feasibility analysis
//! needs (per-edge bandwidth, totals, topological structure).

use noc_sim::units::Bandwidth;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Index of a process in its graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProcessId(pub usize);

/// Index of an edge in its graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub usize);

/// How data flows on an edge (paper Section 3.3: block-based for OFDM,
/// streaming for CDMA).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficShape {
    /// Periodic blocks: `words` 16-bit words delivered every `period_us`
    /// microseconds (an OFDM symbol, for instance).
    Block {
        /// Words per block.
        words: u32,
        /// Block period in microseconds.
        period_us: f64,
    },
    /// Continuous streaming: "at a regular short interval a very small
    /// packet, containing 1 sample, has to be transported" (Section 3.2).
    Streaming,
}

/// One functional process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Process {
    /// Human-readable name (matches the paper's block diagrams).
    pub name: String,
    /// Preferred tile kind for mapping (free-form hint, e.g. "FFT", "GPP").
    pub affinity: Option<String>,
}

/// One communication edge with its GT bandwidth requirement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Producing process.
    pub src: ProcessId,
    /// Consuming process.
    pub dst: ProcessId,
    /// Required guaranteed-throughput bandwidth.
    pub bandwidth: Bandwidth,
    /// Block or streaming traffic.
    pub shape: TrafficShape,
    /// Label (matches the paper's table rows, e.g. "FFT -> Channel eq.").
    pub label: String,
}

/// A Kahn-like process graph.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TaskGraph {
    /// Application name.
    pub name: String,
    processes: Vec<Process>,
    edges: Vec<Edge>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new(name: impl Into<String>) -> TaskGraph {
        TaskGraph {
            name: name.into(),
            processes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Add a process; returns its id.
    pub fn add_process(&mut self, name: impl Into<String>) -> ProcessId {
        self.processes.push(Process {
            name: name.into(),
            affinity: None,
        });
        ProcessId(self.processes.len() - 1)
    }

    /// Add a process with a tile-kind affinity hint.
    pub fn add_process_with_affinity(
        &mut self,
        name: impl Into<String>,
        affinity: impl Into<String>,
    ) -> ProcessId {
        let id = self.add_process(name);
        self.processes[id.0].affinity = Some(affinity.into());
        id
    }

    /// Add an edge; returns its id.
    ///
    /// # Panics
    /// Panics on dangling endpoints or self-loops — both are construction
    /// bugs in a workload definition, not runtime conditions.
    pub fn add_edge(
        &mut self,
        src: ProcessId,
        dst: ProcessId,
        bandwidth: Bandwidth,
        shape: TrafficShape,
        label: impl Into<String>,
    ) -> EdgeId {
        assert!(src.0 < self.processes.len(), "dangling source");
        assert!(dst.0 < self.processes.len(), "dangling destination");
        assert_ne!(src, dst, "self-loop communication is meaningless");
        self.edges.push(Edge {
            src,
            dst,
            bandwidth,
            shape,
            label: label.into(),
        });
        EdgeId(self.edges.len() - 1)
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The process with id `id`.
    pub fn process(&self, id: ProcessId) -> &Process {
        &self.processes[id.0]
    }

    /// The edge with id `id`.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0]
    }

    /// All processes with their ids.
    pub fn processes(&self) -> impl Iterator<Item = (ProcessId, &Process)> {
        self.processes
            .iter()
            .enumerate()
            .map(|(i, p)| (ProcessId(i), p))
    }

    /// All edges with their ids.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges.iter().enumerate().map(|(i, e)| (EdgeId(i), e))
    }

    /// Find a process id by name.
    pub fn find(&self, name: &str) -> Option<ProcessId> {
        self.processes
            .iter()
            .position(|p| p.name == name)
            .map(ProcessId)
    }

    /// Sum of all edge bandwidths — the total GT load the NoC must carry.
    pub fn total_bandwidth(&self) -> Bandwidth {
        self.edges.iter().map(|e| e.bandwidth).sum()
    }

    /// The highest single-edge bandwidth (the binding constraint for lane
    /// allocation).
    pub fn peak_edge_bandwidth(&self) -> Bandwidth {
        self.edges
            .iter()
            .map(|e| e.bandwidth)
            .fold(Bandwidth::ZERO, Bandwidth::max)
    }

    /// Topological order of the processes, if the graph is acyclic.
    /// Control loops (the paper's Synchronization block feeds back) make
    /// some graphs cyclic; those return `None` and mapping falls back to
    /// insertion order.
    pub fn topological_order(&self) -> Option<Vec<ProcessId>> {
        let n = self.processes.len();
        let mut indegree = vec![0usize; n];
        let mut succ: HashMap<usize, Vec<usize>> = HashMap::new();
        for e in &self.edges {
            indegree[e.dst.0] += 1;
            succ.entry(e.src.0).or_default().push(e.dst.0);
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop_front() {
            order.push(ProcessId(i));
            for &s in succ.get(&i).into_iter().flatten() {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    queue.push_back(s);
                }
            }
        }
        (order.len() == n).then_some(order)
    }
}

impl fmt::Display for TaskGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} processes, {} edges, {:.2} total",
            self.name,
            self.process_count(),
            self.edge_count(),
            self.total_bandwidth()
        )?;
        for (_, e) in self.edges() {
            writeln!(
                f,
                "  {} -> {}: {:.2} [{}]",
                self.process(e.src).name,
                self.process(e.dst).name,
                e.bandwidth,
                e.label
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> TaskGraph {
        let mut g = TaskGraph::new("chain");
        let ids: Vec<ProcessId> = (0..n).map(|i| g.add_process(format!("p{i}"))).collect();
        for w in ids.windows(2) {
            g.add_edge(
                w[0],
                w[1],
                Bandwidth(100.0),
                TrafficShape::Streaming,
                "link",
            );
        }
        g
    }

    #[test]
    fn build_and_query() {
        let g = chain(4);
        assert_eq!(g.process_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.find("p2"), Some(ProcessId(2)));
        assert_eq!(g.find("nope"), None);
        assert!((g.total_bandwidth().value() - 300.0).abs() < 1e-12);
        assert!((g.peak_edge_bandwidth().value() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn topological_order_of_chain() {
        let g = chain(5);
        let order = g.topological_order().expect("chain is acyclic");
        assert_eq!(order, (0..5).map(ProcessId).collect::<Vec<_>>());
    }

    #[test]
    fn cycle_detected() {
        let mut g = chain(3);
        let p0 = ProcessId(0);
        let p2 = ProcessId(2);
        g.add_edge(p2, p0, Bandwidth(1.0), TrafficShape::Streaming, "back");
        assert_eq!(g.topological_order(), None);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut g = TaskGraph::new("bad");
        let p = g.add_process("p");
        g.add_edge(p, p, Bandwidth(1.0), TrafficShape::Streaming, "loop");
    }

    #[test]
    #[should_panic(expected = "dangling")]
    fn dangling_edge_rejected() {
        let mut g = TaskGraph::new("bad");
        let p = g.add_process("p");
        g.add_edge(
            p,
            ProcessId(7),
            Bandwidth(1.0),
            TrafficShape::Streaming,
            "x",
        );
    }

    #[test]
    fn affinity_hint_stored() {
        let mut g = TaskGraph::new("g");
        let p = g.add_process_with_affinity("fft", "FFT");
        assert_eq!(g.process(p).affinity.as_deref(), Some("FFT"));
    }

    #[test]
    fn display_lists_edges() {
        let g = chain(3);
        let s = g.to_string();
        assert!(s.contains("p0 -> p1"));
        assert!(s.contains("200")); // total bandwidth
    }
}
