//! The stream definitions of Table 3 and the test scenarios of Fig. 8.
//!
//! | Stream | Input port | Output port |
//! |---|---|---|
//! | 1 | Tile | Router (East) |
//! | 2 | Router (North) | Tile |
//! | 3 | Router (West) | Router (East) |
//!
//! Scenario I runs no traffic (measuring the static offset of the dynamic
//! power); Scenario II runs stream 1; Scenario III adds stream 2;
//! Scenario IV adds stream 3, which shares the East output *port* with
//! stream 1 — on the circuit router they occupy different lanes of that
//! port (lane multiplexing), on the packet router they time-multiplex the
//! same 16-bit link and collide in the switch allocator. That contrast "
//! gives an indication of the difference between time and lane
//! multiplexing" (Section 6.1).

use noc_core::lane::Port;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a Table 3 stream (1-based, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StreamId(pub u8);

/// One endpoint of a benchmark stream at router scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Endpoint {
    /// The local tile interface, using the given tile-port lane.
    Tile {
        /// Tile-port lane index.
        lane: usize,
    },
    /// A neighbour link, using the given lane of that port.
    Link {
        /// Which neighbour port.
        port: Port,
        /// Lane index within the port.
        lane: usize,
    },
}

impl Endpoint {
    /// The router port this endpoint attaches to.
    pub fn port(&self) -> Port {
        match self {
            Endpoint::Tile { .. } => Port::Tile,
            Endpoint::Link { port, .. } => *port,
        }
    }

    /// The lane within the port.
    pub fn lane(&self) -> usize {
        match self {
            Endpoint::Tile { lane } | Endpoint::Link { lane, .. } => *lane,
        }
    }
}

/// One benchmark stream: data enters the router at `from` and leaves at
/// `to`, at 100% lane load (Section 6.1: "All three data streams have a
/// load of 100%").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamDef {
    /// Paper stream number.
    pub id: StreamId,
    /// Where data enters the router.
    pub from: Endpoint,
    /// Where data leaves the router.
    pub to: Endpoint,
}

/// Table 3's three streams with the lane assignment the circuit router
/// uses: each stream gets its own lane, so streams 1 and 3 share the East
/// *port* but not a lane.
pub fn table3_streams() -> [StreamDef; 3] {
    [
        StreamDef {
            id: StreamId(1),
            from: Endpoint::Tile { lane: 0 },
            to: Endpoint::Link {
                port: Port::East,
                lane: 0,
            },
        },
        StreamDef {
            id: StreamId(2),
            from: Endpoint::Link {
                port: Port::North,
                lane: 0,
            },
            to: Endpoint::Tile { lane: 0 },
        },
        StreamDef {
            id: StreamId(3),
            from: Endpoint::Link {
                port: Port::West,
                lane: 0,
            },
            to: Endpoint::Link {
                port: Port::East,
                lane: 1,
            },
        },
    ]
}

/// The four test scenarios of Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Scenario {
    /// No data traverses the router: "the static offset in the dynamic
    /// power consumption".
    I,
    /// Stream 1: tile interface → link.
    II,
    /// Streams 1+2: adds link → tile interface.
    III,
    /// Streams 1+2+3: adds a stream passing the router, colliding with
    /// stream 1 at the East output port of the packet router.
    IV,
}

impl Scenario {
    /// All four scenarios in order.
    pub const ALL: [Scenario; 4] = [Scenario::I, Scenario::II, Scenario::III, Scenario::IV];

    /// The active streams of this scenario.
    pub fn streams(self) -> &'static [StreamDef] {
        // Lazily built once; scenario stream sets are prefixes of Table 3.
        static STREAMS: std::sync::OnceLock<[StreamDef; 3]> = std::sync::OnceLock::new();
        let all = STREAMS.get_or_init(table3_streams);
        match self {
            Scenario::I => &all[0..0],
            Scenario::II => &all[0..1],
            Scenario::III => &all[0..2],
            Scenario::IV => &all[0..3],
        }
    }

    /// Number of concurrent streams.
    pub fn stream_count(self) -> usize {
        self.streams().len()
    }

    /// Does this scenario make two streams share an output *port*?
    /// (Only IV: streams 1 and 3 both target East.)
    pub fn has_output_port_collision(self) -> bool {
        let streams = self.streams();
        for (i, a) in streams.iter().enumerate() {
            for b in &streams[i + 1..] {
                if a.to.port() == b.to.port() {
                    return true;
                }
            }
        }
        false
    }

    /// The paper's description of the scenario.
    pub fn description(self) -> &'static str {
        match self {
            Scenario::I => "no data traverses the router (dynamic-power offset)",
            Scenario::II => "tile interface to link (stream 1)",
            Scenario::III => "adds link to tile interface (streams 1-2)",
            Scenario::IV => "adds a stream passing the router (streams 1-3)",
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = match self {
            Scenario::I => "I",
            Scenario::II => "II",
            Scenario::III => "III",
            Scenario::IV => "IV",
        };
        write!(f, "Scenario {n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_paper() {
        let s = table3_streams();
        assert_eq!(s[0].from.port(), Port::Tile);
        assert_eq!(s[0].to.port(), Port::East);
        assert_eq!(s[1].from.port(), Port::North);
        assert_eq!(s[1].to.port(), Port::Tile);
        assert_eq!(s[2].from.port(), Port::West);
        assert_eq!(s[2].to.port(), Port::East);
    }

    #[test]
    fn scenario_stream_counts() {
        assert_eq!(Scenario::I.stream_count(), 0);
        assert_eq!(Scenario::II.stream_count(), 1);
        assert_eq!(Scenario::III.stream_count(), 2);
        assert_eq!(Scenario::IV.stream_count(), 3);
    }

    #[test]
    fn scenarios_are_prefix_nested() {
        // "Scenario III extends Scenario II ... Scenario IV also simulates
        // a data stream that passes the router."
        for pair in Scenario::ALL.windows(2) {
            let smaller = pair[0].streams();
            let larger = pair[1].streams();
            assert_eq!(&larger[..smaller.len()], smaller);
        }
    }

    #[test]
    fn only_scenario_iv_collides_at_a_port() {
        assert!(!Scenario::I.has_output_port_collision());
        assert!(!Scenario::II.has_output_port_collision());
        assert!(!Scenario::III.has_output_port_collision());
        assert!(Scenario::IV.has_output_port_collision());
    }

    #[test]
    fn colliding_streams_use_distinct_lanes() {
        // Lane-division multiplexing: streams 1 and 3 share the East port
        // but not a lane — the whole point of the circuit router.
        let s = table3_streams();
        assert_eq!(s[0].to.port(), s[2].to.port());
        assert_ne!(s[0].to.lane(), s[2].to.lane());
    }

    #[test]
    fn display_names() {
        assert_eq!(Scenario::IV.to_string(), "Scenario IV");
        assert!(Scenario::I.description().contains("offset"));
    }
}
