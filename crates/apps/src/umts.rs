//! The UMTS W-CDMA RAKE receiver (paper Fig. 3, Table 2).
//!
//! Table 2 derives from the W-CDMA air interface: a 3.84 Mchip/s chip rate,
//! chips and coefficients "represented by 8 bits" (I and Q each), and a
//! spreading factor SF dividing the chip rate down to the symbol rate:
//!
//! | stream | rate | bandwidth |
//! |---|---|---|
//! | Chips (per finger) | 3.84 Mcps × 16 bit | **61.44 Mbit/s** |
//! | Scrambling code | 3.84 Mcps × 2 bit (±1 I/Q) | **7.68 Mbit/s** |
//! | MRC coefficient (per finger) | 3.84/SF × 16 bit | **61.44/SF** |
//! | Received bits | 3.84/SF × bits/symbol | **7.68/SF (QPSK), 15.36/SF (QAM-16)** |
//!
//! The paper's example — 4 fingers at SF 4 — totals ≈ 320 Mbit/s, which the
//! `four_fingers_sf4_total` test reproduces.

use crate::taskgraph::{TaskGraph, TrafficShape};
use noc_sim::units::Bandwidth;
use serde::{Deserialize, Serialize};

/// Symbol modulation of the downlink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UmtsModulation {
    /// 2 bits per symbol.
    Qpsk,
    /// 4 bits per symbol (HSDPA-class).
    Qam16,
}

impl UmtsModulation {
    /// Bits per symbol.
    pub fn bits_per_symbol(self) -> u32 {
        match self {
            UmtsModulation::Qpsk => 2,
            UmtsModulation::Qam16 => 4,
        }
    }
}

/// W-CDMA receiver parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UmtsParams {
    /// Chip rate [Mchip/s]; UMTS uses 3.84.
    pub chip_rate_mcps: f64,
    /// Bits per chip component ("every chip or coefficient is represented
    /// by 8 bits").
    pub chip_bits: u32,
    /// RAKE fingers (multipath arms).
    pub fingers: u32,
    /// Spreading factor (4..512 in W-CDMA).
    pub spreading_factor: u32,
    /// Downlink modulation.
    pub modulation: UmtsModulation,
}

impl UmtsParams {
    /// The paper's example configuration: 4 fingers, SF 4, QPSK.
    pub fn paper_example() -> UmtsParams {
        UmtsParams {
            chip_rate_mcps: 3.84,
            chip_bits: 8,
            fingers: 4,
            spreading_factor: 4,
            modulation: UmtsModulation::Qpsk,
        }
    }

    /// Chip stream into one finger (edge 2): complex chips at chip rate.
    pub fn bw_chips_per_finger(&self) -> Bandwidth {
        Bandwidth(self.chip_rate_mcps * f64::from(2 * self.chip_bits))
    }

    /// Scrambling code distribution (edge 3): one ±1 bit per component.
    pub fn bw_scrambling_code(&self) -> Bandwidth {
        Bandwidth(self.chip_rate_mcps * 2.0)
    }

    /// MRC coefficients per finger (edge 4): one complex coefficient per
    /// symbol.
    pub fn bw_mrc_per_finger(&self) -> Bandwidth {
        Bandwidth(
            self.chip_rate_mcps * f64::from(2 * self.chip_bits) / f64::from(self.spreading_factor),
        )
    }

    /// Received hard bits (edge 5).
    pub fn bw_received_bits(&self) -> Bandwidth {
        Bandwidth(
            self.chip_rate_mcps * f64::from(self.modulation.bits_per_symbol())
                / f64::from(self.spreading_factor),
        )
    }

    /// Total GT bandwidth of the receiver: per-finger chips and MRC
    /// coefficients, the shared scrambling code, and the output bits.
    pub fn total_bandwidth(&self) -> Bandwidth {
        let f = f64::from(self.fingers);
        Bandwidth(
            f * self.bw_chips_per_finger().value()
                + self.bw_scrambling_code().value()
                + f * self.bw_mrc_per_finger().value()
                + self.bw_received_bits().value(),
        )
    }
}

/// Build the Fig. 3 process graph: pulse shaping feeding `fingers` RAKE
/// fingers (each a descrambling+despreading pair), maximal-ratio combining,
/// de-mapping, and the control block (cell/path searcher + channel
/// estimation) sourcing the MRC coefficients and scrambling code.
pub fn task_graph(params: &UmtsParams) -> TaskGraph {
    let mut g = TaskGraph::new("UMTS W-CDMA RAKE receiver");
    let pulse = g.add_process_with_affinity("Pulse shaping", "ASIC");
    let control = g.add_process_with_affinity("Control (cell/path search)", "GPP");
    let mrc = g.add_process_with_affinity("Maximal Ratio Combining", "DSP");
    let demap = g.add_process_with_affinity("De-mapping", "DSP");

    for i in 0..params.fingers {
        let finger = g.add_process_with_affinity(format!("RAKE finger {i}"), "DSRH");
        g.add_edge(
            pulse,
            finger,
            params.bw_chips_per_finger(),
            TrafficShape::Streaming,
            format!("Chips finger {i} (2)"),
        );
        g.add_edge(
            control,
            finger,
            params.bw_scrambling_code(),
            TrafficShape::Streaming,
            "Scrambling code (3)",
        );
        g.add_edge(
            finger,
            mrc,
            params.bw_mrc_per_finger(),
            TrafficShape::Streaming,
            format!("Despread symbols finger {i}"),
        );
        g.add_edge(
            control,
            mrc,
            params.bw_mrc_per_finger(),
            TrafficShape::Streaming,
            format!("MRC coefficient finger {i} (4)"),
        );
    }
    g.add_edge(
        mrc,
        demap,
        params.bw_received_bits(),
        TrafficShape::Streaming,
        "Received bits (5)",
    );
    g
}

/// Table 2 as `(label, Mbit/s)` rows computed from `params`.
pub fn table2(params: &UmtsParams) -> Vec<(String, Bandwidth)> {
    vec![
        ("Chips (per finger)".into(), params.bw_chips_per_finger()),
        ("Scrambling code".into(), params.bw_scrambling_code()),
        (
            format!(
                "MRC coefficient (per finger, SF={})",
                params.spreading_factor
            ),
            params.bw_mrc_per_finger(),
        ),
        (
            format!("Received bits ({:?})", params.modulation),
            params.bw_received_bits(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_bandwidths_match_paper() {
        let p = UmtsParams::paper_example();
        assert!((p.bw_chips_per_finger().value() - 61.44).abs() < 1e-9);
        assert!((p.bw_scrambling_code().value() - 7.68).abs() < 1e-9);
        // SF=4: 61.44/4 = 15.36.
        assert!((p.bw_mrc_per_finger().value() - 15.36).abs() < 1e-9);
        // QPSK: 7.68/SF = 1.92.
        assert!((p.bw_received_bits().value() - 1.92).abs() < 1e-9);
    }

    #[test]
    fn qam16_doubles_received_bits() {
        let p = UmtsParams {
            modulation: UmtsModulation::Qam16,
            ..UmtsParams::paper_example()
        };
        // 15.36/SF with SF=4.
        assert!((p.bw_received_bits().value() - 3.84).abs() < 1e-9);
    }

    #[test]
    fn four_fingers_sf4_total() {
        // "the total communication bandwidth for processing 4 RAKE fingers
        // with a spreading factor (SF) of 4 is ~320 Mbit/s".
        let p = UmtsParams::paper_example();
        let total = p.total_bandwidth().value();
        assert!(
            (300.0..330.0).contains(&total),
            "expected ~320 Mbit/s, got {total:.2}"
        );
    }

    #[test]
    fn graph_structure_scales_with_fingers() {
        let p = UmtsParams::paper_example();
        let g = task_graph(&p);
        // 4 fixed blocks + 4 fingers.
        assert_eq!(g.process_count(), 8);
        // 4 edges per finger + 1 output edge.
        assert_eq!(g.edge_count(), 17);

        let one = task_graph(&UmtsParams { fingers: 1, ..p });
        assert_eq!(one.process_count(), 5);
        assert_eq!(one.edge_count(), 5);
    }

    #[test]
    fn all_edges_are_streaming() {
        // "the data processing and communication between the processors is
        // streaming oriented" (Section 3.2).
        let g = task_graph(&UmtsParams::paper_example());
        for (_, e) in g.edges() {
            assert_eq!(e.shape, TrafficShape::Streaming);
        }
    }

    #[test]
    fn high_spreading_factor_shrinks_symbol_edges() {
        let p = UmtsParams {
            spreading_factor: 512,
            ..UmtsParams::paper_example()
        };
        assert!((p.bw_mrc_per_finger().value() - 0.12).abs() < 1e-9);
        assert!(
            p.bw_chips_per_finger().value() > 61.0,
            "chip edges unaffected"
        );
    }

    #[test]
    fn graph_is_acyclic() {
        assert!(task_graph(&UmtsParams::paper_example())
            .topological_order()
            .is_some());
    }
}
