//! The HiperLAN/2 baseband receiver pipeline (paper Fig. 2, Table 1).
//!
//! Table 1's bandwidths are not arbitrary: every row follows from the OFDM
//! parameters of the standard (ETSI TS 101 475). With an 80-sample symbol
//! each 4 µs, a 64-point FFT, 52 used subcarriers of which 48 carry data,
//! and complex samples quantised to 16-bit I + 16-bit Q:
//!
//! | edge | samples/symbol | bandwidth |
//! |---|---|---|
//! | S/P → Prefix removal | 80 | 80×32 bit / 4 µs = **640 Mbit/s** |
//! | Prefix removal → FFT | 64 | 64×32 / 4 µs = **512 Mbit/s** |
//! | FFT → Channel eq. | 52 | 52×32 / 4 µs = **416 Mbit/s** |
//! | Channel eq. → De-map | 48 | 48×32 / 4 µs = **384 Mbit/s** |
//! | Hard bits | 48×bits/carrier | 12 (BPSK) … 72 (QAM-64) Mbit/s |
//!
//! This module computes the table from those first principles, so the
//! Table 1 bench regenerates the numbers instead of echoing them.

use crate::taskgraph::{TaskGraph, TrafficShape};
use noc_sim::units::Bandwidth;
use serde::{Deserialize, Serialize};

/// Subcarrier modulation of the data carriers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Modulation {
    /// 1 bit per carrier per symbol.
    Bpsk,
    /// 2 bits.
    Qpsk,
    /// 4 bits.
    Qam16,
    /// 6 bits.
    Qam64,
}

impl Modulation {
    /// Hard bits per data carrier per OFDM symbol.
    pub fn bits_per_carrier(self) -> u32 {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }
}

/// OFDM physical-layer parameters of HiperLAN/2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hiperlan2Params {
    /// Samples per OFDM symbol including the cyclic prefix.
    pub symbol_samples: u32,
    /// FFT length (samples after prefix removal).
    pub fft_size: u32,
    /// Used subcarriers after the FFT (data + pilots).
    pub used_carriers: u32,
    /// Data subcarriers after pilot removal.
    pub data_carriers: u32,
    /// Symbol period in microseconds.
    pub symbol_period_us: f64,
    /// Bits per I or Q component ("based on 16 bits quantization").
    pub sample_bits: u32,
    /// Data-carrier modulation.
    pub modulation: Modulation,
}

impl Hiperlan2Params {
    /// The standard's numbers as used in the paper.
    pub fn standard(modulation: Modulation) -> Hiperlan2Params {
        Hiperlan2Params {
            symbol_samples: 80,
            fft_size: 64,
            used_carriers: 52,
            data_carriers: 48,
            symbol_period_us: 4.0,
            sample_bits: 16,
            modulation,
        }
    }

    /// Bits per complex sample (I + Q).
    pub fn complex_bits(&self) -> u32 {
        2 * self.sample_bits
    }

    /// Bandwidth of `samples` complex samples delivered once per symbol.
    fn per_symbol(&self, samples: u32, bits_each: u32) -> Bandwidth {
        // bits / µs = Mbit/s.
        Bandwidth(f64::from(samples * bits_each) / self.symbol_period_us)
    }

    /// Edge 1–2: serial-to-parallel → prefix removal (full symbol).
    pub fn bw_sp_to_prefix(&self) -> Bandwidth {
        self.per_symbol(self.symbol_samples, self.complex_bits())
    }

    /// Edge 3–4: prefix removal → FFT (prefix stripped).
    pub fn bw_prefix_to_fft(&self) -> Bandwidth {
        self.per_symbol(self.fft_size, self.complex_bits())
    }

    /// Edge 5–6: FFT → channel equalisation (used carriers).
    pub fn bw_fft_to_equalizer(&self) -> Bandwidth {
        self.per_symbol(self.used_carriers, self.complex_bits())
    }

    /// Edge 7: channel equalisation → de-mapping (data carriers).
    pub fn bw_equalizer_to_demap(&self) -> Bandwidth {
        self.per_symbol(self.data_carriers, self.complex_bits())
    }

    /// Edge 8: hard bits out of the de-mapper.
    pub fn bw_hard_bits(&self) -> Bandwidth {
        self.per_symbol(self.data_carriers, self.modulation.bits_per_carrier())
    }

    /// Words (16-bit) per block on the S/P → prefix-removal edge; block
    /// traffic is what distinguishes OFDM from the UMTS streaming case.
    pub fn words_per_symbol(&self, samples: u32) -> u32 {
        samples * self.complex_bits() / 16
    }
}

/// Build the Fig. 2 process graph with Table 1 bandwidths.
pub fn task_graph(params: &Hiperlan2Params) -> TaskGraph {
    let mut g = TaskGraph::new("HiperLAN/2 baseband");
    let sp = g.add_process_with_affinity("Serial-to-parallel", "ASIC");
    let foc = g.add_process_with_affinity("Freq. offset correction", "DSRH");
    let prefix = g.add_process_with_affinity("Prefix removal", "DSRH");
    let fft = g.add_process_with_affinity("FFT", "FFT");
    let poc = g.add_process_with_affinity("Phase offset correction", "DSRH");
    let eq = g.add_process_with_affinity("Channel equalization", "DSRH");
    let demap = g.add_process_with_affinity("Demapping", "DSP");
    let sync = g.add_process_with_affinity("Synchronization & Control", "GPP");

    let block = |samples: u32, p: &Hiperlan2Params| TrafficShape::Block {
        words: p.words_per_symbol(samples),
        period_us: p.symbol_period_us,
    };

    g.add_edge(
        sp,
        foc,
        params.bw_sp_to_prefix(),
        block(params.symbol_samples, params),
        "S/P -> Pre-fix removal (1-2)",
    );
    g.add_edge(
        foc,
        prefix,
        params.bw_sp_to_prefix(),
        block(params.symbol_samples, params),
        "S/P -> Pre-fix removal (1-2)",
    );
    g.add_edge(
        prefix,
        fft,
        params.bw_prefix_to_fft(),
        block(params.fft_size, params),
        "Pre-fix removal -> FFT (3-4)",
    );
    g.add_edge(
        fft,
        poc,
        params.bw_fft_to_equalizer(),
        block(params.used_carriers, params),
        "FFT -> Channel eq. (5-6)",
    );
    g.add_edge(
        poc,
        eq,
        params.bw_fft_to_equalizer(),
        block(params.used_carriers, params),
        "FFT -> Channel eq. (5-6)",
    );
    g.add_edge(
        eq,
        demap,
        params.bw_equalizer_to_demap(),
        block(params.data_carriers, params),
        "Channel eq. -> De-map (7)",
    );
    g.add_edge(
        demap,
        sync,
        params.bw_hard_bits(),
        TrafficShape::Streaming,
        "Hard bits (8)",
    );
    g
}

/// Table 1 as `(label, Mbit/s)` rows computed from `params`.
pub fn table1(params: &Hiperlan2Params) -> Vec<(String, Bandwidth)> {
    vec![
        ("S/P -> Pre-fix removal".into(), params.bw_sp_to_prefix()),
        ("Pre-fix removal -> FFT".into(), params.bw_prefix_to_fft()),
        ("FFT -> Channel eq.".into(), params.bw_fft_to_equalizer()),
        (
            "Channel eq. -> De-map".into(),
            params.bw_equalizer_to_demap(),
        ),
        (
            format!("Hard bits ({:?})", params.modulation),
            params.bw_hard_bits(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_bandwidths_match_paper() {
        let p = Hiperlan2Params::standard(Modulation::Bpsk);
        assert!((p.bw_sp_to_prefix().value() - 640.0).abs() < 1e-9);
        assert!((p.bw_prefix_to_fft().value() - 512.0).abs() < 1e-9);
        assert!((p.bw_fft_to_equalizer().value() - 416.0).abs() < 1e-9);
        assert!((p.bw_equalizer_to_demap().value() - 384.0).abs() < 1e-9);
        assert!((p.bw_hard_bits().value() - 12.0).abs() < 1e-9, "BPSK");
    }

    #[test]
    fn hard_bits_range_matches_paper() {
        // "12 (BPSK) up to 72 (QAM-64)".
        let q64 = Hiperlan2Params::standard(Modulation::Qam64);
        assert!((q64.bw_hard_bits().value() - 72.0).abs() < 1e-9);
        let q16 = Hiperlan2Params::standard(Modulation::Qam16);
        assert!((q16.bw_hard_bits().value() - 48.0).abs() < 1e-9);
    }

    #[test]
    fn graph_structure_matches_fig2() {
        let g = task_graph(&Hiperlan2Params::standard(Modulation::Qam64));
        assert_eq!(g.process_count(), 8, "Fig. 2 has 8 blocks");
        assert_eq!(g.edge_count(), 7);
        assert!(g.find("FFT").is_some());
        assert!(g.topological_order().is_some(), "pipeline is acyclic");
    }

    #[test]
    fn block_shape_carries_symbol_words() {
        let p = Hiperlan2Params::standard(Modulation::Bpsk);
        let g = task_graph(&p);
        let (_, first_edge) = g.edges().next().unwrap();
        match first_edge.shape {
            TrafficShape::Block { words, period_us } => {
                // 80 complex samples x 32 bits / 16-bit words = 160 words.
                assert_eq!(words, 160);
                assert!((period_us - 4.0).abs() < 1e-12);
            }
            _ => panic!("OFDM edges are block-shaped"),
        }
    }

    #[test]
    fn peak_edge_is_within_one_lane_at_fmax() {
        // A 4-bit lane at 1075 MHz carries 1075*16/5 = 3440 Mbit/s payload:
        // even the 640 Mbit/s front-end edge fits one lane with margin
        // (paper Section 7.3: "maximum bandwidth of both routers can meet
        // the required bandwidth of the wireless applications").
        let p = Hiperlan2Params::standard(Modulation::Qam64);
        let g = task_graph(&p);
        let lane_payload_mbit = 1075.0 * 16.0 / 5.0;
        assert!(g.peak_edge_bandwidth().value() < lane_payload_mbit);
    }

    #[test]
    fn table1_row_count() {
        let rows = table1(&Hiperlan2Params::standard(Modulation::Bpsk));
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn total_graph_bandwidth() {
        // 640x2 + 512 + 416x2 + 384 + 12 = 3020 Mbit/s of GT traffic over
        // the seven edges of the pipeline.
        let g = task_graph(&Hiperlan2Params::standard(Modulation::Bpsk));
        assert!((g.total_bandwidth().value() - 3020.0).abs() < 1e-6);
    }
}
