//! Phase-shifting workload profiles for fleet-scale load generation.
//!
//! A [`PhaseProfile`] modulates a deployment's *offered* load over time:
//! it maps `(cycle, stream index)` to a scale factor on the stream's
//! declared rate (1.0 = the demand as mapped, 0.0 = an off-phase).
//! Profiles are **pure functions of time** — they carry no mutable
//! state — so a replay from any checkpoint reproduces the exact same
//! phases for free, which is what makes fleet snapshot/restore
//! deterministic end to end.
//!
//! Three adversarial shapes beyond steady offered load, each targeting a
//! different control-plane weakness:
//!
//! * [`PhaseProfile::BurstyOnOff`] — square-wave duty cycling. The
//!   off-phases read as abandonment to any policy that trusts a single
//!   measurement window; this is the generator the hardened
//!   `LoadDemotion` (EWMA + minimum dwell) is proven non-flapping under.
//! * [`PhaseProfile::DiurnalRamp`] — a slow triangle wave between a
//!   floor and full demand, the classic day/night load curve compressed
//!   into simulation cycles. Stresses admission headroom as the whole
//!   fleet swells and shrinks together.
//! * [`PhaseProfile::HotspotFlip`] — all streams idle at a background
//!   level except one hot stream at full demand, and the hot index
//!   rotates every period. Adversarial for profiled policies: history
//!   chases a target that keeps moving.

/// A deterministic offered-load profile: scale factors over time, per
/// stream. See the module docs for the shapes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhaseProfile {
    /// Constant full demand — the baseline every other profile deviates
    /// from.
    Steady,
    /// Square-wave duty cycling: within each `period` cycles, offered
    /// load runs at full demand for `on` cycles, then at zero for the
    /// rest. Streams alternate phase by index (even indices start on,
    /// odd indices start off), so a multi-stream tenant never goes
    /// entirely silent.
    BurstyOnOff {
        /// Full burst period in cycles.
        period: u64,
        /// Cycles at full demand inside each period (`0 < on <= period`).
        on: u64,
    },
    /// A triangle wave between `floor` (a fraction of demand) and full
    /// demand, rising over the first half of `period` and falling over
    /// the second.
    DiurnalRamp {
        /// Full ramp period in cycles.
        period: u64,
        /// Offered-load fraction at the bottom of the ramp (`0.0..=1.0`).
        floor: f64,
    },
    /// One rotating hot stream at full demand; every other stream idles
    /// at `background`. The hot index is `(cycle / period) % streams`,
    /// so each flip hands the hotspot to the next stream.
    HotspotFlip {
        /// Cycles between hotspot flips.
        period: u64,
        /// Offered-load fraction of the non-hot streams (`0.0..=1.0`).
        background: f64,
    },
}

impl PhaseProfile {
    /// A short stable label for reports and bench artefacts.
    pub fn label(&self) -> &'static str {
        match self {
            PhaseProfile::Steady => "steady",
            PhaseProfile::BurstyOnOff { .. } => "bursty-on-off",
            PhaseProfile::DiurnalRamp { .. } => "diurnal-ramp",
            PhaseProfile::HotspotFlip { .. } => "hotspot-flip",
        }
    }

    /// The offered-load scale for stream `stream` of `streams` at
    /// absolute cycle `cycle`. Always in `0.0..=1.0`; pure in all three
    /// arguments.
    pub fn scale(&self, cycle: u64, stream: usize, streams: usize) -> f64 {
        match *self {
            PhaseProfile::Steady => 1.0,
            PhaseProfile::BurstyOnOff { period, on } => {
                let period = period.max(1);
                let on = on.clamp(1, period);
                // Odd streams run the complementary phase.
                let shifted = cycle + (stream as u64 % 2) * (period / 2);
                if shifted % period < on {
                    1.0
                } else {
                    0.0
                }
            }
            PhaseProfile::DiurnalRamp { period, floor } => {
                let period = period.max(2);
                let phase = cycle % period;
                let half = period / 2;
                // 0 -> 1 over the first half, 1 -> 0 over the second.
                let up = if phase < half {
                    phase as f64 / half as f64
                } else {
                    (period - phase) as f64 / (period - half) as f64
                };
                floor.clamp(0.0, 1.0) + (1.0 - floor.clamp(0.0, 1.0)) * up
            }
            PhaseProfile::HotspotFlip { period, background } => {
                let streams = streams.max(1) as u64;
                let hot = (cycle / period.max(1)) % streams;
                if stream as u64 == hot {
                    1.0
                } else {
                    background.clamp(0.0, 1.0)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_is_always_full_demand() {
        for cycle in [0, 1, 999_999] {
            assert_eq!(PhaseProfile::Steady.scale(cycle, 0, 3), 1.0);
        }
    }

    #[test]
    fn bursty_square_wave_cycles_on_and_off() {
        let p = PhaseProfile::BurstyOnOff {
            period: 256,
            on: 192,
        };
        assert_eq!(p.scale(0, 0, 1), 1.0);
        assert_eq!(p.scale(191, 0, 1), 1.0);
        assert_eq!(p.scale(192, 0, 1), 0.0);
        assert_eq!(p.scale(255, 0, 1), 0.0);
        assert_eq!(p.scale(256, 0, 1), 1.0, "periodic");
        // Odd streams run the complementary phase (shifted half a period).
        assert_eq!(p.scale(192, 1, 2), 1.0);
    }

    #[test]
    fn diurnal_ramp_spans_floor_to_full() {
        let p = PhaseProfile::DiurnalRamp {
            period: 1000,
            floor: 0.2,
        };
        assert!((p.scale(0, 0, 1) - 0.2).abs() < 1e-12, "bottom of the ramp");
        assert!((p.scale(500, 0, 1) - 1.0).abs() < 1e-12, "peak at midday");
        let rising = p.scale(250, 0, 1);
        assert!(rising > 0.2 && rising < 1.0);
        assert_eq!(p.scale(250, 0, 1), p.scale(1250, 0, 1), "periodic");
    }

    #[test]
    fn hotspot_rotates_through_the_streams() {
        let p = PhaseProfile::HotspotFlip {
            period: 100,
            background: 0.1,
        };
        assert_eq!(p.scale(0, 0, 3), 1.0);
        assert_eq!(p.scale(0, 1, 3), 0.1);
        assert_eq!(p.scale(100, 1, 3), 1.0, "the hotspot moved on");
        assert_eq!(p.scale(100, 0, 3), 0.1);
        assert_eq!(p.scale(300, 0, 3), 1.0, "wraps around");
    }

    #[test]
    fn every_profile_stays_in_unit_range() {
        let profiles = [
            PhaseProfile::Steady,
            PhaseProfile::BurstyOnOff { period: 64, on: 16 },
            PhaseProfile::DiurnalRamp {
                period: 300,
                floor: 0.25,
            },
            PhaseProfile::HotspotFlip {
                period: 50,
                background: 0.3,
            },
        ];
        for p in profiles {
            for cycle in 0..1000 {
                for stream in 0..4 {
                    let s = p.scale(cycle, stream, 4);
                    assert!((0.0..=1.0).contains(&s), "{p:?} out of range: {s}");
                }
            }
        }
    }
}
