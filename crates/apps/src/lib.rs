//! # noc-apps — wireless baseband workloads and the traffic-pattern test set
//!
//! Section 3 of the paper derives the NoC's requirements from three wireless
//! applications; this crate models all three, plus the synthetic traffic
//! patterns of Section 6:
//!
//! * [`taskgraph`] — the Kahn-like process-graph representation applications
//!   are partitioned into (paper Section 1: "communicating functional
//!   processes" mapped onto tiles at run time).
//! * [`hiperlan2`] — the HiperLAN/2 OFDM baseband pipeline (Fig. 2) with
//!   edge bandwidths *derived* from the standard's parameters — 80-sample
//!   symbols every 4 µs, 64-point FFT, 52 used / 48 data subcarriers,
//!   16-bit I/Q quantisation — reproducing Table 1.
//! * [`umts`] — the UMTS W-CDMA RAKE receiver (Fig. 3) with bandwidths
//!   derived from the 3.84 Mchip/s rate, 8-bit I/Q chips, the spreading
//!   factor and the finger count — reproducing Table 2.
//! * [`drm`] — Digital Radio Mondiale: structurally the HiperLAN/2 pipeline
//!   at roughly 1/1000 of the rates (paper Section 3: "communication
//!   requirements are a factor 1000 less").
//! * [`traffic`] — the bit-flip data patterns (best/typical/worst of
//!   Section 6.1), load-controlled phit sources, and word-stream helpers.
//! * [`scenarios`] — the stream set of Table 3 and the four test scenarios
//!   of Fig. 8.
//! * [`synthetic`] — lane-capacity-relative synthetic workloads shared by
//!   benches and tests (e.g. the oversubscribed two-stream line behind the
//!   hybrid fabric's spillover comparisons).
//! * [`workload`] — phase-shifting offered-load profiles
//!   ([`workload::PhaseProfile`]): bursty on/off duty cycling, diurnal
//!   ramps and rotating hotspots, as pure functions of the cycle counter
//!   so fleet replays are deterministic.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod drm;
pub mod hiperlan2;
pub mod scenarios;
pub mod synthetic;
pub mod taskgraph;
pub mod traffic;
pub mod umts;
pub mod workload;

pub use scenarios::{Scenario, StreamDef, StreamId};
pub use taskgraph::{EdgeId, ProcessId, TaskGraph, TrafficShape};
pub use traffic::{DataPattern, PhitSource, WordStream};
pub use workload::PhaseProfile;
