//! Digital Radio Mondiale (DRM) baseband model.
//!
//! Paper Section 3: "The block diagram of DRM is similar to HiperLAN/2, but
//! the communication requirements are a factor 1000 less compared to
//! HiperLAN/2." DRM is also OFDM, but with symbol periods in the tens of
//! milliseconds (robustness mode A: ~26.66 ms vs HiperLAN/2's 4 µs) and far
//! fewer carriers per unit time — hence the three-orders-of-magnitude rate
//! difference that makes DRM the NoC's low-bandwidth corner case: the same
//! router configuration must serve kbit/s and hundreds of Mbit/s streams
//! (Section 3.3: "this varies widely from several kbit/s (DRM) up to more
//! than 0.5 Gbit/s (HiperLAN/2)").

use crate::hiperlan2::{Hiperlan2Params, Modulation};
use crate::taskgraph::{TaskGraph, TrafficShape};
use noc_sim::units::Bandwidth;
use serde::{Deserialize, Serialize};

/// The rate divisor between HiperLAN/2 and DRM ("a factor 1000 less").
pub const DRM_RATE_FACTOR: f64 = 1000.0;

/// DRM receiver parameters, expressed relative to the HiperLAN/2 pipeline
/// they structurally mirror.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DrmParams {
    /// The OFDM pipeline structure (block sizes, quantisation).
    pub ofdm: Hiperlan2Params,
    /// Bandwidth divisor relative to HiperLAN/2.
    pub rate_factor: f64,
}

impl DrmParams {
    /// The paper's characterisation: HiperLAN/2 structure at 1/1000 rate.
    pub fn standard() -> DrmParams {
        DrmParams {
            // DRM robustness modes use QAM-16/QAM-64 on the data carriers.
            ofdm: Hiperlan2Params::standard(Modulation::Qam16),
            rate_factor: DRM_RATE_FACTOR,
        }
    }

    /// Scale a HiperLAN/2 edge bandwidth down to DRM's.
    fn scaled(&self, bw: Bandwidth) -> Bandwidth {
        Bandwidth(bw.value() / self.rate_factor)
    }

    /// Front-end edge bandwidth (~0.64 Mbit/s).
    pub fn bw_front_end(&self) -> Bandwidth {
        self.scaled(self.ofdm.bw_sp_to_prefix())
    }

    /// Hard-bit output bandwidth (tens of kbit/s).
    pub fn bw_hard_bits(&self) -> Bandwidth {
        self.scaled(self.ofdm.bw_hard_bits())
    }
}

/// Build the DRM process graph: the HiperLAN/2 pipeline with every edge
/// bandwidth divided by the rate factor and block periods stretched
/// accordingly.
pub fn task_graph(params: &DrmParams) -> TaskGraph {
    let base = crate::hiperlan2::task_graph(&params.ofdm);
    let mut g = TaskGraph::new("DRM receiver");
    // Mirror processes.
    for (_, p) in base.processes() {
        match &p.affinity {
            Some(a) => g.add_process_with_affinity(p.name.clone(), a.clone()),
            None => g.add_process(p.name.clone()),
        };
    }
    // Mirror edges at scaled bandwidth and stretched periods.
    for (_, e) in base.edges() {
        let shape = match e.shape {
            TrafficShape::Block { words, period_us } => TrafficShape::Block {
                words,
                period_us: period_us * params.rate_factor,
            },
            TrafficShape::Streaming => TrafficShape::Streaming,
        };
        g.add_edge(
            e.src,
            e.dst,
            Bandwidth(e.bandwidth.value() / params.rate_factor),
            shape,
            e.label.clone(),
        );
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_a_factor_1000_below_hiperlan2() {
        let p = DrmParams::standard();
        assert!((p.bw_front_end().value() - 0.64).abs() < 1e-9);
        let h = crate::hiperlan2::task_graph(&p.ofdm);
        let d = task_graph(&p);
        assert!((h.total_bandwidth().value() / d.total_bandwidth().value() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn structure_mirrors_hiperlan2() {
        let p = DrmParams::standard();
        let h = crate::hiperlan2::task_graph(&p.ofdm);
        let d = task_graph(&p);
        assert_eq!(d.process_count(), h.process_count());
        assert_eq!(d.edge_count(), h.edge_count());
    }

    #[test]
    fn kbits_per_second_scale() {
        // "several kbit/s (DRM)": the hard-bit edge lands in the tens of
        // kbit/s for QAM-16.
        let p = DrmParams::standard();
        let kbit = p.bw_hard_bits().value() * 1000.0;
        assert!(
            (10.0..100.0).contains(&kbit),
            "hard bits should be tens of kbit/s, got {kbit}"
        );
    }

    #[test]
    fn block_periods_stretched() {
        let d = task_graph(&DrmParams::standard());
        let (_, first) = d.edges().next().unwrap();
        match first.shape {
            TrafficShape::Block { period_us, .. } => {
                assert!((period_us - 4000.0).abs() < 1e-9, "4 µs -> 4 ms");
            }
            _ => panic!("front-end edge is block traffic"),
        }
    }
}
