//! Synthetic workloads shared by benches and tests.
//!
//! These task graphs are defined relative to the NoC's *lane capacity*
//! instead of absolute Mbit/s, so the premise they encode ("this demand
//! takes 3 lanes") survives clock or serialisation-width changes — every
//! bench and test that needs, say, an oversubscribed circuit plane builds
//! it from one place.

use crate::taskgraph::{TaskGraph, TrafficShape};
use noc_sim::units::Bandwidth;

/// Two streams converging on one sink of a 3×1 line, sized so circuit
/// lanes *cannot* admit both: the heavy demand takes ⌈2.9⌉ = 3 lanes and
/// the light one ⌈1.9⌉ = 2, but the final eastbound link only has 4 —
/// strict admission fails with `NoPath`, spill admission routes the heavy
/// stream and spills the light one. This is the canonical workload behind
/// the hybrid fabric's three-way energy comparison (the spillover plane
/// must demonstrably carry traffic) and the `FabricKind` determinism and
/// parity tests.
///
/// `lane_capacity` is the payload bandwidth of one lane at the deployment
/// clock (`Ccn::lane_capacity`, i.e. clock ×
/// `RouterParams::lane_payload_bits_per_cycle`).
pub fn oversubscribed_line(lane_capacity: Bandwidth) -> TaskGraph {
    let lane = lane_capacity.value();
    let mut g = TaskGraph::new("oversubscribed-line");
    let a = g.add_process("a");
    let b = g.add_process("b");
    let d = g.add_process("d");
    g.add_edge(
        a,
        d,
        Bandwidth(lane * 2.9),
        TrafficShape::Streaming,
        "heavy (3 lanes)",
    );
    g.add_edge(
        b,
        d,
        Bandwidth(lane * 1.9),
        TrafficShape::Streaming,
        "light (spills)",
    );
    g
}

/// An `stages`-process streaming pipeline: a line of processes, each
/// feeding the next at `per_stage` bandwidth. The generic "app-shaped"
/// workload behind the end-to-end tests and both bench bins — one shape,
/// scaled by stage count, so a change to pipeline semantics lands
/// everywhere at once.
pub fn streaming_pipeline(stages: usize, per_stage: Bandwidth) -> TaskGraph {
    let mut g = TaskGraph::new("pipeline");
    let ids: Vec<_> = (0..stages)
        .map(|i| g.add_process(format!("s{i}")))
        .collect();
    for w in ids.windows(2) {
        g.add_edge(w[0], w[1], per_stage, TrafficShape::Streaming, "stage");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_pipeline_is_a_line() {
        let g = streaming_pipeline(4, Bandwidth(60.0));
        assert_eq!(g.edges().count(), 3, "4 stages, 3 hops");
        assert!(g.edges().all(|(_, e)| e.bandwidth == Bandwidth(60.0)));
    }

    #[test]
    fn demands_take_three_plus_two_lanes() {
        let g = oversubscribed_line(Bandwidth(80.0));
        let lanes: Vec<usize> = g
            .edges()
            .map(|(_, e)| (e.bandwidth.value() / 80.0).ceil() as usize)
            .collect();
        assert_eq!(lanes, vec![3, 2], "3 + 2 > 4 lanes of the shared link");
    }
}
