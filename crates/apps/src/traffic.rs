//! The traffic-pattern test set of paper Section 6.
//!
//! Power depends on three parameters the paper identifies: per-stream load
//! (0–100% of a lane), the amount of bit-flips in the data (best case: all
//! zeros; worst case: continuous flips; typical: random, 50% flips), and
//! the number of concurrent streams (handled by [`crate::scenarios`]).
//! This module provides the first two as deterministic, seedable
//! generators.

use noc_core::phit::Phit;
use noc_sim::rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// The data patterns of Section 6.1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DataPattern {
    /// Best case: "no bit-flips, transmitting only zeros".
    Zeros,
    /// Worst case: "continuous bit-flips" — every bit toggles every word.
    Toggle,
    /// Typical case: "random data with 50% bit-flips".
    Random,
    /// Generalisation for sweeps: each bit flips from the previous word
    /// with this probability (0.0 = `Zeros` from a zero start, 0.5 behaves
    /// like `Random`, 1.0 = `Toggle`).
    BitFlip(f64),
}

impl DataPattern {
    /// Expected fraction of bits flipping between consecutive words.
    pub fn flip_fraction(self) -> f64 {
        match self {
            DataPattern::Zeros => 0.0,
            DataPattern::Toggle => 1.0,
            DataPattern::Random => 0.5,
            DataPattern::BitFlip(p) => p.clamp(0.0, 1.0),
        }
    }

    /// The paper's three test levels in presentation order (Fig. 10's
    /// x-axis: 0%, 50%, 100%).
    pub const LEVELS: [DataPattern; 3] =
        [DataPattern::Zeros, DataPattern::Random, DataPattern::Toggle];
}

/// A deterministic stream of 16-bit data words following a [`DataPattern`].
#[derive(Debug, Clone)]
pub struct WordStream {
    pattern: DataPattern,
    prev: u16,
    rng: SplitMix64,
}

impl WordStream {
    /// A stream with the given pattern and seed (seeds make experiments
    /// reproducible and give concurrent streams independent data).
    pub fn new(pattern: DataPattern, seed: u64) -> WordStream {
        WordStream {
            pattern,
            prev: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// The next data word.
    pub fn next_word(&mut self) -> u16 {
        let word = match self.pattern {
            DataPattern::Zeros => 0,
            DataPattern::Toggle => self.prev ^ 0xFFFF,
            DataPattern::Random => self.rng.next_u16(),
            DataPattern::BitFlip(p) => {
                let mut mask = 0u16;
                for bit in 0..16 {
                    if self.rng.chance(p) {
                        mask |= 1 << bit;
                    }
                }
                self.prev ^ mask
            }
        };
        self.prev = word;
        word
    }

    /// Measure the empirical flip fraction over `n` words (test helper and
    /// self-check for experiment harnesses).
    pub fn measure_flip_fraction(&mut self, n: usize) -> f64 {
        let mut prev = self.prev;
        let mut flips = 0u64;
        for _ in 0..n {
            let w = self.next_word();
            flips += u64::from((prev ^ w).count_ones());
            prev = w;
        }
        flips as f64 / (n as f64 * 16.0)
    }
}

/// A load-controlled phit source for one lane.
///
/// At 100% load a lane carries one phit per `flits_per_phit` cycles (the
/// paper's 80 Mbit/s per stream at 25 MHz); at lower loads phits are
/// offered at the proportional rate. Backlog accumulates while the router
/// refuses (busy serialiser or closed flow-control window), so a source
/// that is briefly blocked catches up — offered load is preserved.
#[derive(Debug, Clone)]
pub struct PhitSource {
    words: WordStream,
    /// Phits per cycle offered (load / flits_per_phit).
    rate: f64,
    /// Accumulated phit credit.
    acc: f64,
    /// Phits actually emitted.
    pub emitted: u64,
}

impl PhitSource {
    /// A source offering `load` (0.0–1.0) of a lane whose phit takes
    /// `flits_per_phit` cycles.
    pub fn new(pattern: DataPattern, seed: u64, load: f64, flits_per_phit: usize) -> PhitSource {
        assert!((0.0..=1.0).contains(&load), "load is a fraction");
        PhitSource {
            words: WordStream::new(pattern, seed),
            rate: load / flits_per_phit as f64,
            acc: 0.0,
            emitted: 0,
        }
    }

    /// Advance one cycle. `can_send` reports whether the router would
    /// accept a phit right now; returns the phit to inject, if one is due
    /// and sendable.
    pub fn poll(&mut self, can_send: bool) -> Option<Phit> {
        self.acc += self.rate;
        // The epsilon absorbs accumulated f64 rounding (e.g. 10 x 0.1
        // summing to 0.9999...), which would otherwise skew low loads.
        if self.acc + 1e-9 >= 1.0 && can_send {
            self.acc -= 1.0;
            self.emitted += 1;
            Some(Phit::data(self.words.next_word()))
        } else {
            None
        }
    }

    /// Phits currently backed up waiting for the router.
    pub fn backlog(&self) -> u64 {
        self.acc as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_never_flip() {
        let mut s = WordStream::new(DataPattern::Zeros, 1);
        assert_eq!(s.measure_flip_fraction(100), 0.0);
    }

    #[test]
    fn toggle_always_flips() {
        let mut s = WordStream::new(DataPattern::Toggle, 1);
        assert_eq!(s.measure_flip_fraction(100), 1.0);
        let mut t = WordStream::new(DataPattern::Toggle, 1);
        assert_eq!(t.next_word(), 0xFFFF);
        assert_eq!(t.next_word(), 0x0000);
    }

    #[test]
    fn random_flips_about_half() {
        let mut s = WordStream::new(DataPattern::Random, 2005);
        let f = s.measure_flip_fraction(10_000);
        assert!((f - 0.5).abs() < 0.02, "random flip fraction {f}");
    }

    #[test]
    fn bitflip_probability_respected() {
        for p in [0.1, 0.25, 0.75] {
            let mut s = WordStream::new(DataPattern::BitFlip(p), 7);
            let f = s.measure_flip_fraction(10_000);
            assert!((f - p).abs() < 0.02, "p={p}, measured {f}");
        }
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = WordStream::new(DataPattern::Random, 42);
        let mut b = WordStream::new(DataPattern::Random, 42);
        for _ in 0..50 {
            assert_eq!(a.next_word(), b.next_word());
        }
        let mut c = WordStream::new(DataPattern::Random, 43);
        let first_c: Vec<u16> = (0..8).map(|_| c.next_word()).collect();
        let mut a2 = WordStream::new(DataPattern::Random, 42);
        let first_a: Vec<u16> = (0..8).map(|_| a2.next_word()).collect();
        assert_ne!(first_c, first_a);
    }

    #[test]
    fn full_load_is_one_phit_per_five_cycles() {
        let mut src = PhitSource::new(DataPattern::Random, 1, 1.0, 5);
        let mut sent = 0;
        for _ in 0..100 {
            if src.poll(true).is_some() {
                sent += 1;
            }
        }
        assert_eq!(sent, 20, "100 cycles / 5 = 20 phits at 100% load");
    }

    #[test]
    fn half_load_halves_the_rate() {
        let mut src = PhitSource::new(DataPattern::Random, 1, 0.5, 5);
        let mut sent = 0;
        for _ in 0..100 {
            if src.poll(true).is_some() {
                sent += 1;
            }
        }
        assert_eq!(sent, 10);
    }

    #[test]
    fn zero_load_sends_nothing() {
        let mut src = PhitSource::new(DataPattern::Zeros, 1, 0.0, 5);
        for _ in 0..50 {
            assert_eq!(src.poll(true), None);
        }
    }

    #[test]
    fn backlog_preserved_while_blocked() {
        let mut src = PhitSource::new(DataPattern::Random, 1, 1.0, 5);
        // Blocked for 25 cycles: 5 phits of backlog accumulate.
        for _ in 0..25 {
            assert_eq!(src.poll(false), None);
        }
        assert_eq!(src.backlog(), 5);
        // Once unblocked, it catches up at one per cycle.
        let mut burst = 0;
        for _ in 0..5 {
            if src.poll(true).is_some() {
                burst += 1;
            }
        }
        assert_eq!(burst, 5, "backlog drains back-to-back");
    }

    #[test]
    #[should_panic(expected = "load is a fraction")]
    fn overload_rejected() {
        let _ = PhitSource::new(DataPattern::Zeros, 1, 1.5, 5);
    }
}
