//! Dump a VCD waveform of a live circuit for inspection in GTKWave.
//!
//! Records the Scenario II signals of the circuit router — tile serialiser
//! output, the East-bound lane, the reverse ack wire and the source's
//! window-counter credits — for 200 cycles.
//!
//! ```text
//! cargo run --release --example waveform_dump
//! gtkwave scenario_ii.vcd   # (on a machine with a waveform viewer)
//! ```

use noc_sim::trace::VcdWriter;
use rcs_noc::prelude::*;
use std::fs::File;
use std::io::BufWriter;

fn main() -> std::io::Result<()> {
    let mut router = CircuitRouter::new(RouterParams::paper());
    router.connect(Port::Tile, 0, Port::East, 0).unwrap();

    let path = "scenario_ii.vcd";
    let mut vcd = VcdWriter::new(BufWriter::new(File::create(path)?));
    let s_lane = vcd.declare("east_lane0_data", 4);
    let s_ack = vcd.declare("east_lane0_ack_in", 1);
    let s_credits = vcd.declare("tile0_window_credits", 8);
    let s_busy = vcd.declare("tile0_tx_busy", 1);

    let mut word: u16 = 0;
    let mut received_since_ack = 0u32;
    let mut rx = noc_core::converter::RxDeserializer::new();
    let mut scratch = noc_sim::ActivityLedger::new();

    for _cycle in 0..200 {
        if router.tile_can_send(0) {
            router.tile_send(0, Phit::data(0xC0DE_u16.wrapping_add(word)));
            word = word.wrapping_add(1);
        }
        noc_sim::kernel::step(&mut router);

        // Downstream consumer: deserialise and ack every 4th phit.
        let nib = router.link_output(Port::East, 0);
        rx.eval(nib);
        let mut ack = false;
        if rx.commit(&mut scratch).is_some() {
            received_since_ack += 1;
            if received_since_ack == 4 {
                received_since_ack = 0;
                ack = true;
            }
        }
        router.set_ack_input(Port::East, 0, ack);

        vcd.change(s_lane, u64::from(nib.get()));
        vcd.change(s_ack, u64::from(ack));
        vcd.change(s_credits, u64::from(router.tile_credits(0)));
        vcd.change(s_busy, u64::from(router.tile_rx_pending(0) > 0));
        vcd.tick()?;
    }
    vcd.finish()?;
    println!("Wrote {path}: 200 cycles of Scenario II (tile -> East lane 0).");
    println!("Signals: lane data nibbles, ack pulses, window credits.");
    Ok(())
}
