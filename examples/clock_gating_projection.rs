//! The paper's future work, implemented: clock gating of unused lanes.
//!
//! Section 7.3/8: "For clock gating we can use the configuration
//! information of the router and switch off the unused lanes. If clock
//! gating is used, we expect that this offset will decrease. The lower
//! offset will cause more variations in the power consumption due to
//! variations in the traffic patterns." This example quantifies that
//! projection with the same models that reproduce Fig. 9/10.
//!
//! ```text
//! cargo run --release --example clock_gating_projection
//! ```

use noc_exp::testbench::CircuitScenarioBench;
use noc_power::area::circuit_router_area;
use rcs_noc::prelude::*;

/// Dynamic µW/MHz for all four scenarios with or without clock gating.
fn sweep(gating: bool) -> [f64; 4] {
    let estimator = PowerEstimator::calibrated();
    let freq = MegaHertz(25.0);
    let cycles = 5000;
    let params = RouterParams {
        clock_gating: gating,
        ..RouterParams::paper()
    };
    let area = circuit_router_area(&params, estimator.tech()).total();
    let mut out = [0.0; 4];
    for (i, scenario) in Scenario::ALL.into_iter().enumerate() {
        let mut bench = CircuitScenarioBench::new(params, scenario, DataPattern::Random, 1.0);
        let outcome = bench.run(cycles);
        let p = estimator.estimate(&outcome.activity, cycles, freq, area);
        out[i] = p.dynamic_uw_per_mhz();
    }
    out
}

fn main() {
    println!("Clock gating projection (circuit router, random data, 100% load)\n");
    let ungated = sweep(false);
    let gated = sweep(true);

    println!("            dynamic power [uW/MHz]");
    println!("  scenario   ungated    gated    saving");
    for (i, scenario) in Scenario::ALL.into_iter().enumerate() {
        println!(
            "  {:<10} {:>7.2}  {:>7.2}   {:>5.1}%",
            scenario.to_string(),
            ungated[i],
            gated[i],
            (1.0 - gated[i] / ungated[i]) * 100.0
        );
    }

    let spread_ungated = ungated[3] - ungated[0];
    let spread_gated = gated[3] - gated[0];
    println!(
        "\nScenario spread (IV - I): ungated {spread_ungated:+.2}, gated {spread_gated:+.2} uW/MHz"
    );
    println!(
        "Relative spread: ungated {:.1}%, gated {:.1}%",
        spread_ungated / ungated[0] * 100.0,
        spread_gated / gated[0] * 100.0
    );
    println!("\nAs the paper predicted: gating shrinks the offset and makes power");
    println!("track the traffic pattern much more strongly.");
}
