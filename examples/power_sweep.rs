//! Power sweep from the public API — Fig. 10 and beyond.
//!
//! Reproduces the paper's bit-flip sweep, then extends it along the axis
//! the paper lists but does not plot: offered load from 0% to 100%
//! (Section 6: "The average load of every data stream ... varies between
//! 0% and 100%").
//!
//! ```text
//! cargo run --release --example power_sweep
//! ```

use noc_exp::testbench::{CircuitScenarioBench, PacketScenarioBench};
use noc_power::area::{circuit_router_area, packet_router_area};
use rcs_noc::prelude::*;

fn main() {
    let estimator = PowerEstimator::calibrated();
    let freq = MegaHertz(25.0);
    let cycles = 5000;

    // --- The paper's Fig. 10 axis: bit-flip rate. ------------------------
    println!("Dynamic power [uW/MHz] vs bit-flip rate (Scenario IV, 100% load):");
    let fig = fig10();
    for router in RouterKind::BOTH {
        let series = fig.series(router, Scenario::IV);
        println!(
            "  {:<8} 0%: {:6.2}   50%: {:6.2}   100%: {:6.2}",
            format!("{router:?}"),
            series[0].uw_per_mhz,
            series[1].uw_per_mhz,
            series[2].uw_per_mhz
        );
    }

    // --- The extension: load sweep at the typical data pattern. ---------
    println!("\nDynamic power [uW/MHz] vs offered load (Scenario IV, random data):");
    let c_area = circuit_router_area(&RouterParams::paper(), estimator.tech()).total();
    let p_area = packet_router_area(&PacketParams::paper(), estimator.tech()).total();
    println!("  load    circuit   packet");
    for load_pct in [0u32, 25, 50, 75, 100] {
        let load = f64::from(load_pct) / 100.0;
        let mut c = CircuitScenarioBench::new(
            RouterParams::paper(),
            Scenario::IV,
            DataPattern::Random,
            load,
        );
        let cout = c.run(cycles);
        let cp = estimator.estimate(&cout.activity, cycles, freq, c_area);
        let mut p = PacketScenarioBench::new(
            PacketParams::paper(),
            Scenario::IV,
            DataPattern::Random,
            load,
        );
        let pout = p.run(cycles);
        let pp = estimator.estimate(&pout.activity, cycles, freq, p_area);
        println!(
            "  {load_pct:>3}%   {:7.2}   {:7.2}",
            cp.dynamic_uw_per_mhz(),
            pp.dynamic_uw_per_mhz()
        );
    }
    println!("\nThe offset dominates both routers at every load — the paper's core");
    println!("observation, and its motivation for the clock-gating future work");
    println!("(see `cargo run --release --example clock_gating_projection`).");
}
