//! UMTS W-CDMA RAKE receiver on the SoC — the streaming workload.
//!
//! Section 3.2's receiver: four RAKE fingers at spreading factor 4,
//! ~320 Mbit/s of aggregate guaranteed-throughput traffic in many small
//! streams (the opposite traffic shape to HiperLAN/2's blocks). The CCN's
//! clustering co-locates the control/MRC processes whose fan-out exceeds
//! the four tile-interface lanes — watch the placement output. Deployed
//! through the unified builder onto the circuit-switched fabric.
//!
//! ```text
//! cargo run --release --example umts_rake
//! ```

use rcs_noc::prelude::*;

fn main() {
    let params = UmtsParams::paper_example();
    let graph = noc_apps::umts::task_graph(&params);
    println!("{graph}");
    println!(
        "Aggregate GT demand: {:.1} Mbit/s (paper example: ~320 Mbit/s)\n",
        params.total_bandwidth().value()
    );

    let clock = MegaHertz(100.0);
    let mut dep = Deployment::builder(&graph)
        .mesh(4, 4)
        .clock(clock)
        .seed(77)
        .build_circuit()
        .expect("UMTS fits a 4x4 mesh");

    // Show where the CCN put things (clustered processes share a node).
    println!("Placement (note co-located processes):");
    for (pid, node) in &dep.mapping().placement {
        let (x, y) = dep.fabric().mesh().coords(*node);
        println!("  {:<28} -> tile ({x},{y})", graph.process(*pid).name);
    }

    dep.run(20_000);
    dep.settle(5_000);
    println!("\nPer-circuit delivery:");
    let mut aggregate = 0.0;
    for r in dep.report(&graph) {
        println!(
            "  {:<60} {:>6.2} / {:>6.2} Mbit/s ({:>5.1}%)",
            r.labels.join(" + "),
            r.measured.value(),
            r.required.value(),
            r.delivered_fraction * 100.0
        );
        assert!(r.delivered_fraction > 0.85, "GT violated on {:?}", r.labels);
        aggregate += r.measured.value();
    }
    println!("\nAggregate delivered over the NoC: {aggregate:.1} Mbit/s");
    println!("(on-tile circuits — co-located processes — add the rest for free)");
    assert_eq!(dep.total_overflows(), 0, "window flow control lost data");

    let model = dep.energy_model();
    println!(
        "Fabric power over the run: {} — {:.2} uJ total",
        dep.power(&model),
        dep.total_energy(&model).value() / 1e9
    );
}
