//! HiperLAN/2 baseband receiver on a 4×4 multi-tile SoC.
//!
//! The paper's motivating workload (Section 3.1): the OFDM pipeline of
//! Fig. 2 with the Table 1 bandwidths, deployed through the unified
//! [`Deployment`] builder. The same scenario runs on **both** switching
//! fabrics; the example checks guaranteed throughput on each and prints
//! the energy gap between them — the paper's argument, per workload.
//!
//! ```text
//! cargo run --release --example hiperlan2_receiver
//! ```

use rcs_noc::prelude::*;

fn main() {
    // The NoC runs at 200 MHz so one 4-bit lane carries 640 Mbit/s of
    // payload — exactly the heaviest Table 1 edge.
    let clock = MegaHertz(200.0);
    let graph = noc_apps::hiperlan2::task_graph(&Hiperlan2Params::standard(Modulation::Qam64));
    println!("{graph}");

    // Simulate 100 us of baseband traffic (25 OFDM symbols).
    let cycles = noc_sim::time::cycles_in(Picoseconds::from_micros(100.0), clock);

    let mut energies = Vec::new();
    for kind in FabricKind::BOTH {
        let mut dep = Deployment::builder(&graph)
            .mesh(4, 4)
            .clock(clock)
            .seed(2005)
            .fabric(kind)
            .build()
            .expect("HiperLAN/2 fits a 4x4 mesh");
        dep.run(cycles);
        dep.settle(cycles / 2);

        println!(
            "\n[{kind}] per-circuit delivery after {} cycles:",
            dep.cycles_run()
        );
        for r in dep.report(&graph) {
            println!(
                "  {:<55} required {:>7.1} Mbit/s, measured {:>7.1} Mbit/s ({:>5.1}%)",
                r.labels.join(" + "),
                r.required.value(),
                r.measured.value(),
                r.delivered_fraction * 100.0
            );
            assert!(
                r.delivered_fraction > 0.9,
                "guaranteed throughput violated on {:?}",
                r.labels
            );
        }
        assert_eq!(dep.total_overflows(), 0, "flow control lost data");
        let model = dep.energy_model();
        let energy = dep.total_energy(&model);
        println!("  total fabric energy: {:.2} uJ", energy.value() / 1e9);
        energies.push(energy.value());
    }

    println!(
        "\nAll guaranteed-throughput demands met on both fabrics; \
         packet/circuit energy ratio {:.2}x. ✔",
        energies[1] / energies[0]
    );
}
