//! HiperLAN/2 baseband receiver on a 4×4 multi-tile SoC.
//!
//! The paper's motivating workload (Section 3.1): the OFDM pipeline of
//! Fig. 2 with the Table 1 bandwidths is mapped by the CCN, configured over
//! the BE network, and run with block-based symbol traffic. The example
//! checks that every edge's guaranteed throughput is actually delivered.
//!
//! ```text
//! cargo run --release --example hiperlan2_receiver
//! ```

use rcs_noc::prelude::*;

fn main() {
    // The NoC runs at 200 MHz so one 4-bit lane carries 640 Mbit/s of
    // payload — exactly the heaviest Table 1 edge.
    let clock = MegaHertz(200.0);
    let graph = noc_apps::hiperlan2::task_graph(&Hiperlan2Params::standard(Modulation::Qam64));
    println!("{graph}");

    let mut app = AppRun::deploy(&graph, Mesh::new(4, 4), RouterParams::paper(), clock, 2005)
        .expect("HiperLAN/2 fits a 4x4 mesh");
    println!(
        "Configured over the BE network by cycle {} ({:.2} us at {clock}).\n",
        app.configured_at.0,
        app.configured_at.at(clock).as_micros()
    );

    // Simulate 100 us of baseband traffic (25 OFDM symbols).
    let cycles = noc_sim::time::cycles_in(Picoseconds::from_micros(100.0), clock);
    app.run(cycles);

    println!("Per-circuit delivery after {} cycles:", app.cycles_run());
    for r in app.report(&graph) {
        println!(
            "  {:<55} required {:>7.1} Mbit/s, measured {:>7.1} Mbit/s ({:>5.1}%)",
            r.labels.join(" + "),
            r.required.value(),
            r.measured.value(),
            r.delivered_fraction * 100.0
        );
        assert!(
            r.delivered_fraction > 0.9,
            "guaranteed throughput violated on {:?}",
            r.labels
        );
    }
    assert_eq!(app.total_overflows(), 0, "window flow control lost data");
    println!("\nAll guaranteed-throughput demands met; no overflows. ✔");
}
