//! Run-time reconfiguration: the multi-mode terminal switches standards.
//!
//! The paper's ambient-system scenario (Section 1): the SoC runs WLAN
//! (HiperLAN/2), then the user starts a phone call and the CCN remaps the
//! fabric to UMTS. The configuration diff travels over the BE network;
//! the example reports the words moved and the wall-clock latency against
//! the paper's 20 ms-per-router budget.
//!
//! ```text
//! cargo run --release --example runtime_reconfiguration
//! ```

use rcs_noc::prelude::*;

fn main() {
    let mesh = Mesh::new(4, 4);
    let params = RouterParams::paper();
    let clock = MegaHertz(200.0);
    let ccn = Ccn::new(mesh, params, clock);
    let mut soc = Soc::new(mesh, params);
    let kinds: Vec<TileKind> = mesh.iter().map(|n| soc.tiles().kind(n.0)).collect();

    // Phase 1: WLAN running.
    let wlan = noc_apps::hiperlan2::task_graph(&Hiperlan2Params::standard(Modulation::Qam64));
    let wlan_map = ccn.map(&wlan, &kinds).expect("WLAN feasible");
    wlan_map.apply_direct(&mut soc).unwrap();
    println!(
        "WLAN (HiperLAN/2) running: {} circuits, {} config words.",
        wlan_map.routes.len(),
        wlan_map.config_words(&params).len()
    );

    // Phase 2: the CCN computes the switch to UMTS.
    let umts = noc_apps::umts::task_graph(&UmtsParams::paper_example());
    let umts_map = ccn.map(&umts, &kinds).expect("UMTS feasible");
    let plan = reconfig::plan(&wlan_map, &umts_map, &params);
    println!(
        "\nReconfiguration plan: {} teardown + {} setup words across {} routers.",
        plan.teardown.len(),
        plan.setup.len(),
        plan.routers_touched()
    );

    // Phase 3: deliver the diff over the BE network.
    let mut be = BeNetwork::new(mesh, BeConfig::default());
    let done = reconfig::execute(&plan, &mut be, &mut soc, mesh.node(0, 0), Cycle::ZERO)
        .expect("plan words are legal");
    let ms = done.at(clock).as_millis();
    println!("Applied by cycle {} = {:.4} ms at {clock}.", done.0, ms);
    println!(
        "Paper budget: 20 ms per router; whole-application switch stayed {}x under.",
        (20.0 / ms).round()
    );

    // Phase 4: verify the fabric now equals a fresh UMTS configuration.
    let mut reference = Soc::new(mesh, params);
    umts_map.apply_direct(&mut reference).unwrap();
    for node in mesh.iter() {
        assert_eq!(
            soc.router(node).config().snapshot_words(),
            reference.router(node).config().snapshot_words(),
            "router {node:?} diverges"
        );
    }
    println!("\nFabric verified identical to a fresh UMTS mapping. ✔");
}
