//! Quickstart: one router, one circuit, and the three things this library
//! measures — delivery, guaranteed throughput, and power.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use noc_power::area::circuit_router_area;
use rcs_noc::prelude::*;

fn main() {
    // --- 1. A single circuit-switched router (the paper's Fig. 4). ------
    let params = RouterParams::paper();
    let mut router = CircuitRouter::new(params);
    println!(
        "Router: {} ports, {} lanes/port of {} bits,",
        5, params.lanes_per_port, params.lane_width
    );
    println!(
        "        crossbar {}x{}, config memory {} bits\n",
        params.foreign_lanes(),
        params.total_lanes(),
        params.config_memory_bits()
    );

    // --- 2. Configure a circuit: tile lane 0 -> East lane 0. ------------
    router
        .connect(Port::Tile, 0, Port::East, 0)
        .expect("legal circuit");
    println!("Configured circuit: Tile.0 -> East.0 (Table 3, stream 1)");

    // --- 3. Stream ten words through it. ---------------------------------
    let mut sent = 0u16;
    let mut on_wire = Vec::new();
    for cycle in 0..64 {
        if sent < 10 && router.tile_can_send(0) {
            router.tile_send(0, Phit::data(0xA000 + sent));
            sent += 1;
        }
        // Downstream consumer acknowledges every 4th phit (window X=4).
        noc_sim::kernel::step(&mut router);
        let nib = router.link_output(Port::East, 0);
        if nib != noc_sim::bits::Nibble::ZERO || !on_wire.is_empty() {
            on_wire.push(nib.get());
        }
        if cycle % 20 == 19 {
            router.set_ack_input(Port::East, 0, true);
        } else {
            router.set_ack_input(Port::East, 0, false);
        }
    }
    println!(
        "Sent {sent} phits; first serialised nibbles on the link: {:02x?}\n",
        &on_wire[..10.min(on_wire.len())]
    );

    // --- 4. Estimate its power, Synopsys-style. --------------------------
    let estimator = PowerEstimator::calibrated();
    let area = circuit_router_area(&params, estimator.tech()).total();
    let report = estimator.estimate(&router.activity(), 64, MegaHertz(25.0), area);
    println!("Power at 25 MHz over this window: {report}");
    println!("  (compare the paper's Fig. 9: ~300 uW for the circuit router)\n");

    // --- 5. The headline tables come from the same models. --------------
    let t4 = table4(&params, &PacketParams::paper(), &Technology::tsmc_0_13um());
    println!(
        "Table 4 totals: circuit {:.4} mm2 vs packet {:.4} mm2 ({:.2}x)",
        t4.circuit.total.as_mm2(),
        t4.packet.total.as_mm2(),
        t4.area_ratio()
    );
    println!("Run `cargo run --release -p noc-bench --bin experiments` for everything else.");
}
