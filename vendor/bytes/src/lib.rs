//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the subset the BE network's wire framing uses —
//! `BytesMut` as an append-only builder, `Bytes` as a cheap-to-clone
//! immutable payload with cursor-style reads, and the `Buf`/`BufMut`
//! traits those methods live on upstream. Backed by `Vec<u8>`/`Arc<[u8]>`;
//! byte-for-byte compatible with the real crate for the little-endian
//! integer accessors used here.

use std::sync::Arc;

/// Read side of a byte buffer (cursor semantics).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Consume and return one little-endian `u16`.
    ///
    /// # Panics
    /// Panics when fewer than two bytes remain.
    fn get_u16_le(&mut self) -> u16;
}

/// Write side of a byte buffer (append semantics).
pub trait BufMut {
    /// Append one little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);

    /// Append one byte.
    fn put_u8(&mut self, v: u8);
}

/// An immutable, cheaply clonable byte payload with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
}

impl Bytes {
    /// A payload borrowed from static data (copied here; the stand-in
    /// does not track borrow provenance).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            data: bytes.into(),
            pos: 0,
        }
    }

    /// Total length of the payload (ignores the read cursor).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The full payload as a slice (ignores the read cursor).
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn get_u16_le(&mut self) -> u16 {
        assert!(self.remaining() >= 2, "get_u16_le past end of Bytes");
        let v = u16::from_le_bytes([self.data[self.pos], self.data[self.pos + 1]]);
        self.pos += 2;
        v
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            data: v.into(),
            pos: 0,
        }
    }
}

/// A growable byte builder.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty builder with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data.into(),
            pos: 0,
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u16_le() {
        let mut b = BytesMut::with_capacity(4);
        b.put_u16_le(0x1234);
        b.put_u16_le(0xBEEF);
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 4);
        assert_eq!(frozen.remaining(), 4);
        assert_eq!(frozen.get_u16_le(), 0x1234);
        assert_eq!(frozen.get_u16_le(), 0xBEEF);
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn clone_resets_nothing_but_shares_data() {
        let mut b = BytesMut::with_capacity(2);
        b.put_u16_le(7);
        let mut a = b.freeze();
        let c = a.clone();
        let _ = a.get_u16_le();
        assert_eq!(a.remaining(), 0);
        assert_eq!(c.remaining(), 2, "clone keeps its own cursor");
    }
}
