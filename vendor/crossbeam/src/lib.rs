//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace uses exactly one item: `crossbeam::scope`, to fan
//! per-cycle mesh evaluation across cores with borrowed (non-`'static`)
//! closures. Since Rust 1.63 the standard library's `std::thread::scope`
//! provides the same guarantee, so this shim maps the crossbeam API onto
//! it: spawned threads are joined before `scope` returns, and a panic in
//! any spawned thread propagates as `Err` exactly as crossbeam reports it.

use std::any::Any;
use std::thread;

/// A scope handle passed to the `scope` closure; `spawn` launches threads
/// that may borrow from the enclosing stack frame.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives the scope again (so it
    /// can spawn nested work, as crossbeam allows); the join handle is
    /// intentionally not returned — the workspace joins only via scope
    /// exit.
    pub fn spawn<F, T>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || {
            let scope = Scope { inner };
            f(&scope)
        });
    }
}

/// Run `f` with a [`Scope`]; all spawned threads are joined before this
/// returns. Returns `Err` with the panic payload if any spawned thread
/// panicked (crossbeam's contract); panics in `f` itself propagate.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    // std::thread::scope re-raises child panics at the join point inside
    // `scope`; catch them to match crossbeam's Result-based reporting.
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        thread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        })
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_borrow_and_join() {
        let mut data = vec![1u32, 2, 3, 4];
        scope(|s| {
            for chunk in data.chunks_mut(2) {
                s.spawn(move |_| {
                    for v in chunk.iter_mut() {
                        *v *= 10;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(data, vec![10, 20, 30, 40]);
    }

    #[test]
    fn child_panic_reported_as_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
