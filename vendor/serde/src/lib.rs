//! Offline stand-in for the `serde` facade.
//!
//! The container this workspace builds in has no crates.io access, and the
//! workspace never serialises anything: `#[derive(Serialize, Deserialize)]`
//! appears on model types purely as a statement that they are plain data.
//! This crate therefore provides the two derive macros as no-ops — the
//! attribute parses, the imports resolve, and no code is generated.
//!
//! If a future PR introduces a real data format, replace this vendored
//! crate with the upstream `serde` dependency; no call sites change.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
