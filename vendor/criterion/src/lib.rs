//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Exposes the authoring surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `Bencher::iter`/`iter_batched`, `BenchmarkId`,
//! `Throughput`, `BatchSize`, `black_box` — over a deliberately simple
//! runner: fixed-count warmup, then a timed measurement loop whose mean
//! per-iteration time (and derived element throughput) is printed. No
//! statistics, plots or baselines; swap in upstream criterion for those.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser value laundering, same contract as criterion's.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How a measured quantity scales per iteration (printed as a rate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// `n` logical elements processed per iteration.
    Elements(u64),
    /// `n` bytes processed per iteration.
    Bytes(u64),
}

/// Hint for how much setup output to batch; the simple runner reuses the
/// setup per iteration regardless, so this is accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A two-part benchmark identifier, `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only id (the group supplies the function name).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The per-benchmark measurement driver handed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the measurement iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with a fresh `setup` product per iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Run one benchmark: a few warmup runs, then `iters` measured runs.
fn run_bench<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    // Warmup pass to fault in caches/pages.
    let mut warm = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);
    let iters = sample_size.max(1) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / iters as f64;
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            let rate = n as f64 / per_iter;
            println!(
                "bench {label:<48} {:>12.3} us/iter  {rate:>14.0} elem/s",
                per_iter * 1e6
            );
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            let rate = n as f64 / per_iter / (1024.0 * 1024.0);
            println!(
                "bench {label:<48} {:>12.3} us/iter  {rate:>10.1} MiB/s",
                per_iter * 1e6
            );
        }
        _ => println!("bench {label:<48} {:>12.3} us/iter", per_iter * 1e6),
    }
}

/// A named group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the measured iteration count (criterion's sample count analog).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declare per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_bench(
            &self.name,
            &id.to_string(),
            self.sample_size,
            self.throughput,
            &mut f,
        );
        self
    }

    /// End the group (upstream flushes reports here; nothing to flush).
    pub fn finish(self) {}
}

/// The top-level benchmark harness object.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Measure a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let n = self.sample_size;
        run_bench("", &id.to_string(), n, None, &mut f);
        self
    }

    /// Finalize (no-op in the stand-in).
    pub fn final_summary(&mut self) {}
}

/// Collect benchmark functions into a runnable group, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
