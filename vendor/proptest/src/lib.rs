//! Offline stand-in for the `proptest` crate.
//!
//! Supports the authoring surface the workspace's property tests use:
//! the [`proptest!`] macro over mixed `pat in strategy` / `name: Type`
//! parameters, range and `any::<T>()` strategies, `prop::collection::vec`,
//! and the `prop_assert*` macros. The runner draws a fixed number of
//! deterministic pseudo-random cases per test (seeded from the test name,
//! so failures reproduce bit-for-bit) and panics on the first failing
//! case. It does **not** shrink counterexamples — include the offending
//! values in the assertion message when debugging.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    /// The `any::<T>()` strategy: the type's full value space.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole value space of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for collection strategies: a fixed size or a
    /// half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// A `Vec` of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, size)` — a vector strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The `prop::` namespace mirrored from upstream.
pub mod prop {
    pub use crate::collection;
}

pub mod test_runner {
    //! Deterministic case generation.

    /// SplitMix64 — small, fast, and reproducible across platforms.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG for case `case` of the test named `name`.
        pub fn for_case(name: &str, case: u64) -> TestRng {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next pseudo-random 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Cases drawn per property (upstream default is 256; 64 keeps the
    /// cycle-accurate properties fast while still exploring the space).
    pub const CASES: u64 = 64;
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude::*`.

    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Bind `proptest!` parameters: `pat in strategy` draws from the given
/// strategy; `name: Type` draws from `any::<Type>()`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $id:ident: $ty:ty) => {
        let $id: $ty =
            $crate::strategy::Strategy::generate(&$crate::strategy::any::<$ty>(), &mut $rng);
    };
    ($rng:ident; $id:ident: $ty:ty, $($rest:tt)*) => {
        let $id: $ty =
            $crate::strategy::Strategy::generate(&$crate::strategy::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Property-test declaration block: each `fn` inside runs over
/// [`test_runner::CASES`] deterministic random cases. Attributes
/// (including `#[test]` and doc comments) are forwarded to the generated
/// function, exactly as upstream proptest does.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            for __proptest_case in 0..$crate::test_runner::CASES {
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __proptest_case);
                $crate::__proptest_bind!(__proptest_rng; $($params)*);
                $body
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Assert within a property (panics on failure, like upstream's default
/// runner surface when not shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges stay in bounds.
        #[test]
        fn range_bounds(x in 3u8..7) {
            prop_assert!((3..7).contains(&x));
        }

        /// Mixed binding forms work together.
        #[test]
        fn mixed_forms(v in prop::collection::vec(any::<u16>(), 1..5), flag: bool, n: u8) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            let _ = (flag, n);
        }

        /// Fixed-size collections honour the exact length.
        #[test]
        fn fixed_size_vec(v in prop::collection::vec(0u8..16, 20)) {
            prop_assert_eq!(v.len(), 20);
            prop_assert!(v.iter().all(|&b| b < 16));
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_case("t", 1);
        let mut b = TestRng::for_case("t", 1);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 2);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
